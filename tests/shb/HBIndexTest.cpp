//===- HBIndexTest.cpp - precomputed HB index oracle tests ----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// HBIndex must answer exactly what SHBGraph::happensBefore (memoized
// fixpoint) and SHBGraph::happensBeforeNaive (BFS straw man) answer, for
// every pair of access events of every corpus module — it is the O(1)
// lookup the parallel race engine's class math is built on, so any
// disagreement silently changes race verdicts.
//
//===----------------------------------------------------------------------===//

#include "o2/SHB/HBIndex.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Workload/Generator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

std::unique_ptr<Module> loadCase(const std::string &Name) {
  if (Name.rfind("oir_", 0) == 0) {
    std::ifstream In(std::string(O2_OIR_DIR) + "/" + Name.substr(4) + ".oir");
    EXPECT_TRUE(In.good()) << "cannot open " << Name;
    std::stringstream Buf;
    Buf << In.rdbuf();
    return parseProgram(Buf.str());
  }
  const WorkloadProfile *P = findProfile(Name);
  EXPECT_NE(P, nullptr) << Name;
  return generateWorkload(*P);
}

SHBGraph buildGraph(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(M, Opts);
  return buildSHBGraph(*PTA);
}

/// All (thread, position) nodes with an access event, subsampled to keep
/// the all-pairs comparison under ~500x500 per module (the naive BFS side
/// is quadratic in events otherwise). The stride keeps events from every
/// thread, including first/last positions where edges fire.
std::vector<std::pair<unsigned, uint32_t>> sampleEvents(const SHBGraph &G) {
  std::vector<std::pair<unsigned, uint32_t>> Nodes;
  for (const ThreadInfo &T : G.threads())
    for (const AccessEvent &E : T.Accesses)
      Nodes.emplace_back(E.Thread, E.Pos);
  size_t Stride = Nodes.size() / 500 + 1;
  if (Stride > 1) {
    std::vector<std::pair<unsigned, uint32_t>> Sampled;
    for (size_t I = 0; I < Nodes.size(); I += Stride)
      Sampled.push_back(Nodes[I]);
    Nodes = std::move(Sampled);
  }
  return Nodes;
}

class HBIndexOracle : public ::testing::TestWithParam<std::string> {};

TEST_P(HBIndexOracle, AgreesWithMemoAndNaiveOnAllEventPairs) {
  auto M = loadCase(GetParam());
  ASSERT_TRUE(M);
  SHBGraph G = buildGraph(*M);
  HBIndex Index(G);

  auto Nodes = sampleEvents(G);
  ASSERT_FALSE(Nodes.empty()) << GetParam();
  size_t Disagreements = 0;
  for (const auto &[T1, P1] : Nodes) {
    for (const auto &[T2, P2] : Nodes) {
      bool Idx = Index.happensBefore(T1, P1, T2, P2);
      bool Memo = G.happensBefore(T1, P1, T2, P2);
      bool Naive = G.happensBeforeNaive(T1, P1, T2, P2);
      if (Idx != Memo || Idx != Naive) {
        ++Disagreements;
        EXPECT_EQ(Idx, Memo) << GetParam() << " (" << T1 << "," << P1
                             << ") -> (" << T2 << "," << P2 << ")";
        EXPECT_EQ(Idx, Naive) << GetParam() << " (" << T1 << "," << P1
                              << ") -> (" << T2 << "," << P2 << ")";
        if (Disagreements > 5)
          FAIL() << "too many disagreements, aborting " << GetParam();
      }
    }
  }
}

TEST_P(HBIndexOracle, SegmentStructureMatchesSpawnEdges) {
  auto M = loadCase(GetParam());
  ASSERT_TRUE(M);
  SHBGraph G = buildGraph(*M);
  HBIndex Index(G);

  // One row per (thread, spawn-edge bucket): segments = sum of
  // (spawn edges + 1) over threads.
  size_t Expected = 0;
  for (const ThreadInfo &T : G.threads())
    Expected += T.SpawnEdges.size() + 1;
  EXPECT_EQ(Index.numSegments(), Expected) << GetParam();
  EXPECT_EQ(Index.numThreads(), G.numThreads()) << GetParam();

  // segmentOf is the spawn-edge bucket: monotone in position, bounded by
  // the thread's edge count, and bumps exactly at spawn positions.
  for (const ThreadInfo &T : G.threads()) {
    unsigned Prev = 0;
    for (const AccessEvent &E : T.Accesses) {
      unsigned Seg = Index.segmentOf(T.Id, E.Pos);
      EXPECT_LE(Seg, T.SpawnEdges.size()) << GetParam();
      EXPECT_GE(Seg, Prev) << GetParam();
      Prev = Seg;
    }
  }
}

std::vector<std::string> indexCases() {
  std::vector<std::string> Cases = {
      "oir_racy_counter",   "oir_producer_consumer", "oir_event_thread_mix",
      "oir_fork_join",      "oir_locked_account",    "oir_lockfree_flag",
      "oir_nested_handlers"};
  for (const WorkloadProfile &P : benchmarkProfiles()) {
    if (P.PaddingFunctions > 100 || P.AmplifierFanOut > 12)
      continue;
    Cases.push_back(P.Name);
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Corpus, HBIndexOracle,
                         ::testing::ValuesIn(indexCases()),
                         [](const auto &Info) { return Info.param; });

TEST(HBIndexTest, ForkJoinOrdering) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      t = new T(s);
      x = s.v;
      spawn t.run();
      join t;
      s.v = x;
    }
  )");
  SHBGraph G = buildGraph(*M);
  HBIndex Index(G);
  ASSERT_EQ(G.numThreads(), 2u);
  const ThreadInfo &Main = G.thread(0);
  const ThreadInfo &Child = G.thread(1);
  ASSERT_FALSE(Main.Accesses.empty());
  ASSERT_FALSE(Child.Accesses.empty());
  uint32_t PreSpawn = Main.Accesses.front().Pos;
  uint32_t PostJoin = Main.Accesses.back().Pos;
  uint32_t InChild = Child.Accesses.front().Pos;
  // Pre-spawn main code precedes the child; the child precedes the
  // post-join write; nothing runs backwards.
  EXPECT_TRUE(Index.happensBefore(0, PreSpawn, 1, InChild));
  EXPECT_TRUE(Index.happensBefore(1, InChild, 0, PostJoin));
  EXPECT_FALSE(Index.happensBefore(0, PostJoin, 1, InChild));
  EXPECT_FALSE(Index.happensBefore(1, InChild, 0, PreSpawn));
}

} // namespace
