//===- LocksetIntersectTest.cpp - lockset intersection property tests -----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// The three lockset-intersection implementations must agree on every pair
// of interned locksets of every corpus module: the memoized per-pair
// cache (`locksetsIntersect`), the cache-free scan the parallel shards
// use (`locksetsIntersectUncached`), and the precomputed bit matrix
// (`LocksetMatrix`). A disagreement would make the engines' race verdicts
// diverge, so this is a property test over the whole interned universe,
// not spot checks.
//
//===----------------------------------------------------------------------===//

#include "o2/SHB/HBIndex.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Workload/Generator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

std::unique_ptr<Module> loadCase(const std::string &Name) {
  if (Name.rfind("oir_", 0) == 0) {
    std::ifstream In(std::string(O2_OIR_DIR) + "/" + Name.substr(4) + ".oir");
    EXPECT_TRUE(In.good()) << "cannot open " << Name;
    std::stringstream Buf;
    Buf << In.rdbuf();
    return parseProgram(Buf.str());
  }
  const WorkloadProfile *P = findProfile(Name);
  EXPECT_NE(P, nullptr) << Name;
  return generateWorkload(*P);
}

SHBGraph buildGraph(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(M, Opts);
  return buildSHBGraph(*PTA);
}

/// Reference semantics straight off the interned element lists: two
/// locksets intersect iff they share an element (both lists are sorted
/// canonical forms, so a merge walk is exact).
bool refIntersect(const SHBGraph &G, LocksetId A, LocksetId B) {
  auto EA = G.locksetElems(A);
  auto EB = G.locksetElems(B);
  size_t I = 0, J = 0;
  while (I < EA.size() && J < EB.size()) {
    if (EA[I] == EB[J])
      return true;
    if (EA[I] < EB[J])
      ++I;
    else
      ++J;
  }
  return false;
}

class LocksetIntersect : public ::testing::TestWithParam<std::string> {};

TEST_P(LocksetIntersect, AllImplementationsAgreeOnAllInternedPairs) {
  auto M = loadCase(GetParam());
  ASSERT_TRUE(M);
  SHBGraph G = buildGraph(*M);
  LocksetMatrix Matrix(G);

  size_t N = G.numLocksets();
  ASSERT_GE(N, 1u) << "empty lockset is always interned";
  ASSERT_EQ(Matrix.numLocksets(), N);

  for (LocksetId A = 0; A < N; ++A) {
    for (LocksetId B = 0; B < N; ++B) {
      bool Ref = refIntersect(G, A, B);
      EXPECT_EQ(G.locksetsIntersect(A, B), Ref)
          << GetParam() << " cached (" << A << "," << B << ")";
      EXPECT_EQ(G.locksetsIntersectUncached(A, B), Ref)
          << GetParam() << " uncached (" << A << "," << B << ")";
      EXPECT_EQ(Matrix.intersect(A, B), Ref)
          << GetParam() << " matrix (" << A << "," << B << ")";
    }
  }
}

TEST_P(LocksetIntersect, EmptyLocksetAndSymmetry) {
  auto M = loadCase(GetParam());
  ASSERT_TRUE(M);
  SHBGraph G = buildGraph(*M);
  LocksetMatrix Matrix(G);

  size_t N = G.numLocksets();
  for (LocksetId A = 0; A < N; ++A) {
    // Lockset 0 is the empty lockset: it never intersects anything,
    // including itself.
    EXPECT_FALSE(Matrix.intersect(0, A)) << GetParam() << " id " << A;
    EXPECT_FALSE(Matrix.intersect(A, 0)) << GetParam() << " id " << A;
    // A non-empty lockset always intersects itself.
    EXPECT_EQ(Matrix.intersect(A, A), A != 0) << GetParam() << " id " << A;
    for (LocksetId B = A + 1; B < N; ++B)
      EXPECT_EQ(Matrix.intersect(A, B), Matrix.intersect(B, A))
          << GetParam() << " (" << A << "," << B << ")";
  }
}

std::vector<std::string> locksetCases() {
  std::vector<std::string> Cases = {
      "oir_locked_account", "oir_producer_consumer", "oir_racy_counter",
      "oir_event_thread_mix", "oir_nested_handlers"};
  for (const WorkloadProfile &P : benchmarkProfiles()) {
    if (P.PaddingFunctions > 100 || P.AmplifierFanOut > 12)
      continue;
    Cases.push_back(P.Name);
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Corpus, LocksetIntersect,
                         ::testing::ValuesIn(locksetCases()),
                         [](const auto &Info) { return Info.param; });

TEST(LocksetMatrixTest, BytesForIsQuadraticBits) {
  // One bit per ordered pair, rounded up to whole words.
  EXPECT_EQ(LocksetMatrix::bytesFor(0), 0u);
  EXPECT_GE(LocksetMatrix::bytesFor(64) * 8, 64u * 64u);
  EXPECT_LE(LocksetMatrix::bytesFor(64), 64u * 64u / 8 + 8);
}

} // namespace
