//===- SHBGraphTest.cpp - SHB graph unit tests ---------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/SHB/SHBGraph.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

std::unique_ptr<PTAResult> runOPA(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  return runPointerAnalysis(M, Opts);
}

const char *ForkJoinProgram = R"(
  class Obj { field v: int; }
  class T {
    field s: Obj;
    method init(s: Obj) { this.s = s; }
    method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
  }
  func main() {
    var s: Obj;
    var t: T;
    var x: int;
    s = new Obj;
    t = new T(s);
    x = s.v;
    spawn t.run();
    join t;
    s.v = x;
  }
)";

TEST(SHBGraphTest, ThreadsDiscovered) {
  auto M = parseProgram(ForkJoinProgram);
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  ASSERT_EQ(G.numThreads(), 2u);
  EXPECT_EQ(G.thread(0).Kind, OriginKind::Main);
  EXPECT_EQ(G.thread(0).Entry, M->getMain());
  EXPECT_EQ(G.thread(1).Kind, OriginKind::Thread);
  EXPECT_EQ(G.thread(1).Entry, M->findClass("T")->findMethod("run"));
  EXPECT_NE(G.thread(1).Spawn, nullptr);
}

TEST(SHBGraphTest, AccessEventsRecorded) {
  auto M = parseProgram(ForkJoinProgram);
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  // Main: read s.v (+ field stores in init inlined at the alloc),
  // write s.v after the join. Thread: this.s read + o.v write.
  const ThreadInfo &Main = G.thread(0);
  const ThreadInfo &T = G.thread(1);
  unsigned MainWrites = 0, MainReads = 0;
  for (const AccessEvent &E : Main.Accesses)
    (E.IsWrite ? MainWrites : MainReads)++;
  EXPECT_EQ(MainWrites, 2u); // this.s = s (ctor, runs in main) + s.v = x
  EXPECT_EQ(MainReads, 1u);  // x = s.v
  unsigned TWrites = 0, TReads = 0;
  for (const AccessEvent &E : T.Accesses)
    (E.IsWrite ? TWrites : TReads)++;
  EXPECT_EQ(TWrites, 1u); // o.v = x
  EXPECT_EQ(TReads, 1u);  // o = this.s
  // Positions are strictly increasing within a thread.
  for (size_t I = 1; I < Main.Accesses.size(); ++I)
    EXPECT_LT(Main.Accesses[I - 1].Pos, Main.Accesses[I].Pos);
}

TEST(SHBGraphTest, ForkJoinHappensBefore) {
  auto M = parseProgram(ForkJoinProgram);
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  const ThreadInfo &Main = G.thread(0);
  ASSERT_EQ(Main.SpawnEdges.size(), 1u);
  uint32_t SpawnPos = Main.SpawnEdges[0].first;
  ASSERT_EQ(G.thread(1).Joins.size(), 1u);
  uint32_t JoinPos = G.thread(1).Joins[0].second;

  // Before the spawn HB into the child...
  EXPECT_TRUE(G.happensBefore(0, SpawnPos, 1, 0));
  EXPECT_TRUE(G.happensBefore(0, 0, 1, 5));
  // ... but not after it.
  EXPECT_FALSE(G.happensBefore(0, SpawnPos + 1, 1, 0));
  // The child HB into main after the join...
  EXPECT_TRUE(G.happensBefore(1, 0, 0, JoinPos));
  EXPECT_TRUE(G.happensBefore(1, 3, 0, JoinPos + 2));
  // ... but not before it.
  EXPECT_FALSE(G.happensBefore(1, 0, 0, SpawnPos));
  // Intra-thread order is integer comparison.
  EXPECT_TRUE(G.happensBefore(0, 1, 0, 2));
  EXPECT_FALSE(G.happensBefore(0, 2, 0, 2));
  EXPECT_FALSE(G.happensBefore(0, 3, 0, 2));
}

TEST(SHBGraphTest, NaiveHBMatchesOptimized) {
  auto M = parseProgram(ForkJoinProgram);
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  for (unsigned T1 = 0; T1 < G.numThreads(); ++T1)
    for (unsigned T2 = 0; T2 < G.numThreads(); ++T2)
      for (uint32_t P1 = 0; P1 < G.thread(T1).NumEvents; ++P1)
        for (uint32_t P2 = 0; P2 < G.thread(T2).NumEvents; ++P2)
          EXPECT_EQ(G.happensBefore(T1, P1, T2, P2),
                    G.happensBeforeNaive(T1, P1, T2, P2))
              << "mismatch at (" << T1 << "," << P1 << ") vs (" << T2 << ","
              << P2 << ")";
}

TEST(SHBGraphTest, LocksetsTracked) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      field l: Obj;
      method init(s: Obj, l: Obj) { this.s = s; this.l = l; }
      method run() {
        var o: Obj;
        var lk: Obj;
        var x: int;
        o = this.s;
        lk = this.l;
        acquire lk;
        o.v = x;
        release lk;
        o.v = x;
      }
    }
    func main() {
      var s: Obj;
      var l: Obj;
      var t: T;
      s = new Obj;
      l = new Obj;
      t = new T(s, l);
      spawn t.run();
    }
  )");
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  const ThreadInfo &T = G.thread(1);
  // Find the two o.v writes: first under lock, second not.
  std::vector<const AccessEvent *> Writes;
  for (const AccessEvent &E : T.Accesses)
    if (E.IsWrite)
      Writes.push_back(&E);
  ASSERT_EQ(Writes.size(), 2u);
  EXPECT_NE(Writes[0]->Lockset, InternTable::Empty);
  EXPECT_NE(Writes[0]->LockRegion, 0u);
  EXPECT_EQ(Writes[1]->Lockset, InternTable::Empty);
  EXPECT_EQ(Writes[1]->LockRegion, 0u);
  EXPECT_EQ(G.locksetElems(Writes[0]->Lockset).size(), 1u);
}

TEST(SHBGraphTest, LocksetIntersection) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      field l1: Obj;
      field l2: Obj;
      method init(s: Obj, l1: Obj, l2: Obj) {
        this.s = s;
        this.l1 = l1;
        this.l2 = l2;
      }
      method run() {
        var o: Obj;
        var a: Obj;
        var b: Obj;
        var x: int;
        o = this.s;
        a = this.l1;
        b = this.l2;
        acquire a;
        o.v = x;
        release a;
        acquire b;
        o.v = x;
        release b;
        acquire a;
        acquire b;
        o.v = x;
        release b;
        release a;
      }
    }
    func main() {
      var s: Obj;
      var l1: Obj;
      var l2: Obj;
      var t: T;
      s = new Obj;
      l1 = new Obj;
      l2 = new Obj;
      t = new T(s, l1, l2);
      spawn t.run();
    }
  )");
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  std::vector<const AccessEvent *> Writes;
  for (const AccessEvent &E : G.thread(1).Accesses)
    if (E.IsWrite && E.S->getFunction()->getName() == "run")
      Writes.push_back(&E);
  ASSERT_EQ(Writes.size(), 3u);
  LocksetId L1 = Writes[0]->Lockset;
  LocksetId L2 = Writes[1]->Lockset;
  LocksetId L12 = Writes[2]->Lockset;
  EXPECT_NE(L1, L2);
  EXPECT_FALSE(G.locksetsIntersect(L1, L2));
  EXPECT_TRUE(G.locksetsIntersect(L1, L12));
  EXPECT_TRUE(G.locksetsIntersect(L2, L12));
  EXPECT_TRUE(G.locksetsIntersect(L12, L12));
  EXPECT_FALSE(G.locksetsIntersect(L1, InternTable::Empty));
  // Cached and uncached agree.
  EXPECT_EQ(G.locksetsIntersect(L1, L2), G.locksetsIntersectUncached(L1, L2));
  EXPECT_EQ(G.locksetsIntersect(L1, L12),
            G.locksetsIntersectUncached(L1, L12));
}

TEST(SHBGraphTest, EventHandlersSerializedByImplicitLock) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class H {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method handleEvent() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var h1: H;
      var h2: H;
      s = new Obj;
      h1 = new H(s);
      h2 = new H(s);
      spawn h1.handleEvent();
      spawn h2.handleEvent();
    }
  )");
  auto PTA = runOPA(*M);

  SHBGraph Serialized = buildSHBGraph(*PTA);
  ASSERT_EQ(Serialized.numThreads(), 3u);
  for (unsigned T = 1; T < 3; ++T) {
    EXPECT_EQ(Serialized.thread(T).Kind, OriginKind::Event);
    for (const AccessEvent &E : Serialized.thread(T).Accesses) {
      ArrayRef<uint32_t> Elems = Serialized.locksetElems(E.Lockset);
      bool HasUILock = false;
      for (uint32_t El : Elems)
        HasUILock |= El == SHBGraph::UILockElem;
      EXPECT_TRUE(HasUILock);
    }
  }
  // Handler locksets intersect pairwise through the implicit lock.
  EXPECT_TRUE(Serialized.locksetsIntersect(
      Serialized.thread(1).Accesses[0].Lockset,
      Serialized.thread(2).Accesses[0].Lockset));

  SHBOptions NoSerial;
  NoSerial.SerializeEventHandlers = false;
  SHBGraph Parallel = buildSHBGraph(*PTA, NoSerial);
  EXPECT_EQ(Parallel.thread(1).Accesses[0].Lockset, InternTable::Empty);
}

TEST(SHBGraphTest, LoopSpawnDuplicatesThread) {
  auto M = parseProgram(R"(
    class T { method run() { } }
    func main() {
      var t: T;
      t = new T;
      loop { spawn t.run(); }
    }
  )");
  // Use 0-ctx so origin-level duplication does not apply.
  PTAOptions Opts;
  Opts.Kind = ContextKind::Insensitive;
  auto PTA = runPointerAnalysis(*M, Opts);
  SHBGraph G = buildSHBGraph(*PTA);
  EXPECT_EQ(G.numThreads(), 3u); // main + two instances

  SHBOptions NoDup;
  NoDup.DuplicateLoopSpawns = false;
  SHBGraph G2 = buildSHBGraph(*PTA, NoDup);
  EXPECT_EQ(G2.numThreads(), 2u);
}

TEST(SHBGraphTest, OriginDuplicationNotDoubled) {
  auto M = parseProgram(R"(
    class T { method run() { } }
    func main() {
      var t: T;
      loop {
        t = new T;
        spawn t.run();
      }
    }
  )");
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  // OPA already duplicated the origin (2 objects); the spawn must not
  // duplicate again: main + 2 threads, not main + 4.
  EXPECT_EQ(G.numThreads(), 3u);
}

TEST(SHBGraphTest, RegionsWithSpawnsAreFlagged) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T { method run() { } }
    global g: Obj;
    func main() {
      var o: Obj;
      var t: T;
      var x: int;
      o = new Obj;
      t = new T;
      acquire o;
      o.v = x;
      spawn t.run();
      o.v = x;
      release o;
    }
  )");
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  const ThreadInfo &Main = G.thread(0);
  unsigned Flagged = 0;
  for (const AccessEvent &E : Main.Accesses)
    if (E.RegionHasSync)
      ++Flagged;
  EXPECT_EQ(Flagged, 2u); // both o.v writes share the spawning region
}

TEST(SHBGraphTest, MainlessModuleYieldsEmptyGraphNotAbort) {
  // Skip the verifier on purpose: a main-less module must degrade to a
  // flagged empty graph (no threads — nothing executes, no races), not
  // an assert/UB in release builds.
  std::string Err;
  auto M = parseModule("func helper() { }", Err);
  ASSERT_TRUE(M) << Err;
  ASSERT_EQ(M->getMain(), nullptr);
  auto PTA = runOPA(*M);
  EXPECT_TRUE(PTA->entryMissing());
  SHBGraph G = buildSHBGraph(*PTA);
  EXPECT_TRUE(G.entryMissing());
  EXPECT_FALSE(G.cancelled());
  EXPECT_EQ(G.numThreads(), 0u);
}

} // namespace
