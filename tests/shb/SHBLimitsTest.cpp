//===- SHBLimitsTest.cpp - SHB caps and edge cases -------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/SHB/SHBGraph.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

std::unique_ptr<PTAResult> runOPA(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  return runPointerAnalysis(M, Opts);
}

TEST(SHBLimitsTest, MaxThreadsCapRespected) {
  auto M = parseProgram(R"(
    class T { method run() { } }
    func main() {
      var t1: T;
      var t2: T;
      var t3: T;
      t1 = new T;
      t2 = new T;
      t3 = new T;
      spawn t1.run();
      spawn t2.run();
      spawn t3.run();
    }
  )");
  auto PTA = runOPA(*M);
  SHBOptions Opts;
  Opts.MaxThreads = 2;
  SHBGraph G = buildSHBGraph(*PTA, Opts);
  EXPECT_EQ(G.numThreads(), 2u); // main + first spawn only
}

TEST(SHBLimitsTest, EventCapTruncatesTrace) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      method run() {
        var o: Obj;
        var x: int;
        o = new Obj;
        o.v = x;
        x = o.v;
        o.v = x;
        x = o.v;
      }
    }
    func main() {
      var t: T;
      t = new T;
      spawn t.run();
    }
  )");
  auto PTA = runOPA(*M);
  SHBOptions Opts;
  Opts.MaxEventsPerThread = 2;
  SHBGraph G = buildSHBGraph(*PTA, Opts);
  ASSERT_EQ(G.numThreads(), 2u);
  EXPECT_TRUE(G.thread(1).Truncated);
  EXPECT_LE(G.thread(1).Accesses.size(), 2u);

  SHBGraph Full = buildSHBGraph(*PTA);
  EXPECT_FALSE(Full.thread(1).Truncated);
  EXPECT_EQ(Full.thread(1).Accesses.size(), 4u);
}

TEST(SHBLimitsTest, RecursiveSpawnTerminates) {
  // A thread class that respawns itself: thread discovery must reach a
  // fixpoint because thread identity is keyed by spawn-site instance.
  auto M = parseProgram(R"(
    class T {
      method run() {
        var t: T;
        t = new T;
        spawn t.run();
      }
    }
    func main() {
      var t: T;
      t = new T;
      spawn t.run();
    }
  )");
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  // main's spawn + the (single, self-keyed) nested spawn instance.
  EXPECT_GE(G.numThreads(), 2u);
  EXPECT_LE(G.numThreads(), 8u);
}

TEST(SHBLimitsTest, MutuallyRecursiveSpawnsTerminate) {
  auto M = parseProgram(R"(
    class A {
      method run() {
        var b: B;
        b = new B;
        spawn b.run();
      }
    }
    class B {
      method run() {
        var a: A;
        a = new A;
        spawn a.run();
      }
    }
    func main() {
      var a: A;
      a = new A;
      spawn a.run();
    }
  )");
  auto PTA = runOPA(*M);
  // Bounded by the per-site origin cap.
  EXPECT_LE(PTA->origins().size(), 20u);
  SHBGraph G = buildSHBGraph(*PTA);
  EXPECT_GE(G.numThreads(), 2u);
  EXPECT_LE(G.numThreads(), 40u);
}

TEST(SHBLimitsTest, RecursiveCallsTerminate) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    func rec(o: Obj) {
      var x: int;
      o.v = x;
      rec(o);
    }
    func main() {
      var o: Obj;
      o = new Obj;
      rec(o);
    }
  )");
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  ASSERT_EQ(G.numThreads(), 1u);
  // rec is inlined once; its access appears once.
  EXPECT_EQ(G.thread(0).Accesses.size(), 1u);
}

TEST(SHBLimitsTest, HBCacheConsistentAcrossQueryOrder) {
  auto M = parseProgram(R"(
    class T { method run() { } }
    func main() {
      var t1: T;
      var t2: T;
      t1 = new T;
      t2 = new T;
      spawn t1.run();
      join t1;
      spawn t2.run();
    }
  )");
  auto PTA = runOPA(*M);
  SHBGraph A = buildSHBGraph(*PTA);
  SHBGraph B = buildSHBGraph(*PTA);
  // Query A in one order and B in the reverse order: memoization must
  // not change any verdict.
  std::vector<std::tuple<unsigned, uint32_t, unsigned, uint32_t>> Queries;
  for (unsigned T1 = 0; T1 < A.numThreads(); ++T1)
    for (unsigned T2 = 0; T2 < A.numThreads(); ++T2)
      for (uint32_t P1 = 0; P1 < 4; ++P1)
        for (uint32_t P2 = 0; P2 < 4; ++P2)
          Queries.emplace_back(T1, P1, T2, P2);
  std::vector<bool> ForwardResults;
  for (const auto &[T1, P1, T2, P2] : Queries)
    ForwardResults.push_back(A.happensBefore(T1, P1, T2, P2));
  for (size_t I = Queries.size(); I-- > 0;) {
    const auto &[T1, P1, T2, P2] = Queries[I];
    EXPECT_EQ(B.happensBefore(T1, P1, T2, P2), ForwardResults[I]);
  }
}

TEST(SHBLimitsTest, ThreadOneJoinedBeforeThreadTwo) {
  auto M = parseProgram(R"(
    class T { method run() { } }
    func main() {
      var t1: T;
      var t2: T;
      t1 = new T;
      t2 = new T;
      spawn t1.run();
      join t1;
      spawn t2.run();
    }
  )");
  auto PTA = runOPA(*M);
  SHBGraph G = buildSHBGraph(*PTA);
  ASSERT_EQ(G.numThreads(), 3u);
  // Everything in t1 happens before everything in t2 (join then spawn).
  EXPECT_TRUE(G.happensBefore(1, 0, 2, 0));
  EXPECT_FALSE(G.happensBefore(2, 0, 1, 0));
}

} // namespace
