//===- SharingAnalysisTest.cpp - OSA unit tests --------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/OSA/SharingAnalysis.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

std::unique_ptr<PTAResult> runOPA(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  return runPointerAnalysis(M, Opts);
}

TEST(SharingAnalysisTest, OriginLocalDataIsNotShared) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      method run() {
        var o: Obj;
        var x: int;
        o = new Obj;
        o.v = x;
        x = o.v;
      }
    }
    func main() {
      var t1: T;
      var t2: T;
      t1 = new T;
      t2 = new T;
      spawn t1.run();
      spawn t2.run();
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  EXPECT_TRUE(R.sharedLocations().empty());
  EXPECT_EQ(R.numSharedObjects(), 0u);
  EXPECT_EQ(R.numSharedAccessStmts(), 0u);
  EXPECT_EQ(R.numAccessStmts(), 2u);
}

TEST(SharingAnalysisTest, WriteWriteSharingDetected) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field shared: Obj;
      method init(s: Obj) { this.shared = s; }
      method run() {
        var o: Obj;
        var x: int;
        o = this.shared;
        o.v = x;
      }
    }
    func main() {
      var s: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      t1 = new T(s);
      t2 = new T(s);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  ASSERT_EQ(R.sharedLocations().size(), 1u);
  MemLoc Loc = R.sharedLocations()[0];
  const LocAccessSets *Sets = R.get(Loc);
  ASSERT_TRUE(Sets);
  EXPECT_EQ(Sets->WriteOrigins.count(), 2u);
  EXPECT_EQ(Loc.toString(*PTA).find("obj"), 0u);
  EXPECT_NE(Loc.toString(*PTA).find(".v"), std::string::npos);
  EXPECT_EQ(R.numSharedObjects(), 1u);
  EXPECT_EQ(R.numSharedAccessStmts(), 1u);
}

TEST(SharingAnalysisTest, ReadOnlySharingIsNotShared) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field shared: Obj;
      method init(s: Obj) { this.shared = s; }
      method run() {
        var o: Obj;
        var x: int;
        o = this.shared;
        x = o.v;
      }
    }
    func main() {
      var s: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      t1 = new T(s);
      t2 = new T(s);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  // Both origins read o.v but nobody writes: not a shared location.
  EXPECT_TRUE(R.sharedLocations().empty());
}

TEST(SharingAnalysisTest, WriterPlusReaderIsShared) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class Writer {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    class Reader {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; x = o.v; }
    }
    func main() {
      var s: Obj;
      var w: Writer;
      var r: Reader;
      s = new Obj;
      w = new Writer(s);
      r = new Reader(s);
      spawn w.run();
      spawn r.run();
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  ASSERT_EQ(R.sharedLocations().size(), 1u);
  const LocAccessSets *Sets = R.get(R.sharedLocations()[0]);
  EXPECT_EQ(Sets->WriteOrigins.count(), 1u);
  EXPECT_EQ(Sets->ReadOrigins.count(), 1u);
}

TEST(SharingAnalysisTest, MainCountsAsAnOrigin) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      t = new T(s);
      spawn t.run();
      x = s.v;
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  // Shared between main (reader) and the thread (writer).
  ASSERT_EQ(R.sharedLocations().size(), 1u);
  const LocAccessSets *Sets = R.get(R.sharedLocations()[0]);
  EXPECT_TRUE(Sets->ReadOrigins.test(OriginTable::MainOrigin));
}

TEST(SharingAnalysisTest, GlobalsSharedOnlyWhenCrossOrigin) {
  auto M = parseProgram(R"(
    class T {
      method run() { var x: int; @used = x; }
    }
    global used: int;
    global mainOnly: int;
    func main() {
      var t: T;
      var x: int;
      t = new T;
      spawn t.run();
      x = @used;
      @mainOnly = x;
      x = @mainOnly;
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  // @used: written by the thread, read by main => shared.
  // @mainOnly: only main touches it => not shared, unlike classic
  // escape analysis which treats all statics as escaped.
  ASSERT_EQ(R.sharedLocations().size(), 1u);
  EXPECT_TRUE(R.sharedLocations()[0].isGlobal());
  EXPECT_EQ(R.sharedLocations()[0].toString(*PTA), "@used");
}

TEST(SharingAnalysisTest, ArrayElementsShared) {
  auto M = parseProgram(R"(
    class Obj { }
    class T {
      field arr: Obj[];
      method init(a: Obj[]) { this.arr = a; }
      method run() {
        var a: Obj[];
        var o: Obj;
        a = this.arr;
        o = new Obj;
        a[*] = o;
      }
    }
    func main() {
      var a: Obj[];
      var o: Obj;
      var t: T;
      a = newarray Obj;
      t = new T(a);
      spawn t.run();
      o = a[*];
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  ASSERT_EQ(R.sharedLocations().size(), 1u);
  MemLoc Loc = R.sharedLocations()[0];
  EXPECT_EQ(Loc.fieldKey(), ArrayElemKey);
  EXPECT_NE(Loc.toString(*PTA).find("[*]"), std::string::npos);
}

TEST(SharingAnalysisTest, DistinctFieldsOfSharedObjectTrackedSeparately) {
  auto M = parseProgram(R"(
    class Obj { field a: int; field b: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.a = x; }
    }
    func main() {
      var s: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      t = new T(s);
      spawn t.run();
      x = s.a;
      s.b = x;
      x = s.b;
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  // Only field .a is cross-origin; .b is main-local.
  ASSERT_EQ(R.sharedLocations().size(), 1u);
  EXPECT_NE(R.sharedLocations()[0].toString(*PTA).find(".a"),
            std::string::npos);
  EXPECT_EQ(R.numSharedObjects(), 1u);
}

TEST(SharingAnalysisTest, SharedAccessStmtQuery) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      t = new T(s);
      spawn t.run();
      x = s.v;
    }
  )");
  auto PTA = runOPA(*M);
  SharingResult R = runSharingAnalysis(*PTA);
  // Find the two access statements: the write in run(), the read in main.
  const Function *Run = M->findClass("T")->findMethod("run");
  unsigned WriteId = ~0u, ReadId = ~0u;
  for (const auto &S : Run->body())
    if (isa<FieldStoreStmt>(S.get()))
      WriteId = S->getId();
  for (const auto &S : M->getMain()->body())
    if (isa<FieldLoadStmt>(S.get()))
      ReadId = S->getId();
  ASSERT_NE(WriteId, ~0u);
  ASSERT_NE(ReadId, ~0u);
  EXPECT_TRUE(R.isSharedAccess(WriteId));
  EXPECT_TRUE(R.isSharedAccess(ReadId));
  EXPECT_EQ(R.numSharedAccessStmts(), 2u);
}

} // namespace
