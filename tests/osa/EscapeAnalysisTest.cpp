//===- EscapeAnalysisTest.cpp - escape-analysis baseline unit tests -------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/OSA/EscapeAnalysis.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/OSA/SharingAnalysis.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

std::unique_ptr<PTAResult> runOPA(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  return runPointerAnalysis(M, Opts);
}

unsigned objOfType(const PTAResult &PTA, std::string_view Name) {
  for (const ObjInfo &O : PTA.objects())
    if (O.AllocatedType->getName() == Name)
      return O.Id;
  ADD_FAILURE() << "no object of type " << Name;
  return ~0u;
}

TEST(EscapeAnalysisTest, LocalObjectsDoNotEscape) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    func main() {
      var o: Obj;
      var x: int;
      o = new Obj;
      o.v = x;
    }
  )");
  auto PTA = runOPA(*M);
  EscapeResult R = runEscapeAnalysis(*PTA);
  EXPECT_EQ(R.numEscapedObjects(), 0u);
  EXPECT_EQ(R.numSharedAccessStmts(), 0u);
  EXPECT_EQ(R.numAccessStmts(), 1u);
}

TEST(EscapeAnalysisTest, GlobalsEscape) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    global g: Obj;
    func main() {
      var o: Obj;
      var x: int;
      o = new Obj;
      @g = o;
      o.v = x;
    }
  )");
  auto PTA = runOPA(*M);
  EscapeResult R = runEscapeAnalysis(*PTA);
  EXPECT_TRUE(R.isEscaped(objOfType(*PTA, "Obj")));
  // The o.v access counts as shared even though only main runs: this is
  // exactly the imprecision OSA removes.
  EXPECT_GE(R.numSharedAccessStmts(), 1u);
}

TEST(EscapeAnalysisTest, CtorArgumentsEscape) {
  auto M = parseProgram(R"(
    class Obj { }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { }
    }
    func main() {
      var s: Obj;
      var t: T;
      s = new Obj;
      t = new T(s);
      spawn t.run();
    }
  )");
  auto PTA = runOPA(*M);
  EscapeResult R = runEscapeAnalysis(*PTA);
  EXPECT_TRUE(R.isEscaped(objOfType(*PTA, "Obj")));
  EXPECT_TRUE(R.isEscaped(objOfType(*PTA, "T")));
}

TEST(EscapeAnalysisTest, FieldReachabilityClosure) {
  auto M = parseProgram(R"(
    class Inner { }
    class Holder { field inner: Inner; }
    global g: Holder;
    func main() {
      var h: Holder;
      var i: Inner;
      h = new Holder;
      i = new Inner;
      h.inner = i;
      @g = h;
    }
  )");
  auto PTA = runOPA(*M);
  EscapeResult R = runEscapeAnalysis(*PTA);
  EXPECT_TRUE(R.isEscaped(objOfType(*PTA, "Holder")));
  EXPECT_TRUE(R.isEscaped(objOfType(*PTA, "Inner")));
}

TEST(EscapeAnalysisTest, OverApproximatesOSA) {
  // A static used by exactly one origin: escape analysis flags its
  // accesses as shared, OSA does not (Section 3.3's precision claim).
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T { method run() { } }
    global mainOnly: int;
    func main() {
      var t: T;
      var x: int;
      t = new T;
      spawn t.run();
      @mainOnly = x;
      x = @mainOnly;
    }
  )");
  auto PTA = runOPA(*M);
  EscapeResult Escape = runEscapeAnalysis(*PTA);
  SharingResult OSA = runSharingAnalysis(*PTA);
  EXPECT_EQ(OSA.numSharedAccessStmts(), 0u);
  EXPECT_EQ(Escape.numSharedAccessStmts(), 2u);
  EXPECT_GE(Escape.numSharedAccessStmts(), OSA.numSharedAccessStmts());
}

TEST(EscapeAnalysisTest, SpawnArgumentsEscape) {
  auto M = parseProgram(R"(
    class Obj { }
    class T {
      method go(o: Obj) { }
    }
    func main() {
      var o: Obj;
      var t: T;
      o = new Obj;
      t = new T;
      spawn t.go(o);
    }
  )");
  auto PTA = runOPA(*M);
  EscapeResult R = runEscapeAnalysis(*PTA);
  EXPECT_TRUE(R.isEscaped(objOfType(*PTA, "Obj")));
}

} // namespace
