//===- AnalysisManagerTest.cpp - Pass manager tests ---------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Covers the AnalysisManager: the result-sharing contract (one PTA / one
// SHB per module, asserted through invocation counters), lazy closure
// scheduling, config fingerprints (perf knobs excluded, result-affecting
// options and dependency options included), cancellation naming aux
// passes, `--analyses=` parsing, and the OSA-vs-escape over-approximation
// the paper's Table 7 is built on.
//
//===----------------------------------------------------------------------===//

#include "o2/Analysis/AnalysisManager.h"

#include "o2/IR/Parser.h"
#include "o2/O2.h"
#include "o2/Support/OutputStream.h"
#include "o2/Workload/BugModels.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

const char *RacyProgram = R"(
  class T {
    method run() { var x: int; @g = x; }
  }
  global g: int;
  func main() {
    var t: T;
    var x: int;
    t = new T;
    spawn t.run();
    x = @g;
  }
)";

std::unique_ptr<Module> parse(const char *Source) {
  std::string Err;
  auto M = parseModule(Source, Err);
  EXPECT_TRUE(M) << Err;
  return M;
}

TEST(AnalysisManagerTest, SharedInfrastructureAcrossDetectors) {
  auto M = parse(RacyProgram);
  AnalysisManager AM(*M);
  EXPECT_TRUE(AM.run({O2Phase::Detect, O2Phase::Deadlock, O2Phase::OverSync,
                      O2Phase::OSA}));

  // The whole point of the manager: one PTA and one SHB feed the race
  // detector, the deadlock detector, and the over-sync analysis.
  EXPECT_EQ(AM.invocations(O2Phase::PTA), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::SHB), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::OSA), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::Detect), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::Deadlock), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::OverSync), 1u);

  // Accessors and repeated run() calls reuse the stored results.
  EXPECT_EQ(AM.getRaces().numRaces(), 1u);
  (void)AM.getDeadlocks();
  (void)AM.getOverSync();
  EXPECT_TRUE(AM.run({O2Phase::Detect, O2Phase::Deadlock}));
  EXPECT_EQ(AM.invocations(O2Phase::PTA), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::SHB), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::Detect), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::Deadlock), 1u);

  // Every ran pass reports wall-clock and the total includes them all.
  EXPECT_GT(AM.totalSeconds(), 0.0);
  double Sum = 0;
  for (unsigned K = 1; K < NumO2Phases; ++K)
    Sum += AM.seconds(static_cast<O2Phase>(K));
  EXPECT_DOUBLE_EQ(AM.totalSeconds(), Sum);
}

TEST(AnalysisManagerTest, LazyGettersComputeClosureOnDemand) {
  auto M = parse(RacyProgram);
  AnalysisManager AM(*M);
  EXPECT_FALSE(AM.ran(O2Phase::PTA));

  // getDeadlocks() pulls in exactly its dependency closure: PTA and SHB,
  // but neither OSA nor the race detector.
  (void)AM.getDeadlocks();
  EXPECT_TRUE(AM.ran(O2Phase::PTA));
  EXPECT_TRUE(AM.ran(O2Phase::SHB));
  EXPECT_TRUE(AM.ran(O2Phase::Deadlock));
  EXPECT_FALSE(AM.ran(O2Phase::OSA));
  EXPECT_FALSE(AM.ran(O2Phase::Detect));
  EXPECT_FALSE(AM.ran(O2Phase::RacerD));

  // Pulling the race report afterwards reuses both.
  EXPECT_EQ(AM.getRaces().numRaces(), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::PTA), 1u);
  EXPECT_EQ(AM.invocations(O2Phase::SHB), 1u);
}

TEST(AnalysisManagerTest, ManagerMatchesFacade) {
  auto M = parse(RacyProgram);
  AnalysisManager AM(*M);
  AM.run(AnalysisSet::defaultSet());

  O2Analysis Facade = analyzeModule(*M);
  EXPECT_EQ(AM.getRaces().numRaces(), Facade.Races.numRaces());
  EXPECT_EQ(AM.getSharing().sharedLocations().size(),
            Facade.Sharing.sharedLocations().size());
}

TEST(AnalysisManagerTest, FingerprintIgnoresPerfKnobs) {
  O2Config Base;
  O2Config Tuned;
  Tuned.Detector.Jobs = 7;
  Tuned.Detector.MinParallelLocations = 1;
  Tuned.Detector.LocksetMatrixMaxSize = 123;
  Tuned.PTA.NodeBudget = Base.PTA.NodeBudget; // explicit: budget is NOT a knob

  for (unsigned K = 1; K < NumO2Phases; ++K) {
    O2Phase P = static_cast<O2Phase>(K);
    EXPECT_EQ(passFingerprint(P, Base), passFingerprint(P, Tuned))
        << "perf knob changed the fingerprint of " << phaseName(P);
  }
  EXPECT_EQ(analysisSetFingerprint(AnalysisSet::all(), Base),
            analysisSetFingerprint(AnalysisSet::all(), Tuned));
}

TEST(AnalysisManagerTest, FingerprintTracksResultAffectingOptions) {
  O2Config Base;

  // PTA options propagate to every dependent pass.
  O2Config Worklist;
  Worklist.PTA.Solver = SolverKind::Worklist;
  EXPECT_NE(passFingerprint(O2Phase::PTA, Base),
            passFingerprint(O2Phase::PTA, Worklist));
  EXPECT_NE(passFingerprint(O2Phase::Detect, Base),
            passFingerprint(O2Phase::Detect, Worklist));
  EXPECT_NE(passFingerprint(O2Phase::Deadlock, Base),
            passFingerprint(O2Phase::Deadlock, Worklist));
  // ...but not to the PTA-independent syntactic baseline.
  EXPECT_EQ(passFingerprint(O2Phase::RacerD, Base),
            passFingerprint(O2Phase::RacerD, Worklist));

  // Detector options stay local to the detector.
  O2Config Serial;
  Serial.Detector.Engine = RaceEngineKind::Serial;
  EXPECT_EQ(passFingerprint(O2Phase::PTA, Base),
            passFingerprint(O2Phase::PTA, Serial));
  EXPECT_NE(passFingerprint(O2Phase::Detect, Base),
            passFingerprint(O2Phase::Detect, Serial));

  // SHB options reach the detector through the dependency closure.
  O2Config NoSerialize;
  NoSerialize.Detector.SHB.SerializeEventHandlers = false;
  EXPECT_EQ(passFingerprint(O2Phase::PTA, Base),
            passFingerprint(O2Phase::PTA, NoSerialize));
  EXPECT_NE(passFingerprint(O2Phase::SHB, Base),
            passFingerprint(O2Phase::SHB, NoSerialize));
  EXPECT_NE(passFingerprint(O2Phase::Detect, Base),
            passFingerprint(O2Phase::Detect, NoSerialize));

  O2Config K2;
  K2.PTA.Kind = ContextKind::KCallsite;
  K2.PTA.K = 2;
  EXPECT_NE(passFingerprint(O2Phase::PTA, Base),
            passFingerprint(O2Phase::PTA, K2));
}

TEST(AnalysisManagerTest, SetFingerprintCoversRequestedClosure) {
  O2Config Cfg;
  uint64_t Race = analysisSetFingerprint({O2Phase::Detect}, Cfg);
  uint64_t RaceDeadlock =
      analysisSetFingerprint({O2Phase::Detect, O2Phase::Deadlock}, Cfg);
  uint64_t Default = analysisSetFingerprint(AnalysisSet::defaultSet(), Cfg);
  EXPECT_NE(Race, RaceDeadlock);
  EXPECT_NE(Race, Default);
  // Deterministic across calls.
  EXPECT_EQ(RaceDeadlock,
            analysisSetFingerprint({O2Phase::Deadlock, O2Phase::Detect}, Cfg));
}

TEST(AnalysisManagerTest, CancellationNamesAuxPass) {
  auto M = parse(RacyProgram);

  // A pre-cancelled token with a RacerD-only request: RacerD has no
  // dependencies, so it is the first pass to observe the token — the
  // recorded phase is the aux analysis itself, not "pta".
  CancellationToken Cancelled;
  Cancelled.cancel();
  O2Config Cfg;
  Cfg.Cancel = &Cancelled;
  AnalysisManager AM(*M, Cfg);
  EXPECT_FALSE(AM.run({O2Phase::RacerD}));
  EXPECT_TRUE(AM.cancelled());
  EXPECT_EQ(AM.cancelledIn(), O2Phase::RacerD);
  EXPECT_STREQ(phaseName(AM.cancelledIn()), "racerd");

  // Cancel firing between two run() calls: the completed results stay,
  // the newly requested aux pass is the one that reports the stop.
  CancellationToken Token;
  O2Config Cfg2;
  Cfg2.Cancel = &Token;
  AnalysisManager AM2(*M, Cfg2);
  EXPECT_TRUE(AM2.run({O2Phase::Detect}));
  EXPECT_EQ(AM2.getRaces().numRaces(), 1u);
  Token.cancel();
  EXPECT_FALSE(AM2.run({O2Phase::Deadlock}));
  EXPECT_EQ(AM2.cancelledIn(), O2Phase::Deadlock);
  EXPECT_STREQ(phaseName(AM2.cancelledIn()), "deadlock");
  // The race report computed before the cancel survives untouched.
  EXPECT_TRUE(AM2.ran(O2Phase::Detect));
  EXPECT_EQ(AM2.getRaces().numRaces(), 1u);
}

TEST(AnalysisManagerTest, EscapeOverApproximatesOSA) {
  // Table 7 direction: the thread-escape baseline must never report
  // fewer shared accesses than OSA, and every object OSA finds shared
  // must be escaped. Checked over every built-in bug model.
  for (const BugModel &Model : bugModels()) {
    auto M = buildBugModel(Model);
    ASSERT_TRUE(M);
    AnalysisManager AM(*M);
    ASSERT_TRUE(AM.run({O2Phase::OSA, O2Phase::Escape})) << Model.Name;
    const SharingResult &Sharing = AM.getSharing();
    const EscapeResult &Escape = AM.getEscape();

    EXPECT_EQ(AM.invocations(O2Phase::PTA), 1u) << Model.Name;
    EXPECT_GE(Escape.numSharedAccessStmts(), Sharing.numSharedAccessStmts())
        << Model.Name;
    for (MemLoc Loc : Sharing.sharedLocations()) {
      if (Loc.isGlobal())
        continue; // statics are trivially escaped in the baseline
      EXPECT_TRUE(Escape.isEscaped(Loc.object()))
          << Model.Name << ": OSA-shared object " << Loc.object()
          << " not escaped";
    }
  }
}

TEST(AnalysisManagerTest, ParseAnalysisSetSpellings) {
  AnalysisSet Set;
  std::string Err;

  ASSERT_TRUE(parseAnalysisSet("race,deadlock,oversync", Set, Err)) << Err;
  EXPECT_TRUE(Set.contains(O2Phase::Detect));
  EXPECT_TRUE(Set.contains(O2Phase::Deadlock));
  EXPECT_TRUE(Set.contains(O2Phase::OverSync));
  EXPECT_FALSE(Set.contains(O2Phase::RacerD));
  // Canonical rendering is schedule order, independent of input order.
  EXPECT_EQ(Set.str(), "race,deadlock,oversync");
  AnalysisSet Shuffled;
  ASSERT_TRUE(parseAnalysisSet("oversync,race,deadlock", Shuffled, Err));
  EXPECT_EQ(Shuffled.str(), Set.str());
  EXPECT_TRUE(Shuffled == Set);

  ASSERT_TRUE(parseAnalysisSet("all", Set, Err));
  EXPECT_TRUE(Set == AnalysisSet::all());

  // Infrastructure passes can be named explicitly.
  ASSERT_TRUE(parseAnalysisSet("pta,shb", Set, Err));
  EXPECT_TRUE(Set.contains(O2Phase::PTA));
  EXPECT_TRUE(Set.contains(O2Phase::SHB));

  EXPECT_FALSE(parseAnalysisSet("race,bogus", Set, Err));
  EXPECT_NE(Err.find("bogus"), std::string::npos);
  EXPECT_FALSE(parseAnalysisSet("", Set, Err));
}

TEST(AnalysisManagerTest, StatsAndJSONCoverAuxPasses) {
  auto M = parse(RacyProgram);
  AnalysisManager AM(*M);
  AM.run(AnalysisSet::all());

  StatisticRegistry Stats = AM.stats();
  EXPECT_GT(Stats.get("pta.pointer-nodes"), 0u);
  EXPECT_EQ(Stats.get("race.races"), 1u);
  EXPECT_GT(Stats.get("racerd.warnings"), 0u);
  EXPECT_GT(Stats.get("escape.objects"), 0u);

  std::string Buf;
  StringOutputStream OS(Buf);
  AM.printStatsJSON(OS);
  EXPECT_NE(Buf.find("\"analyses\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"time.pta-ms\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"time.racerd-ms\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"time.total-ms\":"), std::string::npos);
}

} // namespace
