//===- ModuleTest.cpp - Module/Type/Function unit tests ----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Module.h"

#include "o2/Support/Casting.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

TEST(ModuleTest, AddAndFindClass) {
  Module M;
  ClassType *A = M.addClass("A");
  EXPECT_EQ(M.findClass("A"), A);
  EXPECT_EQ(M.findClass("B"), nullptr);
  EXPECT_EQ(A->getSuper(), nullptr);
}

TEST(ModuleTest, SubclassChain) {
  Module M;
  ClassType *A = M.addClass("A");
  ClassType *B = M.addClass("B", A);
  ClassType *C = M.addClass("C", B);
  EXPECT_TRUE(C->isSubclassOf(A));
  EXPECT_TRUE(C->isSubclassOf(C));
  EXPECT_FALSE(A->isSubclassOf(C));
}

TEST(ModuleTest, FieldInheritanceAndIdentity) {
  Module M;
  ClassType *A = M.addClass("A");
  Field *F = A->addField("f", M.getIntType());
  ClassType *B = M.addClass("B", A);
  EXPECT_EQ(B->findField("f"), F);
  EXPECT_EQ(F->getParent(), A);
  Field *G = B->addField("g", A);
  EXPECT_NE(F->getId(), G->getId());
  EXPECT_EQ(A->findField("g"), nullptr);
}

TEST(ModuleTest, MethodDispatchWithOverride) {
  Module M;
  ClassType *A = M.addClass("A");
  ClassType *B = M.addClass("B", A);
  Function *RunA = M.addFunction("run");
  A->addMethod(RunA);
  Function *RunB = M.addFunction("run");
  B->addMethod(RunB);
  EXPECT_EQ(A->findMethod("run"), RunA);
  EXPECT_EQ(B->findMethod("run"), RunB);
  EXPECT_EQ(RunA->getClass(), A);
  EXPECT_EQ(RunB->getClass(), B);
}

TEST(ModuleTest, MethodInherited) {
  Module M;
  ClassType *A = M.addClass("A");
  ClassType *B = M.addClass("B", A);
  Function *Run = M.addFunction("run");
  A->addMethod(Run);
  EXPECT_EQ(B->findMethod("run"), Run);
  EXPECT_EQ(B->findMethod("stop"), nullptr);
}

TEST(ModuleTest, ArrayTypesAreUnique) {
  Module M;
  ClassType *A = M.addClass("A");
  ArrayType *T1 = M.getArrayType(A);
  ArrayType *T2 = M.getArrayType(A);
  EXPECT_EQ(T1, T2);
  EXPECT_EQ(T1->getElementType(), A);
  EXPECT_EQ(T1->getName(), "A[]");
  ArrayType *Nested = M.getArrayType(T1);
  EXPECT_EQ(Nested->getName(), "A[][]");
  EXPECT_NE(Nested, T1);
}

TEST(ModuleTest, GlobalsHaveDenseIds) {
  Module M;
  Global *G0 = M.addGlobal("g0", M.getIntType());
  Global *G1 = M.addGlobal("g1", M.getIntType());
  EXPECT_EQ(G0->getId(), 0u);
  EXPECT_EQ(G1->getId(), 1u);
  EXPECT_EQ(M.findGlobal("g0"), G0);
  EXPECT_EQ(M.numGlobals(), 2u);
}

TEST(ModuleTest, FunctionVariablesAndParams) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *F = M.addFunction("f", A);
  Variable *P = F->addParam("p", A);
  Variable *L = F->addLocal("l", M.getIntType());
  EXPECT_TRUE(P->isParam());
  EXPECT_FALSE(L->isParam());
  EXPECT_EQ(F->findVariable("p"), P);
  EXPECT_EQ(F->findVariable("l"), L);
  EXPECT_EQ(F->findVariable("q"), nullptr);
  EXPECT_NE(P->getId(), L->getId());
}

TEST(ModuleTest, ReturnVarLazyAndTyped) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *F = M.addFunction("f", A);
  Variable *R1 = F->getReturnVar();
  Variable *R2 = F->getReturnVar();
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(R1->getType(), A);

  Function *V = M.addFunction("v");
  EXPECT_EQ(V->getReturnVar(), nullptr);
}

TEST(ModuleTest, FindFunctionSkipsMethods) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Free = M.addFunction("work");
  Function *Method = M.addFunction("work");
  A->addMethod(Method);
  EXPECT_EQ(M.findFunction("work"), Free);
}

TEST(ModuleTest, TypeKinds) {
  Module M;
  ClassType *A = M.addClass("A");
  EXPECT_TRUE(isa<IntType>(M.getIntType()));
  EXPECT_TRUE(isa<ClassType>(A));
  EXPECT_TRUE(isa<ArrayType>(M.getArrayType(A)));
  EXPECT_FALSE(M.getIntType()->isReference());
  EXPECT_TRUE(A->isReference());
}

TEST(ModuleTest, MainLookup) {
  Module M;
  EXPECT_EQ(M.getMain(), nullptr);
  Function *Main = M.addFunction("main");
  EXPECT_EQ(M.getMain(), Main);
}

} // namespace
