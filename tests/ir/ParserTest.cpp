//===- ParserTest.cpp - Textual OIR parser unit tests -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Parser.h"

#include "o2/IR/Module.h"
#include "o2/Support/Casting.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseOk(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  return M;
}

std::string parseErr(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_FALSE(M) << "expected parse failure";
  return Err;
}

TEST(ParserTest, EmptyModule) {
  auto M = parseOk("");
  EXPECT_TRUE(M->classes().empty());
  EXPECT_TRUE(M->functions().empty());
}

TEST(ParserTest, GlobalsAndComments) {
  auto M = parseOk(R"(
    // a shared counter
    global counter: int;
    global table: Data; // forward type reference
    class Data { }
  )");
  ASSERT_TRUE(M->findGlobal("counter"));
  EXPECT_EQ(M->findGlobal("counter")->getType(), M->getIntType());
  EXPECT_EQ(M->findGlobal("table")->getType(), M->findClass("Data"));
}

TEST(ParserTest, ClassWithFieldsAndMethods) {
  auto M = parseOk(R"(
    class Task extends Base {
      field state: int;
      field next: Task;
      method run() {
        var s: int;
        s = this.state;
        this.state = s;
      }
    }
    class Base { field owner: int; }
  )");
  ClassType *Task = M->findClass("Task");
  ClassType *Base = M->findClass("Base");
  ASSERT_TRUE(Task && Base);
  EXPECT_EQ(Task->getSuper(), Base);
  EXPECT_TRUE(Task->findField("state"));
  EXPECT_TRUE(Task->findField("owner")); // inherited
  Function *Run = Task->findMethod("run");
  ASSERT_TRUE(Run);
  ASSERT_EQ(Run->params().size(), 1u);
  EXPECT_EQ(Run->params()[0]->getName(), "this");
  EXPECT_EQ(Run->params()[0]->getType(), Task);
  EXPECT_EQ(Run->size(), 2u);
}

TEST(ParserTest, AllStatementForms) {
  auto M = parseOk(R"(
    global g: Obj;
    class Obj {
      field f: Obj;
      method init(a: Obj) { }
      method run() { }
      method get(): Obj { return this; }
    }
    func helper(p: Obj): Obj {
      return p;
    }
    func main() {
      var x: Obj;
      var y: Obj;
      var arr: Obj[];
      x = new Obj;
      y = new Obj(x);
      loop { x = new Obj; }
      arr = newarray Obj;
      arr[*] = x;
      y = arr[*];
      x = y;
      x.f = y;
      y = x.f;
      @g = x;
      y = @g;
      y = helper(x);
      helper(x);
      y = x.get();
      x.run();
      acquire x;
      release x;
      spawn x.run();
      join x;
      return;
    }
  )");
  Function *Main = M->getMain();
  ASSERT_TRUE(Main);
  EXPECT_EQ(Main->size(), 20u);

  // Spot-check a few statement kinds in order.
  const auto &Body = Main->body();
  EXPECT_TRUE(isa<AllocStmt>(Body[0].get()));
  auto *WithCtor = cast<AllocStmt>(Body[1].get());
  EXPECT_EQ(WithCtor->getArgs().size(), 1u);
  auto *InLoop = cast<AllocStmt>(Body[2].get());
  EXPECT_TRUE(InLoop->isInLoop());
  EXPECT_TRUE(isa<ArrayAllocStmt>(Body[3].get()));
  EXPECT_TRUE(isa<ArrayStoreStmt>(Body[4].get()));
  EXPECT_TRUE(isa<ArrayLoadStmt>(Body[5].get()));
  EXPECT_TRUE(isa<AssignStmt>(Body[6].get()));
  EXPECT_TRUE(isa<FieldStoreStmt>(Body[7].get()));
  EXPECT_TRUE(isa<FieldLoadStmt>(Body[8].get()));
  EXPECT_TRUE(isa<GlobalStoreStmt>(Body[9].get()));
  EXPECT_TRUE(isa<GlobalLoadStmt>(Body[10].get()));
  auto *Direct = cast<CallStmt>(Body[11].get());
  EXPECT_FALSE(Direct->isVirtual());
  EXPECT_TRUE(Direct->getTarget());
  auto *DirectDrop = cast<CallStmt>(Body[12].get());
  EXPECT_EQ(DirectDrop->getTarget(), nullptr);
  auto *Virt = cast<CallStmt>(Body[13].get());
  EXPECT_TRUE(Virt->isVirtual());
  EXPECT_TRUE(isa<CallStmt>(Body[14].get()));
  EXPECT_TRUE(isa<AcquireStmt>(Body[15].get()));
  EXPECT_TRUE(isa<ReleaseStmt>(Body[16].get()));
  EXPECT_TRUE(isa<SpawnStmt>(Body[17].get()));
  EXPECT_TRUE(isa<JoinStmt>(Body[18].get()));
  EXPECT_TRUE(isa<ReturnStmt>(Body[19].get()));
}

TEST(ParserTest, ForwardFunctionReference) {
  auto M = parseOk(R"(
    func main() {
      var x: int;
      x = late();
    }
    func late(): int {
      return;
    }
  )");
  EXPECT_TRUE(M->findFunction("late"));
}

TEST(ParserTest, ArrayOfArrays) {
  auto M = parseOk(R"(
    func main() {
      var m: int[][];
      m = newarray int[];
    }
  )");
  Variable *V = M->getMain()->findVariable("m");
  ASSERT_TRUE(V);
  EXPECT_EQ(V->getType()->getName(), "int[][]");
}

TEST(ParserTest, ErrorUnknownVariable) {
  std::string Err = parseErr(R"(
    func main() {
      x = y;
    }
  )");
  EXPECT_NE(Err.find("unknown variable"), std::string::npos);
}

TEST(ParserTest, ErrorUnknownClass) {
  std::string Err = parseErr(R"(
    func main() {
      var x: Missing;
    }
  )");
  EXPECT_NE(Err.find("unknown type"), std::string::npos);
}

TEST(ParserTest, ErrorUnknownField) {
  std::string Err = parseErr(R"(
    class A { }
    func main() {
      var a: A;
      var b: A;
      a = new A;
      b = a.nope;
    }
  )");
  EXPECT_NE(Err.find("no field"), std::string::npos);
}

TEST(ParserTest, ErrorDuplicateClass) {
  std::string Err = parseErr("class A { } class A { }");
  EXPECT_NE(Err.find("duplicate class"), std::string::npos);
}

TEST(ParserTest, ErrorUnknownSuper) {
  std::string Err = parseErr("class A extends Nope { }");
  EXPECT_NE(Err.find("unknown superclass"), std::string::npos);
}

TEST(ParserTest, ErrorBadToken) {
  std::string Err = parseErr("class A { field f % int; }");
  EXPECT_NE(Err.find("unexpected character"), std::string::npos);
}

TEST(ParserTest, ErrorHasLineInfo) {
  std::string Err = parseErr("\n\nclass A {\n  junk\n}");
  EXPECT_EQ(Err.substr(0, 2), "4:");
}

} // namespace
