//===- IRBuilderTest.cpp - IRBuilder unit tests -------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/IRBuilder.h"

#include "o2/Support/Casting.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

struct BuilderFixture : ::testing::Test {
  Module M;
  ClassType *A = M.addClass("A");
  Function *F = M.addFunction("main");
  IRBuilder B{M, F};
};

TEST_F(BuilderFixture, AllocAssignsSitesAndIndices) {
  Variable *X = F->addLocal("x", A);
  Variable *Y = F->addLocal("y", A);
  AllocStmt *S1 = B.alloc(X, A);
  AllocStmt *S2 = B.alloc(Y, A);
  EXPECT_EQ(S1->getIndex(), 0u);
  EXPECT_EQ(S2->getIndex(), 1u);
  EXPECT_NE(S1->getSite(), S2->getSite());
  EXPECT_NE(S1->getId(), S2->getId());
  EXPECT_FALSE(S1->isInLoop());
  EXPECT_EQ(F->size(), 2u);
}

TEST_F(BuilderFixture, LoopFlagsAllocsAndSpawns) {
  A->addMethod(M.addFunction("run"));
  Variable *X = F->addLocal("x", A);
  B.beginLoop();
  AllocStmt *S = B.alloc(X, A);
  SpawnStmt *Sp = B.spawn(X, "run");
  B.endLoop();
  AllocStmt *After = B.alloc(X, A);
  EXPECT_TRUE(S->isInLoop());
  EXPECT_TRUE(Sp->isInLoop());
  EXPECT_FALSE(After->isInLoop());
}

TEST_F(BuilderFixture, FieldAccessResolvesThroughStaticType) {
  Field *Fld = A->addField("f", A);
  ClassType *Sub = M.addClass("Sub", A);
  Variable *X = F->addLocal("x", Sub);
  Variable *Y = F->addLocal("y", A);
  FieldLoadStmt *L = B.fieldLoad(Y, X, "f");
  EXPECT_EQ(L->getField(), Fld);
  FieldStoreStmt *S = B.fieldStore(X, "f", Y);
  EXPECT_EQ(S->getField(), Fld);
}

TEST_F(BuilderFixture, CallKinds) {
  Function *Callee = M.addFunction("callee", A);
  Variable *X = F->addLocal("x", A);
  Variable *R = F->addLocal("r", A);
  CallStmt *Direct = B.callDirect(R, Callee, {X});
  EXPECT_FALSE(Direct->isVirtual());
  EXPECT_EQ(Direct->getDirectCallee(), Callee);
  EXPECT_EQ(Direct->getArgs().size(), 1u);

  Function *Method = M.addFunction("m");
  A->addMethod(Method);
  CallStmt *Virt = B.call(nullptr, X, "m");
  EXPECT_TRUE(Virt->isVirtual());
  EXPECT_EQ(Virt->getMethodName(), "m");
  EXPECT_EQ(Virt->getReceiver(), X);
  EXPECT_NE(Direct->getSite(), Virt->getSite());
}

TEST_F(BuilderFixture, SyncStatements) {
  A->addMethod(M.addFunction("run"));
  Variable *T = F->addLocal("t", A);
  Variable *L = F->addLocal("l", A);
  B.acquire(L);
  B.spawn(T, "run");
  B.release(L);
  B.join(T);
  ASSERT_EQ(F->size(), 4u);
  EXPECT_TRUE(isa<AcquireStmt>(F->body()[0].get()));
  EXPECT_TRUE(isa<SpawnStmt>(F->body()[1].get()));
  EXPECT_TRUE(isa<ReleaseStmt>(F->body()[2].get()));
  EXPECT_TRUE(isa<JoinStmt>(F->body()[3].get()));
}

TEST_F(BuilderFixture, GlobalAndArrayStatements) {
  Global *G = M.addGlobal("g", A);
  ArrayType *Arr = M.getArrayType(A);
  Variable *X = F->addLocal("x", A);
  Variable *Ar = F->addLocal("arr", Arr);
  B.globalStore(G, X);
  B.globalLoad(X, G);
  B.allocArray(Ar, Arr);
  B.arrayStore(Ar, X);
  B.arrayLoad(X, Ar);
  EXPECT_EQ(F->size(), 5u);
  EXPECT_EQ(cast<ArrayAllocStmt>(F->body()[2].get())->getAllocType(), Arr);
}

TEST_F(BuilderFixture, StmtIdsAreModuleWideDense) {
  Variable *X = F->addLocal("x", A);
  B.alloc(X, A);
  Function *F2 = M.addFunction("other");
  IRBuilder B2(M, F2);
  Variable *Y = F2->addLocal("y", A);
  AllocStmt *S2 = B2.alloc(Y, A);
  EXPECT_EQ(S2->getId(), 1u);
  EXPECT_EQ(M.numStmts(), 2u);
}

} // namespace
