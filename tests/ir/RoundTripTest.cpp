//===- RoundTripTest.cpp - print/parse round-trip tests ------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Parser.h"
#include "o2/IR/Printer.h"
#include "o2/IR/Verifier.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

/// Asserts that printing, reparsing, and reprinting \p Src is a fixpoint.
void checkRoundTrip(std::string_view Src) {
  std::string Err;
  auto M1 = parseModule(Src, Err);
  ASSERT_TRUE(M1) << Err;
  std::string P1 = printModule(*M1);
  auto M2 = parseModule(P1, Err);
  ASSERT_TRUE(M2) << Err << "\nprinted module was:\n" << P1;
  std::string P2 = printModule(*M2);
  EXPECT_EQ(P1, P2);

  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M2, Errors))
      << "verifier rejected round-tripped module: " << Errors.front();
}

TEST(RoundTripTest, HelloConcurrency) {
  checkRoundTrip(R"(
    class Worker {
      field data: int;
      method run() {
        var d: int;
        d = this.data;
        this.data = d;
      }
    }
    func main() {
      var w: Worker;
      w = new Worker;
      spawn w.run();
      join w;
    }
  )");
}

TEST(RoundTripTest, EveryStatementForm) {
  checkRoundTrip(R"(
    global shared: Node;
    global hits: int;
    class Node {
      field next: Node;
      field value: int;
      method init(n: Node) { this.next = n; }
      method run() {
        var v: int;
        v = this.value;
      }
      method get(): Node { return this; }
    }
    func pick(a: Node, b: Node): Node {
      return a;
    }
    func main() {
      var x: Node;
      var y: Node;
      var c: int;
      var arr: Node[];
      x = new Node(x);
      y = new Node(x);
      loop { y = new Node(x); }
      loop { spawn y.run(); }
      arr = newarray Node;
      arr[*] = x;
      y = arr[*];
      y = x;
      x.next = y;
      y = x.next;
      c = x.value;
      x.value = c;
      @shared = x;
      y = @shared;
      @hits = c;
      c = @hits;
      y = pick(x, y);
      pick(x, y);
      y = x.get();
      x.run();
      acquire x;
      release x;
      spawn x.run();
      join x;
    }
  )");
}

TEST(RoundTripTest, InheritanceHierarchy) {
  checkRoundTrip(R"(
    class A { field f: int; method m() { } }
    class B extends A { method m() { } }
    class C extends B { field g: A; }
    func main() {
      var c: C;
      var a: A;
      c = new C;
      a = c;
      a.m();
    }
  )");
}

TEST(RoundTripTest, MethodsWithParamsAndReturns) {
  checkRoundTrip(R"(
    class Box {
      field item: Box;
      method swap(other: Box, extra: int): Box {
        var tmp: Box;
        tmp = this.item;
        this.item = other;
        return tmp;
      }
    }
    func main() {
      var b: Box;
      var r: Box;
      var k: int;
      b = new Box;
      r = b.swap(b, k);
    }
  )");
}

} // namespace
