//===- VerifierTest.cpp - Verifier unit tests ----------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Verifier.h"

#include "o2/IR/IRBuilder.h"
#include "o2/IR/Module.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::vector<std::string> verify(const Module &M) {
  std::vector<std::string> Errors;
  verifyModule(M, Errors);
  return Errors;
}

bool hasError(const std::vector<std::string> &Errors,
              std::string_view Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(VerifierTest, MissingMain) {
  Module M;
  auto Errors = verify(M);
  EXPECT_TRUE(hasError(Errors, "no 'main'"));
}

TEST(VerifierTest, MainWithParamsRejected) {
  Module M;
  Function *Main = M.addFunction("main");
  Main->addParam("argc", M.getIntType());
  EXPECT_TRUE(hasError(verify(M), "no parameters"));
}

TEST(VerifierTest, CleanModulePasses) {
  Module M;
  ClassType *A = M.addClass("A");
  A->addField("f", M.getIntType());
  Function *Main = M.addFunction("main");
  IRBuilder B(M, Main);
  Variable *X = Main->addLocal("x", A);
  Variable *V = Main->addLocal("v", M.getIntType());
  B.alloc(X, A);
  B.fieldLoad(V, X, "f");
  B.fieldStore(X, "f", V);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, Errors)) << Errors.front();
}

TEST(VerifierTest, ForeignVariableRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Function *Other = M.addFunction("other");
  Variable *Foreign = Other->addLocal("x", A);
  Variable *Mine = Main->addLocal("y", A);
  IRBuilder B(M, Main);
  B.assign(Mine, Foreign);
  EXPECT_TRUE(hasError(verify(M), "belongs to another function"));
}

TEST(VerifierTest, BadAssignTypeRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  ClassType *B1 = M.addClass("B", A);
  Function *Main = M.addFunction("main");
  Variable *Sup = Main->addLocal("sup", A);
  Variable *Sub = Main->addLocal("sub", B1);
  IRBuilder B(M, Main);
  B.assign(Sup, Sub); // upcast OK
  B.assign(Sub, Sup); // downcast rejected
  auto Errors = verify(M);
  EXPECT_TRUE(hasError(Errors, "cannot store 'A' into 'B'"));
  EXPECT_EQ(Errors.size(), 1u);
}

TEST(VerifierTest, ConstructorArityChecked) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Init = M.addFunction("init");
  A->addMethod(Init);
  Init->addParam("this", A);
  Init->addParam("n", A);
  Function *Main = M.addFunction("main");
  Variable *X = Main->addLocal("x", A);
  IRBuilder B(M, Main);
  B.alloc(X, A); // missing the ctor argument
  EXPECT_TRUE(hasError(verify(M), "expected 1"));
}

TEST(VerifierTest, CtorArgsWithoutInitRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Variable *X = Main->addLocal("x", A);
  IRBuilder B(M, Main);
  B.alloc(X, A, {X});
  EXPECT_TRUE(hasError(verify(M), "has no 'init'"));
}

TEST(VerifierTest, UnknownVirtualMethodRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Variable *X = Main->addLocal("x", A);
  IRBuilder B(M, Main);
  B.call(nullptr, X, "nope");
  EXPECT_TRUE(hasError(verify(M), "no method 'nope'"));
}

TEST(VerifierTest, CallArityChecked) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Callee = M.addFunction("callee");
  Callee->addParam("a", A);
  Callee->addParam("b", A);
  Function *Main = M.addFunction("main");
  Variable *X = Main->addLocal("x", A);
  IRBuilder B(M, Main);
  B.callDirect(nullptr, Callee, {X});
  EXPECT_TRUE(hasError(verify(M), "passes 1 argument(s), expected 2"));
}

TEST(VerifierTest, UnbalancedLocksRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Variable *L = Main->addLocal("l", A);
  IRBuilder B(M, Main);
  B.acquire(L);
  EXPECT_TRUE(hasError(verify(M), "unbalanced lock region"));
}

TEST(VerifierTest, BadNestingRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Variable *L1 = Main->addLocal("l1", A);
  Variable *L2 = Main->addLocal("l2", A);
  IRBuilder B(M, Main);
  B.acquire(L1);
  B.acquire(L2);
  B.release(L1); // out of order
  B.release(L2);
  EXPECT_TRUE(hasError(verify(M), "not well nested"));
}

TEST(VerifierTest, ReleaseWithoutAcquireRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Variable *L = Main->addLocal("l", A);
  IRBuilder B(M, Main);
  B.release(L);
  EXPECT_TRUE(hasError(verify(M), "release without matching acquire"));
}

TEST(VerifierTest, IntLockRejected) {
  Module M;
  Function *Main = M.addFunction("main");
  Variable *L = Main->addLocal("l", M.getIntType());
  IRBuilder B(M, Main);
  B.acquire(L);
  B.release(L);
  EXPECT_TRUE(hasError(verify(M), "reference type"));
}

TEST(VerifierTest, SpawnWithoutEntryRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Variable *X = Main->addLocal("x", A);
  IRBuilder B(M, Main);
  B.spawn(X, "run");
  EXPECT_TRUE(hasError(verify(M), "no entry method 'run'"));
}

TEST(VerifierTest, ReturnFromVoidRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Variable *X = Main->addLocal("x", A);
  IRBuilder B(M, Main);
  B.ret(X);
  EXPECT_TRUE(hasError(verify(M), "void function"));
}

TEST(VerifierTest, ArrayOpsOnNonArraysRejected) {
  Module M;
  ClassType *A = M.addClass("A");
  Function *Main = M.addFunction("main");
  Variable *X = Main->addLocal("x", A);
  Variable *Y = Main->addLocal("y", A);
  IRBuilder B(M, Main);
  B.arrayLoad(Y, X);
  B.arrayStore(X, Y);
  auto Errors = verify(M);
  EXPECT_TRUE(hasError(Errors, "array load from non-array"));
  EXPECT_TRUE(hasError(Errors, "array store to non-array"));
}

} // namespace
