//===- ParserErrorCorpusTest.cpp - Malformed-input corpus ---------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Feeds every file of tests/ir/corpus/ — truncated programs, undefined
// types, duplicate names, garbage tokens — through the parser and checks
// that each one is rejected with a positioned "line:col: message"
// diagnostic instead of crashing or being silently accepted.
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Parser.h"

#include "o2/IR/Module.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace o2;

namespace {

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(O2_PARSER_CORPUS_DIR))
    if (Entry.path().extension() == ".oir")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string readFile(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

class ParserErrorCorpusTest
    : public testing::TestWithParam<std::filesystem::path> {};

TEST_P(ParserErrorCorpusTest, RejectedWithPositionedDiagnostic) {
  const std::filesystem::path &Path = GetParam();
  std::string Source = readFile(Path);
  ASSERT_FALSE(Source.empty()) << "unreadable corpus file " << Path;

  std::string Err;
  auto M = parseModule(Source, Err, Path.stem().string());
  EXPECT_EQ(M, nullptr) << Path << " parsed although it is malformed";
  ASSERT_FALSE(Err.empty()) << Path << " rejected without a diagnostic";

  // Diagnostics are "line:col: message" with 1-based positions.
  unsigned Line = 0, Col = 0;
  char Colon = 0;
  std::istringstream Pos(Err);
  Pos >> Line >> Colon >> Col;
  EXPECT_GT(Line, 0u) << "no line number in '" << Err << "'";
  EXPECT_GT(Col, 0u) << "no column in '" << Err << "'";
  EXPECT_NE(Err.find(": "), std::string::npos)
      << "no message in '" << Err << "'";
}

INSTANTIATE_TEST_SUITE_P(Corpus, ParserErrorCorpusTest,
                         testing::ValuesIn(corpusFiles()),
                         [](const auto &Info) {
                           return Info.param.stem().string();
                         });

// The corpus directory must actually be populated; an empty parameter
// list would silently skip all of the above.
TEST(ParserErrorCorpus, CorpusIsNonEmpty) {
  EXPECT_GE(corpusFiles().size(), 6u);
}

} // namespace
