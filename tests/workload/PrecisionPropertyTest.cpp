//===- PrecisionPropertyTest.cpp - property-based cross-analysis checks ---------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Parameterized (property-style) sweeps over generated workloads that pin
// the paper's cross-analysis claims:
//   1. the three detector optimizations never change the racy locations;
//   2. OPA's race report is a subset of the context-insensitive one
//      (0-ctx only adds false positives on these workloads);
//   3. intended races are always found;
//   4. OSA never reports more shared accesses than escape analysis.
//
//===----------------------------------------------------------------------===//

#include "o2/O2.h"
#include "o2/OSA/EscapeAnalysis.h"
#include "o2/Workload/Generator.h"

#include <gtest/gtest.h>

#include <set>

using namespace o2;

namespace {

WorkloadProfile smallProfile(uint64_t Seed) {
  WorkloadProfile P;
  P.Name = "prop-seed" + std::to_string(Seed);
  P.NumThreads = 3;
  P.NumEventHandlers = 2;
  P.CallDepth = 3;
  P.RacyObjects = 2;
  P.LockedObjects = 2;
  P.ReadOnlyObjects = 2;
  P.ProtectedWritesPerOrigin = 2;
  P.UnprotectedWritesPerOrigin = 2;
  P.ReadsPerOrigin = 2;
  P.NestedSpawnDepth = Seed % 2 ? 2 : 0;
  P.SpawnInLoop = Seed % 3 == 0;
  P.Seed = Seed;
  return P;
}

class PrecisionProperty : public ::testing::TestWithParam<uint64_t> {};

std::set<uint64_t> raceLocs(const RaceReport &R) {
  std::set<uint64_t> Locs;
  for (const Race &Rc : R.races())
    Locs.insert(Rc.Loc.key());
  return Locs;
}

std::set<std::pair<unsigned, unsigned>> racePairs(const RaceReport &R) {
  std::set<std::pair<unsigned, unsigned>> Pairs;
  for (const Race &Rc : R.races())
    Pairs.insert({Rc.A->getId(), Rc.B->getId()});
  return Pairs;
}

TEST_P(PrecisionProperty, OptimizationsPreserveRacyLocations) {
  auto M = generateWorkload(smallProfile(GetParam()));

  O2Config Optimized;
  O2Analysis A = analyzeModule(*M, Optimized);

  O2Config Naive;
  Naive.Detector.Engine = RaceEngineKind::Serial;
  Naive.Detector.HB = RaceHBKind::Naive;
  Naive.Detector.CacheLocksetChecks = false;
  Naive.Detector.LockRegionMerging = false;
  O2Analysis B = analyzeModule(*M, Naive);

  EXPECT_EQ(raceLocs(A.Races), raceLocs(B.Races));
  EXPECT_LE(A.Races.numRaces(), B.Races.numRaces());
  // Optimized races are a subset of naive races (pairwise).
  auto NaivePairs = racePairs(B.Races);
  for (const auto &P : racePairs(A.Races))
    EXPECT_TRUE(NaivePairs.count(P));
}

TEST_P(PrecisionProperty, EachOptimizationAloneIsSound) {
  auto M = generateWorkload(smallProfile(GetParam()));
  O2Config Base;
  Base.Detector.Engine = RaceEngineKind::Serial;
  Base.Detector.HB = RaceHBKind::Naive;
  Base.Detector.CacheLocksetChecks = false;
  Base.Detector.LockRegionMerging = false;
  std::set<uint64_t> Expected = raceLocs(analyzeModule(*M, Base).Races);

  for (unsigned Opt = 0; Opt < 3; ++Opt) {
    O2Config C = Base;
    if (Opt == 0)
      C.Detector.HB = RaceHBKind::Memo;
    if (Opt == 1)
      C.Detector.CacheLocksetChecks = true;
    if (Opt == 2)
      C.Detector.LockRegionMerging = true;
    EXPECT_EQ(raceLocs(analyzeModule(*M, C).Races), Expected)
        << "optimization " << Opt;
  }
}

TEST_P(PrecisionProperty, OriginRacesSubsetOfInsensitiveRaces) {
  auto M = generateWorkload(smallProfile(GetParam()));

  O2Config OPA;
  O2Analysis A = analyzeModule(*M, OPA);

  O2Config Insensitive;
  Insensitive.PTA.Kind = ContextKind::Insensitive;
  O2Analysis B = analyzeModule(*M, Insensitive);

  auto CoarsePairs = racePairs(B.Races);
  for (const auto &P : racePairs(A.Races))
    EXPECT_TRUE(CoarsePairs.count(P))
        << "race missed by 0-ctx: stmts " << P.first << "," << P.second;
  EXPECT_LE(A.Races.numRaces(), B.Races.numRaces());
}

TEST_P(PrecisionProperty, IntendedRacesAreFound) {
  WorkloadProfile P = smallProfile(GetParam());
  auto M = generateWorkload(P);
  O2Analysis A = analyzeModule(*M);
  // Unprotected writes from multiple origins must surface as races.
  EXPECT_GE(A.Races.numRaces(), 1u);
  // And the race statistics are consistent.
  EXPECT_EQ(A.Races.stats().get("race.races"), A.Races.numRaces());
}

TEST_P(PrecisionProperty, OSANoLooserThanEscapeAnalysis) {
  auto M = generateWorkload(smallProfile(GetParam()));
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  SharingResult OSA = runSharingAnalysis(*PTA);
  EscapeResult Escape = runEscapeAnalysis(*PTA);
  EXPECT_LE(OSA.numSharedAccessStmts(), Escape.numSharedAccessStmts());
  EXPECT_EQ(OSA.numAccessStmts(), Escape.numAccessStmts());
}

TEST_P(PrecisionProperty, KCFAPrecisionGradation) {
  // More context depth => no more races (on these workloads the local
  // patterns of depth 1..3 are resolved one by one).
  auto M = generateWorkload(smallProfile(GetParam()));
  unsigned Prev = ~0u;
  for (unsigned K : {0u, 1u, 2u, 3u}) {
    O2Config C;
    if (K == 0) {
      C.PTA.Kind = ContextKind::Insensitive;
    } else {
      C.PTA.Kind = ContextKind::KCallsite;
      C.PTA.K = K;
    }
    unsigned N = analyzeModule(*M, C).Races.numRaces();
    EXPECT_LE(N, Prev) << "k=" << K;
    Prev = N;
  }
}

TEST_P(PrecisionProperty, HBImplementationsAgree) {
  // The memoized integer-ID happens-before and the naive per-event BFS
  // must agree on every sampled query over a generated workload.
  auto M = generateWorkload(smallProfile(GetParam()));
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  SHBGraph G = buildSHBGraph(*PTA);
  uint64_t Rng = GetParam() * 0x9e3779b97f4a7c15ULL + 1;
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  for (unsigned I = 0; I < 400; ++I) {
    unsigned T1 = static_cast<unsigned>(Next() % G.numThreads());
    unsigned T2 = static_cast<unsigned>(Next() % G.numThreads());
    uint32_t N1 = std::max(G.thread(T1).NumEvents, 1u);
    uint32_t N2 = std::max(G.thread(T2).NumEvents, 1u);
    uint32_t P1 = static_cast<uint32_t>(Next() % N1);
    uint32_t P2 = static_cast<uint32_t>(Next() % N2);
    ASSERT_EQ(G.happensBefore(T1, P1, T2, P2),
              G.happensBeforeNaive(T1, P1, T2, P2))
        << "(" << T1 << "," << P1 << ") vs (" << T2 << "," << P2 << ")";
  }
}

TEST_P(PrecisionProperty, RacyLocationsAreOSAShared) {
  // Every location the detector reports a race on must be origin-shared
  // per OSA (the detector consumes exactly the sharing OSA computes).
  auto M = generateWorkload(smallProfile(GetParam()));
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  SharingResult OSA = runSharingAnalysis(*PTA);
  RaceReport R = detectRaces(*PTA);
  for (const Race &Rc : R.races())
    EXPECT_TRUE(OSA.isShared(Rc.Loc))
        << "racy location not OSA-shared: " << Rc.Loc.toString(*PTA);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecisionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
