//===- WorkloadRoundTripTest.cpp - generator/printer/parser consistency ---------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Cross-module property: every generated benchmark workload survives a
// print -> parse -> print round trip byte-identically, still verifies,
// and the reparsed module produces the same O2 race count as the
// original. This exercises the printer and parser against IR far larger
// and more varied than hand-written tests.
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Parser.h"
#include "o2/IR/Printer.h"
#include "o2/IR/Verifier.h"
#include "o2/O2.h"
#include "o2/Workload/BugModels.h"
#include "o2/Workload/Generator.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

class ProfileRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(ProfileRoundTrip, PrintParsePrintIsStable) {
  const WorkloadProfile &P = benchmarkProfiles()[GetParam()];
  auto M1 = generateWorkload(P);
  std::string P1 = printModule(*M1);

  std::string Err;
  auto M2 = parseModule(P1, Err, P.Name);
  ASSERT_TRUE(M2) << P.Name << ": " << Err;

  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M2, Errors))
      << P.Name << ": " << (Errors.empty() ? "?" : Errors.front());

  EXPECT_EQ(printModule(*M2), P1) << P.Name;
}

TEST_P(ProfileRoundTrip, ReparsedModuleHasSameRaces) {
  const WorkloadProfile &P = benchmarkProfiles()[GetParam()];
  if (P.PaddingFunctions > 100 || P.AmplifierFanOut > 12)
    GTEST_SKIP() << "large profile; covered by the smaller ones";
  auto M1 = generateWorkload(P);
  std::string Err;
  auto M2 = parseModule(printModule(*M1), Err, P.Name);
  ASSERT_TRUE(M2) << Err;
  EXPECT_EQ(analyzeModule(*M1).Races.numRaces(),
            analyzeModule(*M2).Races.numRaces())
      << P.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ProfileRoundTrip,
    ::testing::Range<size_t>(0, benchmarkProfiles().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkProfiles()[Info.param].Name;
    });

TEST(WorkloadRoundTripTest, BugModelsRoundTrip) {
  for (const BugModel &Model : bugModels()) {
    auto M1 = buildBugModel(Model);
    std::string P1 = printModule(*M1);
    std::string Err;
    auto M2 = parseModule(P1, Err, Model.Name);
    ASSERT_TRUE(M2) << Model.Name << ": " << Err;
    EXPECT_EQ(printModule(*M2), P1) << Model.Name;
  }
}

} // namespace
