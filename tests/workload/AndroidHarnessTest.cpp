//===- AndroidHarnessTest.cpp - Section 4.2 harness tests -----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Workload/AndroidHarness.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/O2.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

/// An Android-shaped app with no main(): the home activity's onCreate
/// spawns a background thread and starts a second activity; both the
/// handler and the thread touch shared state.
const char *App = R"(
  class Obj { field v: int; }
  global appState: Obj;

  class BgThread {
    method run() {
      var o: Obj;
      var x: int;
      o = @appState;
      o.v = x;
    }
  }

  class SettingsActivity {
    method onCreate() { }
    method onReceive() {
      var o: Obj;
      var x: int;
      o = @appState;
      x = o.v;
    }
  }

  func startActivity(a: SettingsActivity) { }

  class MainActivity {
    method onCreate() {
      var o: Obj;
      var t: BgThread;
      var settings: SettingsActivity;
      o = new Obj;
      @appState = o;
      t = new BgThread;
      spawn t.run();
      settings = new SettingsActivity;
      startActivity(settings);
    }
    method onReceive() {
      var o: Obj;
      var x: int;
      o = @appState;
      x = o.v;
    }
  }
)";

std::unique_ptr<Module> parseApp() {
  std::string Err;
  auto M = parseModule(App, Err, "app");
  EXPECT_TRUE(M) << Err;
  return M;
}

TEST(AndroidHarnessTest, SynthesizesVerifiableMain) {
  auto M = parseApp();
  EXPECT_EQ(M->getMain(), nullptr);
  Function *Main = buildAndroidHarness(*M, "MainActivity");
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(M->getMain(), Main);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
}

TEST(AndroidHarnessTest, LifecycleIsCalledEventsAreSpawned) {
  auto M = parseApp();
  ASSERT_TRUE(buildAndroidHarness(*M, "MainActivity"));
  unsigned Calls = 0, Spawns = 0, Allocs = 0;
  for (const auto &S : M->getMain()->body()) {
    if (isa<CallStmt>(S.get()))
      ++Calls;
    else if (const auto *Sp = dyn_cast<SpawnStmt>(S.get())) {
      ++Spawns;
      EXPECT_TRUE(Sp->isInLoop()); // handlers dispatch repeatedly
    } else if (isa<AllocStmt>(S.get())) {
      ++Allocs;
    }
  }
  // Both activities allocated; onCreate called on both; one onReceive
  // spawned per activity.
  EXPECT_EQ(Allocs, 2u);
  EXPECT_EQ(Calls, 2u);
  EXPECT_EQ(Spawns, 2u);
}

TEST(AndroidHarnessTest, StartedActivityIsHarnessed) {
  auto M = parseApp();
  ASSERT_TRUE(buildAndroidHarness(*M, "MainActivity"));
  O2Analysis Result = analyzeModule(*M);
  // The second activity's handler is a live origin: it reads appState.
  bool SettingsReached = false;
  for (const auto &[F, C] : Result.PTA->instances()) {
    (void)C;
    if (F->getClass() &&
        F->getClass()->getName() == "SettingsActivity" &&
        F->getName() == "onReceive")
      SettingsReached = true;
  }
  EXPECT_TRUE(SettingsReached);
}

TEST(AndroidHarnessTest, FindsTheThreadEventRace) {
  auto M = parseApp();
  ASSERT_TRUE(buildAndroidHarness(*M, "MainActivity"));
  O2Analysis Result = analyzeModule(*M);
  // Races: the background thread's write vs. each handler's read (the
  // handlers themselves are looper-serialized).
  ASSERT_GE(Result.Races.numRaces(), 1u);
  for (const Race &R : Result.Races.races()) {
    OriginKind KA = Result.SHB.thread(R.ThreadA).Kind;
    OriginKind KB = Result.SHB.thread(R.ThreadB).Kind;
    EXPECT_TRUE(KA == OriginKind::Thread || KB == OriginKind::Thread);
  }
}

TEST(AndroidHarnessTest, RefusesWhenMainExistsOrClassMissing) {
  auto M = parseApp();
  EXPECT_EQ(buildAndroidHarness(*M, "NoSuchActivity"), nullptr);
  ASSERT_TRUE(buildAndroidHarness(*M, "MainActivity"));
  EXPECT_EQ(buildAndroidHarness(*M, "MainActivity"), nullptr);
}

} // namespace
