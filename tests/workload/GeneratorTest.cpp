//===- GeneratorTest.cpp - workload generator unit tests --------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Workload/Generator.h"

#include "o2/IR/Printer.h"
#include "o2/IR/Verifier.h"
#include "o2/PTA/PointerAnalysis.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

TEST(GeneratorTest, Deterministic) {
  WorkloadProfile P;
  P.Seed = 7;
  auto M1 = generateWorkload(P);
  auto M2 = generateWorkload(P);
  EXPECT_EQ(printModule(*M1), printModule(*M2));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  WorkloadProfile A, B;
  A.Seed = 1;
  B.Seed = 2;
  // Different seeds shuffle the leaf access targets.
  A.ReadsPerOrigin = 6;
  B.ReadsPerOrigin = 6;
  A.ReadOnlyObjects = 5;
  B.ReadOnlyObjects = 5;
  EXPECT_NE(printModule(*generateWorkload(A)),
            printModule(*generateWorkload(B)));
}

TEST(GeneratorTest, GeneratedModulesVerify) {
  WorkloadProfile P;
  P.NumThreads = 3;
  P.NumEventHandlers = 2;
  P.NestedSpawnDepth = 2;
  P.SpawnInLoop = true;
  P.PaddingFunctions = 5;
  auto M = generateWorkload(P);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
}

TEST(GeneratorTest, AllBenchmarkProfilesVerify) {
  for (const WorkloadProfile &P : benchmarkProfiles()) {
    auto M = generateWorkload(P);
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M, Errors))
        << P.Name << ": " << (Errors.empty() ? "?" : Errors.front());
    EXPECT_GT(M->numProgramStmts(), 0u);
  }
}

TEST(GeneratorTest, OriginCountMatchesProfile) {
  WorkloadProfile P;
  P.NumThreads = 5;
  P.NumEventHandlers = 3;
  auto M = generateWorkload(P);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto R = runPointerAnalysis(*M, Opts);
  // main + threads + events.
  EXPECT_EQ(R->origins().size(), 1u + 5u + 3u);
}

TEST(GeneratorTest, NestedSpawnsCreateNestedOrigins) {
  WorkloadProfile P;
  P.NumThreads = 0;
  P.NumEventHandlers = 0;
  P.NestedSpawnDepth = 3;
  auto M = generateWorkload(P);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  Opts.K = 3;
  auto R = runPointerAnalysis(*M, Opts);
  EXPECT_EQ(R->origins().size(), 1u + 3u);
  // The innermost origin's context chain has depth 3 under 3-origin.
  bool SawDepth3 = false;
  for (const OriginInfo &O : R->origins().origins())
    if (O.Kind != OriginKind::Main &&
        R->contexts().get(R->originCtx(O.Id)).size() == 3)
      SawDepth3 = true;
  EXPECT_TRUE(SawDepth3);
}

TEST(GeneratorTest, LoopSpawnDuplicatesOrigins) {
  WorkloadProfile P;
  P.NumThreads = 2;
  P.SpawnInLoop = true;
  auto M = generateWorkload(P);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto R = runPointerAnalysis(*M, Opts);
  // Each in-loop allocation yields two origins.
  EXPECT_EQ(R->origins().size(), 1u + 2u * 2u);
}

TEST(GeneratorTest, ProfileLookup) {
  EXPECT_NE(findProfile("avrora"), nullptr);
  EXPECT_NE(findProfile("telegram"), nullptr);
  EXPECT_EQ(findProfile("telegram")->NumEventHandlers +
                findProfile("telegram")->NumThreads,
            134u);
  EXPECT_EQ(findProfile("nope"), nullptr);
  // Profile names are unique.
  std::set<std::string> Names;
  for (const WorkloadProfile &P : benchmarkProfiles())
    EXPECT_TRUE(Names.insert(P.Name).second);
}

TEST(GeneratorTest, PaddingScalesProgramSize) {
  WorkloadProfile Small, Large;
  Small.PaddingFunctions = 0;
  Large.PaddingFunctions = 50;
  auto MS = generateWorkload(Small);
  auto ML = generateWorkload(Large);
  EXPECT_GT(ML->numProgramStmts(), MS->numProgramStmts() + 50 * 30);
}

} // namespace
