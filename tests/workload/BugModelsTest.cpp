//===- BugModelsTest.cpp - Table 10 bug-model tests ------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Every published bug modeled from the paper (Section 5.4 / Table 10)
// must be found by O2 with exactly the documented number of races, and
// the thread↔event cases must really involve one thread and one handler.
//
//===----------------------------------------------------------------------===//

#include "o2/Workload/BugModels.h"

#include "o2/O2.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

class BugModelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BugModelTest, O2FindsExpectedRaces) {
  const BugModel &Model = bugModels()[GetParam()];
  auto M = buildBugModel(Model);
  O2Analysis Result = analyzeModule(*M);
  EXPECT_EQ(Result.Races.numRaces(), Model.ExpectedRaces)
      << "model: " << Model.Name;
}

TEST_P(BugModelTest, ThreadEventInteractionIsReal) {
  const BugModel &Model = bugModels()[GetParam()];
  if (!Model.ThreadEventInteraction)
    GTEST_SKIP() << "not a thread<->event model";
  auto M = buildBugModel(Model);
  O2Analysis Result = analyzeModule(*M);
  ASSERT_GE(Result.Races.numRaces(), 1u);
  // At least one reported race pairs a thread with an event handler.
  bool SawMix = false;
  for (const Race &R : Result.Races.races()) {
    OriginKind KA = Result.SHB.thread(R.ThreadA).Kind;
    OriginKind KB = Result.SHB.thread(R.ThreadB).Kind;
    SawMix |= (KA == OriginKind::Event) != (KB == OriginKind::Event);
  }
  EXPECT_TRUE(SawMix) << "model: " << Model.Name;
}

TEST_P(BugModelTest, SoundnessOracleAgrees) {
  const BugModel &Model = bugModels()[GetParam()];
  auto M = buildBugModel(Model);

  O2Config Optimized;
  O2Analysis A = analyzeModule(*M, Optimized);

  O2Config Naive;
  Naive.Detector.Engine = RaceEngineKind::Serial;
  Naive.Detector.HB = RaceHBKind::Naive;
  Naive.Detector.CacheLocksetChecks = false;
  Naive.Detector.LockRegionMerging = false;
  O2Analysis B = analyzeModule(*M, Naive);

  std::set<uint64_t> LocsA, LocsB;
  for (const Race &R : A.Races.races())
    LocsA.insert(R.Loc.key());
  for (const Race &R : B.Races.races())
    LocsB.insert(R.Loc.key());
  EXPECT_EQ(LocsA, LocsB) << "model: " << Model.Name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, BugModelTest,
                         ::testing::Range<size_t>(0, bugModels().size()),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return bugModels()[Info.param].Name;
                         });

TEST(BugModelsTest, Registry) {
  EXPECT_GE(bugModels().size(), 8u);
  EXPECT_NE(findBugModel("memcached_slabs"), nullptr);
  EXPECT_EQ(findBugModel("nonexistent"), nullptr);
  // Names are unique.
  std::set<std::string> Names;
  for (const BugModel &Model : bugModels())
    EXPECT_TRUE(Names.insert(Model.Name).second);
}

TEST(BugModelsTest, FiguresAreRaceFreeButImpreciseAnalysesDisagree) {
  // Figure 3: 0-ctx merges the per-thread objects and reports a false
  // race that OPA avoids — the motivating example of Section 3.2.
  const BugModel *Fig3 = findBugModel("figure3");
  ASSERT_TRUE(Fig3);
  auto M = buildBugModel(*Fig3);

  O2Config OPA;
  EXPECT_EQ(analyzeModule(*M, OPA).Races.numRaces(), 0u);

  O2Config Insensitive;
  Insensitive.PTA.Kind = ContextKind::Insensitive;
  EXPECT_GE(analyzeModule(*M, Insensitive).Races.numRaces(), 1u);
}

} // namespace
