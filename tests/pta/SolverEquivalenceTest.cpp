//===- SolverEquivalenceTest.cpp - Worklist/Wave engine equivalence ----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// The two constraint engines (PTAOptions::Solver) must produce
// bit-identical results: same points-to sets, same object/instance/
// context/origin numbering, same call-target vectors, and — downstream —
// byte-identical race reports. This runs every bundled examples/oir
// program and the generated benchmark workloads under both engines for
// all four context abstractions and compares everything observable.
//
//===----------------------------------------------------------------------===//

#include "PTATestUtils.h"

#include "o2/Race/RaceDetector.h"
#include "o2/Support/OutputStream.h"
#include "o2/Workload/Generator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

using namespace o2;

namespace {

std::unique_ptr<Module> loadOIR(const std::string &FileName) {
  std::ifstream In(std::string(O2_OIR_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "cannot open " << FileName;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return o2test::parseProgram(Buf.str());
}

void expectSamePts(const BitVector *A, const BitVector *B,
                   const std::string &Tag) {
  ASSERT_EQ(A != nullptr, B != nullptr) << Tag;
  if (A) {
    EXPECT_TRUE(*A == *B) << Tag;
  }
}

/// Compares everything a PTAResult exposes. Numbering (object IDs, node
/// IDs, context handles, origin IDs) must match exactly, not just up to
/// isomorphism — downstream phases (SHB thread numbering, reports) depend
/// on it.
void expectIdenticalResults(const Module &M, const PTAResult &A,
                            const PTAResult &B, const std::string &Tag) {
  EXPECT_EQ(A.hitBudget(), B.hitBudget()) << Tag;

  ASSERT_EQ(A.instances().size(), B.instances().size()) << Tag;
  for (size_t I = 0; I != A.instances().size(); ++I) {
    EXPECT_EQ(A.instances()[I].first, B.instances()[I].first) << Tag;
    EXPECT_EQ(A.instances()[I].second, B.instances()[I].second) << Tag;
  }

  ASSERT_EQ(A.objects().size(), B.objects().size()) << Tag;
  for (size_t I = 0; I != A.objects().size(); ++I) {
    const ObjInfo &X = A.objects()[I];
    const ObjInfo &Y = B.objects()[I];
    EXPECT_EQ(X.Site, Y.Site) << Tag;
    EXPECT_EQ(X.HeapCtx, Y.HeapCtx) << Tag;
    EXPECT_EQ(X.AllocatedType, Y.AllocatedType) << Tag;
    EXPECT_EQ(X.Alloc, Y.Alloc) << Tag;
    EXPECT_EQ(X.DupIndex, Y.DupIndex) << Tag;
    EXPECT_EQ(A.originOfObject(X.Id), B.originOfObject(Y.Id)) << Tag;
  }

  ASSERT_EQ(A.origins().size(), B.origins().size()) << Tag;
  for (unsigned O = 0; O != A.origins().size(); ++O) {
    const OriginInfo &X = A.origins().info(O);
    const OriginInfo &Y = B.origins().info(O);
    EXPECT_EQ(X.Kind, Y.Kind) << Tag;
    EXPECT_EQ(X.Class, Y.Class) << Tag;
    EXPECT_EQ(X.AllocSite, Y.AllocSite) << Tag;
    EXPECT_EQ(X.ParentCtx, Y.ParentCtx) << Tag;
    EXPECT_EQ(X.DupIndex, Y.DupIndex) << Tag;
    EXPECT_EQ(A.originAttributes(O), B.originAttributes(O)) << Tag;
    if (A.options().Kind == ContextKind::Origin) {
      EXPECT_EQ(A.originCtx(O), B.originCtx(O)) << Tag;
    }
  }

  // Points-to sets of every reached variable instance, global, and field.
  for (const auto &[F, C] : A.instances())
    for (const auto &V : F->variables())
      expectSamePts(A.pts(V.get(), C), B.pts(V.get(), C),
                    Tag + " var " + V->getName());
  for (const auto &G : M.globals())
    expectSamePts(A.ptsGlobal(G.get()), B.ptsGlobal(G.get()),
                  Tag + " global " + G->getName());

  std::map<std::pair<unsigned, FieldKey>, BitVector> FieldsA, FieldsB;
  A.forEachFieldPts([&](unsigned Obj, FieldKey FK, const BitVector &Pts) {
    FieldsA[{Obj, FK}] = Pts;
  });
  B.forEachFieldPts([&](unsigned Obj, FieldKey FK, const BitVector &Pts) {
    FieldsB[{Obj, FK}] = Pts;
  });
  ASSERT_EQ(FieldsA.size(), FieldsB.size()) << Tag;
  for (const auto &[Key, Pts] : FieldsA) {
    auto It = FieldsB.find(Key);
    ASSERT_NE(It, FieldsB.end()) << Tag;
    EXPECT_TRUE(Pts == It->second) << Tag;
  }

  // Call-target vectors, including their order (SHB thread numbering
  // walks them in stored order).
  for (const auto &[F, C] : A.instances())
    for (const auto &S : F->body()) {
      const auto &TA = A.callTargets(S.get(), C);
      const auto &TB = B.callTargets(S.get(), C);
      ASSERT_EQ(TA.size(), TB.size()) << Tag;
      for (size_t I = 0; I != TA.size(); ++I)
        EXPECT_TRUE(TA[I] == TB[I]) << Tag;
    }

  // Engine-independent statistics (the wave counters are engine-local).
  for (const char *Key :
       {"pta.pointer-nodes", "pta.objects", "pta.copy-edges",
        "pta.instances", "pta.contexts", "pta.origins"})
    EXPECT_EQ(A.stats().get(Key), B.stats().get(Key)) << Tag << " " << Key;
}

std::string renderRaces(const PTAResult &PTA) {
  RaceReport R = detectRaces(PTA);
  std::string Buf;
  StringOutputStream OS(Buf);
  R.print(OS, PTA);
  R.printJSON(OS, PTA);
  return Buf;
}

class SolverEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(SolverEquivalence, IdenticalFactsAndRaceReports) {
  const std::string &Name = GetParam();
  std::unique_ptr<Module> M;
  if (Name.rfind("oir_", 0) == 0) {
    M = loadOIR(Name.substr(4) + ".oir");
  } else {
    const WorkloadProfile *P = findProfile(Name);
    ASSERT_NE(P, nullptr) << Name;
    if (P->PaddingFunctions > 100 || P->AmplifierFanOut > 12)
      GTEST_SKIP() << "large profile; covered by the smaller ones";
    M = generateWorkload(*P);
  }
  ASSERT_TRUE(M);
  for (ContextKind Kind :
       {ContextKind::Insensitive, ContextKind::KCallsite,
        ContextKind::KObject, ContextKind::Origin}) {
    PTAOptions Opts = o2test::optsFor(Kind);
    Opts.Solver = SolverKind::Worklist;
    auto Baseline = runPointerAnalysis(*M, Opts);
    Opts.Solver = SolverKind::Wave;
    auto Wave = runPointerAnalysis(*M, Opts);
    std::string Tag = GetParam() + "/" + Opts.name();
    expectIdenticalResults(*M, *Baseline, *Wave, Tag);
    EXPECT_EQ(renderRaces(*Baseline), renderRaces(*Wave)) << Tag;
  }
}

std::vector<std::string> equivalenceCases() {
  std::vector<std::string> Cases = {"oir_racy_counter",
                                    "oir_producer_consumer",
                                    "oir_event_thread_mix"};
  for (const WorkloadProfile &P : benchmarkProfiles())
    Cases.push_back(P.Name);
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Cases, SolverEquivalence,
                         ::testing::ValuesIn(equivalenceCases()),
                         [](const auto &Info) { return Info.param; });

} // namespace
