//===- OriginPolicyTest.cpp - OPA-specific unit tests --------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// These tests pin the paper's worked examples: Figure 2 (origins
// distinguish the two threads' operations), Figure 3 (context switch at
// origin allocations), the 1-call-site wrapper extension, and loop
// duplication of origins (Section 3.2).
//
//===----------------------------------------------------------------------===//

#include "PTATestUtils.h"

#include "o2/PTA/PointerAnalysis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace o2;
using namespace o2test;

namespace {

/// Figure 3 of the paper: TA and TB share T's constructor, which
/// allocates the object stored in field f. Without a context switch at
/// the origin allocation, both threads share one ⟨of⟩ object.
const char *Figure3 = R"(
  class Obj { }
  class T {
    field f: Obj;
    method init() {
      var o: Obj;
      o = new Obj;
      this.f = o;
    }
    method run() {
      var x: Obj;
      x = this.f;
    }
  }
  class TA extends T { }
  class TB extends T { }
  func main() {
    var a: TA;
    var b: TB;
    a = new TA;
    b = new TB;
    spawn a.run();
    spawn b.run();
  }
)";

TEST(OriginPolicyTest, Figure3ContextSwitchAtOriginAllocation) {
  auto M = parseProgram(Figure3);
  // OPA: the shared super constructor runs once per origin, so each
  // thread owns its own ⟨of⟩ object (⟨of,Ta⟩ and ⟨of,Tb⟩).
  auto OPA = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  EXPECT_EQ(countObjectsOfType(*OPA, "Obj"), 2u);
  // 0-ctx merges them into a single ⟨of,Tmain⟩: false aliasing.
  auto R0 = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  EXPECT_EQ(countObjectsOfType(*R0, "Obj"), 1u);
}

TEST(OriginPolicyTest, Figure3OriginsAndOwnership) {
  auto M = parseProgram(Figure3);
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  // main + two thread origins.
  ASSERT_EQ(R->origins().size(), 3u);
  EXPECT_EQ(R->origins().info(0).Kind, OriginKind::Main);
  EXPECT_EQ(R->origins().info(1).Kind, OriginKind::Thread);
  EXPECT_EQ(R->origins().info(2).Kind, OriginKind::Thread);

  // Each Obj belongs to the origin whose constructor allocated it.
  std::set<unsigned> ObjOwners;
  for (const ObjInfo &O : R->objects())
    if (O.AllocatedType->getName() == "Obj")
      ObjOwners.insert(R->originOfObject(O.Id));
  EXPECT_EQ(ObjOwners.size(), 2u);
  EXPECT_FALSE(ObjOwners.count(OriginTable::MainOrigin));
}

/// Figure 2 of the paper, reduced to its aliasing core: two threads share
/// ⟨s⟩ but carry different operation objects; inside run() the virtual
/// call o.act(s) must dispatch to exactly one implementation per thread.
const char *Figure2 = R"(
  class Shared { }
  class Op {
    method act(s: Shared) { }
  }
  class Op1 extends Op {
    field y1: Shared;
    method act(s: Shared) { this.y1 = s; }
  }
  class Op2 extends Op {
    field y2: Shared;
    method act(s: Shared) { var t: Shared; t = this.y2; }
  }
  class T {
    field s: Shared;
    field op: Op;
    method init(s: Shared, op: Op) {
      this.s = s;
      this.op = op;
    }
    method run() {
      var s: Shared;
      var o: Op;
      s = this.s;
      o = this.op;
      o.act(s);
    }
  }
  func main() {
    var sh: Shared;
    var o1: Op1;
    var o2: Op2;
    var t1: T;
    var t2: T;
    sh = new Shared;
    o1 = new Op1;
    o2 = new Op2;
    t1 = new T(sh, o1);
    t2 = new T(sh, o2);
    spawn t1.run();
    spawn t2.run();
  }
)";

/// Returns, per reached context of T::run, the number of dispatch targets
/// of the o.act(s) call.
std::vector<size_t> actTargetCounts(const PTAResult &R, const Module &M) {
  const Function *Run = M.findClass("T")->findMethod("run");
  const CallStmt *Act = findStmt<CallStmt>(Run);
  std::vector<size_t> Counts;
  for (const auto &[F, C] : R.instances())
    if (F == Run)
      Counts.push_back(R.callTargets(Act, C).size());
  return Counts;
}

TEST(OriginPolicyTest, Figure2OriginAttributesSeparateOperations) {
  auto M = parseProgram(Figure2);
  auto OPA = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  // Two origins, each reaching run() in its own context with exactly one
  // act() target (Op1::act in T1, Op2::act in T2).
  std::vector<size_t> Counts = actTargetCounts(*OPA, *M);
  ASSERT_EQ(Counts.size(), 2u);
  EXPECT_EQ(Counts[0], 1u);
  EXPECT_EQ(Counts[1], 1u);

  // 0-ctx merges the two threads: one run() instance with both targets.
  auto R0 = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  std::vector<size_t> Counts0 = actTargetCounts(*R0, *M);
  ASSERT_EQ(Counts0.size(), 1u);
  EXPECT_EQ(Counts0[0], 2u);
}

TEST(OriginPolicyTest, Figure2SharedAttributeStaysShared) {
  auto M = parseProgram(Figure2);
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  // Both origins see the same ⟨sh⟩ object through this.s.
  const Function *Run = M->findClass("T")->findMethod("run");
  const Variable *S = Run->findVariable("s");
  BitVector Union;
  unsigned NumInstances = 0;
  for (const auto &[F, C] : R->instances()) {
    if (F != Run)
      continue;
    ++NumInstances;
    const BitVector *P = R->pts(S, C);
    ASSERT_TRUE(P);
    EXPECT_EQ(P->count(), 1u);
    Union.unionWith(*P);
  }
  EXPECT_EQ(NumInstances, 2u);
  EXPECT_EQ(Union.count(), 1u); // same shared object in both origins
}

TEST(OriginPolicyTest, Figure2OriginAttributes) {
  // Figure 2(b): T1 carries {s, op1}, T2 carries {s, op2}.
  auto M = parseProgram(Figure2);
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  ASSERT_EQ(R->origins().size(), 3u);
  std::vector<unsigned> A1 = R->originAttributes(1);
  std::vector<unsigned> A2 = R->originAttributes(2);
  ASSERT_EQ(A1.size(), 2u);
  ASSERT_EQ(A2.size(), 2u);
  // Exactly one attribute (the Shared object) is common; the op differs.
  std::vector<unsigned> Common;
  std::set_intersection(A1.begin(), A1.end(), A2.begin(), A2.end(),
                        std::back_inserter(Common));
  ASSERT_EQ(Common.size(), 1u);
  EXPECT_EQ(R->object(Common[0]).AllocatedType->getName(), "Shared");
  // Main has no attributes.
  EXPECT_TRUE(R->originAttributes(OriginTable::MainOrigin).empty());
}

TEST(OriginPolicyTest, WrapperFunctionsGetOneCallSite) {
  auto M = parseProgram(R"(
    class Data { }
    class W {
      field d: Data;
      method init(d: Data) { this.d = d; }
      method run() { var x: Data; x = this.d; }
    }
    func make(d: Data): W {
      var w: W;
      w = new W(d);
      return w;
    }
    func main() {
      var d1: Data;
      var d2: Data;
      var w1: W;
      var w2: W;
      d1 = new Data;
      d2 = new Data;
      w1 = make(d1);
      w2 = make(d2);
      spawn w1.run();
      spawn w2.run();
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  // The single allocation site inside make() yields two origins, one per
  // call site of the wrapper (Section 3.2, k=1 call-site extension).
  EXPECT_EQ(R->origins().size(), 3u);
  // Each origin's run() sees exactly its own Data attribute.
  const Function *Run = M->findClass("W")->findMethod("run");
  const Variable *X = Run->findVariable("x");
  BitVector Union;
  unsigned NumInstances = 0;
  for (const auto &[F, C] : R->instances()) {
    if (F != Run)
      continue;
    ++NumInstances;
    const BitVector *P = R->pts(X, C);
    ASSERT_TRUE(P);
    EXPECT_EQ(P->count(), 1u);
    Union.unionWith(*P);
  }
  EXPECT_EQ(NumInstances, 2u);
  EXPECT_EQ(Union.count(), 2u);
}

TEST(OriginPolicyTest, LoopAllocationDuplicatesOrigin) {
  auto M = parseProgram(R"(
    class T { method run() { } }
    func main() {
      var t: T;
      loop {
        t = new T;
        spawn t.run();
      }
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  // Two origins with identical attributes but different IDs (plus main).
  ASSERT_EQ(R->origins().size(), 3u);
  EXPECT_EQ(R->origins().info(1).AllocSite, R->origins().info(2).AllocSite);
  EXPECT_NE(R->origins().info(1).DupIndex, R->origins().info(2).DupIndex);
  // The spawn dispatches to both duplicates.
  const SpawnStmt *Spawn = findStmt<SpawnStmt>(M->getMain());
  EXPECT_EQ(R->callTargets(Spawn, 0).size(), 2u);
}

TEST(OriginPolicyTest, NestedOriginsAndKOrigin) {
  auto M = parseProgram(R"(
    class Obj { }
    class Inner {
      field f: Obj;
      method init() { var o: Obj; o = new Obj; this.f = o; }
      method run() { }
    }
    class Outer {
      method run() {
        var i: Inner;
        i = new Inner;
        spawn i.run();
      }
    }
    func main() {
      var a: Outer;
      var b: Outer;
      a = new Outer;
      b = new Outer;
      spawn a.run();
      spawn b.run();
    }
  )");
  auto R1 = runPointerAnalysis(*M, optsFor(ContextKind::Origin, 1));
  // main + 2 outer + 2 inner (the inner allocation is reached under two
  // different parent origins).
  EXPECT_EQ(R1->origins().size(), 5u);

  auto R2 = runPointerAnalysis(*M, optsFor(ContextKind::Origin, 2));
  EXPECT_EQ(R2->origins().size(), 5u);
  // With k=2, inner-origin contexts retain the parent chain.
  unsigned SawDepth2 = 0;
  for (const OriginInfo &O : R2->origins().origins()) {
    if (O.Kind == OriginKind::Main)
      continue;
    if (R2->contexts().get(R2->originCtx(O.Id)).size() == 2)
      ++SawDepth2;
  }
  EXPECT_EQ(SawDepth2, 2u); // the two nested (inner) origins
}

TEST(OriginPolicyTest, EventEntriesClassifiedAsEvents) {
  auto M = parseProgram(R"(
    class Handler {
      method onReceive() { }
    }
    func main() {
      var h: Handler;
      h = new Handler;
      spawn h.onReceive();
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  ASSERT_EQ(R->origins().size(), 2u);
  EXPECT_EQ(R->origins().info(1).Kind, OriginKind::Event);
}

TEST(OriginPolicyTest, CustomSpawnEntriesBecomeOrigins) {
  auto M = parseProgram(R"(
    class Worker {
      method customEntry() { }
    }
    func main() {
      var w: Worker;
      w = new Worker;
      spawn w.customEntry();
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  // "customEntry" is not in Table 1 but is used by a spawn, so the class
  // is treated as an origin class anyway.
  EXPECT_EQ(R->origins().size(), 2u);
}

TEST(OriginPolicyTest, OriginLocalObjectsStayLocal) {
  auto M = parseProgram(R"(
    class Obj { }
    class T {
      method run() {
        var local: Obj;
        local = new Obj;
      }
    }
    func main() {
      var t1: T;
      var t2: T;
      t1 = new T;
      t2 = new T;
      spawn t1.run();
      spawn t2.run();
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  // The local allocation is cloned per origin.
  EXPECT_EQ(countObjectsOfType(*R, "Obj"), 2u);
  std::set<unsigned> Owners;
  for (const ObjInfo &O : R->objects())
    if (O.AllocatedType->getName() == "Obj")
      Owners.insert(R->originOfObject(O.Id));
  EXPECT_EQ(Owners.size(), 2u);
}

} // namespace
