//===- CallGraphTest.cpp - materialized call graph tests -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/PTA/CallGraph.h"

#include "PTATestUtils.h"
#include "o2/Support/OutputStream.h"

#include <gtest/gtest.h>

using namespace o2;
using namespace o2test;

namespace {

const char *Program = R"(
  class Task {
    method init() { setup(this); }
    method run() { this.work(); }
    method work() { }
  }
  func setup(t: Task) { }
  func main() {
    var t: Task;
    t = new Task;
    spawn t.run();
  }
)";

TEST(CallGraphTest, NodesMatchInstances) {
  auto M = parseProgram(Program);
  auto PTA = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  CallGraph G = CallGraph::build(*PTA);
  EXPECT_EQ(G.numNodes(), PTA->instances().size());
  // main, Task::init, setup, Task::run, Task::work.
  EXPECT_EQ(G.numNodes(), 5u);
}

TEST(CallGraphTest, EdgesAndKinds) {
  auto M = parseProgram(Program);
  auto PTA = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  CallGraph G = CallGraph::build(*PTA);
  // main->init (ctor), init->setup, main->run (spawn), run->work.
  EXPECT_EQ(G.numEdges(), 4u);
  unsigned SpawnEdges = 0, CtorEdges = 0;
  for (const CallGraph::Edge &E : G.edges()) {
    SpawnEdges += E.IsSpawn;
    CtorEdges += isa<AllocStmt>(E.Site);
  }
  EXPECT_EQ(SpawnEdges, 1u);
  EXPECT_EQ(CtorEdges, 1u);
}

TEST(CallGraphTest, AdjacencyQueries) {
  auto M = parseProgram(Program);
  auto PTA = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  CallGraph G = CallGraph::build(*PTA);
  unsigned MainId = G.nodeId(M->getMain(), 0);
  ASSERT_NE(MainId, ~0u);
  EXPECT_EQ(G.callees(MainId).size(), 2u); // ctor + spawn
  EXPECT_TRUE(G.callers(MainId).empty());

  const Function *Work = M->findClass("Task")->findMethod("work");
  unsigned WorkId = ~0u;
  for (const CallGraph::Node &N : G.nodes())
    if (N.F == Work)
      WorkId = N.Id;
  ASSERT_NE(WorkId, ~0u);
  EXPECT_EQ(G.callers(WorkId).size(), 1u);
  EXPECT_TRUE(G.callees(WorkId).empty());
}

TEST(CallGraphTest, ReachableFunctionsDeduped) {
  auto M = parseProgram(R"(
    class A { method m() { } }
    func main() {
      var a1: A;
      var a2: A;
      a1 = new A;
      a2 = new A;
      a1.m();
      a2.m();
    }
  )");
  // Under 1-obj, A::m has two instances (two receivers) but is one
  // function.
  auto PTA = runPointerAnalysis(*M, optsFor(ContextKind::KObject, 1));
  CallGraph G = CallGraph::build(*PTA);
  EXPECT_EQ(G.numNodes(), 3u); // main + 2 instances of A::m
  EXPECT_EQ(G.reachableFunctions().size(), 2u);
}

TEST(CallGraphTest, OriginSensitiveGraphSeparatesOrigins) {
  // The paper's Figure 2(b): each origin's call chain is its own path.
  auto M = parseProgram(R"(
    class T {
      method run() { this.work(); }
      method work() { }
    }
    func main() {
      var t1: T;
      var t2: T;
      t1 = new T;
      t2 = new T;
      spawn t1.run();
      spawn t2.run();
    }
  )");
  auto PTA = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  CallGraph G = CallGraph::build(*PTA);
  // main + (run, work) per origin.
  EXPECT_EQ(G.numNodes(), 5u);
  auto Ins = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  CallGraph GI = CallGraph::build(*Ins);
  EXPECT_EQ(GI.numNodes(), 3u);
}

TEST(CallGraphTest, DotExport) {
  auto M = parseProgram(Program);
  auto PTA = runPointerAnalysis(*M, optsFor(ContextKind::Origin));
  CallGraph G = CallGraph::build(*PTA);
  std::string Buf;
  StringOutputStream OS(Buf);
  G.printDot(OS, *PTA);
  EXPECT_EQ(Buf.find("digraph callgraph {"), 0u);
  EXPECT_NE(Buf.find("Task::run"), std::string::npos);
  EXPECT_NE(Buf.find("spawn"), std::string::npos);
  EXPECT_NE(Buf.find("}\n"), std::string::npos);
}

} // namespace
