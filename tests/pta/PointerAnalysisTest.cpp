//===- PointerAnalysisTest.cpp - core PTA unit tests --------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/PTA/PointerAnalysis.h"

#include "PTATestUtils.h"

#include <gtest/gtest.h>

using namespace o2;
using namespace o2test;

namespace {

/// Points-to object count for variable \p Name in function \p Fn under
/// every reached context, summed as a set union.
unsigned ptsSizeAnyCtx(const PTAResult &R, const Function *Fn,
                       const std::string &Name) {
  const Variable *V = Fn->findVariable(Name);
  EXPECT_NE(V, nullptr);
  BitVector Union;
  for (const auto &[F, C] : R.instances()) {
    if (F != Fn)
      continue;
    if (const BitVector *P = R.pts(V, C))
      Union.unionWith(*P);
  }
  return Union.count();
}

TEST(PointerAnalysisTest, AllocAndAssignFlow) {
  auto M = parseProgram(R"(
    class A { }
    func main() {
      var x: A;
      var y: A;
      x = new A;
      y = x;
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  const Function *Main = M->getMain();
  EXPECT_EQ(ptsSizeAnyCtx(*R, Main, "x"), 1u);
  EXPECT_EQ(ptsSizeAnyCtx(*R, Main, "y"), 1u);
  const BitVector *PX = R->pts(Main->findVariable("x"), 0);
  const BitVector *PY = R->pts(Main->findVariable("y"), 0);
  ASSERT_TRUE(PX && PY);
  EXPECT_TRUE(*PX == *PY);
}

TEST(PointerAnalysisTest, FieldFlow) {
  auto M = parseProgram(R"(
    class Box { field item: Box; }
    func main() {
      var a: Box;
      var b: Box;
      var got: Box;
      a = new Box;
      b = new Box;
      a.item = b;
      got = a.item;
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  const Function *Main = M->getMain();
  const BitVector *PB = R->pts(Main->findVariable("b"), 0);
  const BitVector *PGot = R->pts(Main->findVariable("got"), 0);
  ASSERT_TRUE(PB && PGot);
  EXPECT_TRUE(*PB == *PGot);
  EXPECT_EQ(PGot->count(), 1u);
}

TEST(PointerAnalysisTest, ArrayFlowIsIndexInsensitive) {
  auto M = parseProgram(R"(
    class A { }
    func main() {
      var arr: A[];
      var x: A;
      var y: A;
      var out: A;
      arr = newarray A;
      x = new A;
      y = new A;
      arr[*] = x;
      arr[*] = y;
      out = arr[*];
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  EXPECT_EQ(ptsSizeAnyCtx(*R, M->getMain(), "out"), 2u);
}

TEST(PointerAnalysisTest, GlobalFlow) {
  auto M = parseProgram(R"(
    class A { }
    global g: A;
    func main() {
      var x: A;
      var y: A;
      x = new A;
      @g = x;
      y = @g;
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  EXPECT_EQ(ptsSizeAnyCtx(*R, M->getMain(), "y"), 1u);
  const BitVector *PG = R->ptsGlobal(M->findGlobal("g"));
  ASSERT_TRUE(PG);
  EXPECT_EQ(PG->count(), 1u);
}

TEST(PointerAnalysisTest, DirectCallParamAndReturnFlow) {
  auto M = parseProgram(R"(
    class A { }
    func id(p: A): A {
      return p;
    }
    func main() {
      var x: A;
      var y: A;
      x = new A;
      y = id(x);
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  EXPECT_EQ(ptsSizeAnyCtx(*R, M->getMain(), "y"), 1u);
}

TEST(PointerAnalysisTest, VirtualDispatchUsesDynamicType) {
  auto M = parseProgram(R"(
    class A { method make(): A { var r: A; r = new A; return r; } }
    class B extends A { method make(): A { var r: A; r = new A; return r; } }
    func main() {
      var o: A;
      var got: A;
      o = new B;
      got = o.make();
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  // Only B::make should be reached: exactly one of the two inner allocs.
  EXPECT_EQ(ptsSizeAnyCtx(*R, M->getMain(), "got"), 1u);
  ClassType *A = M->findClass("A");
  ClassType *B = M->findClass("B");
  bool ReachedAMake = false, ReachedBMake = false;
  for (const auto &[F, C] : R->instances()) {
    (void)C;
    if (F == A->findMethod("make"))
      ReachedAMake = true;
    if (F == B->findMethod("make"))
      ReachedBMake = true;
  }
  EXPECT_FALSE(ReachedAMake);
  EXPECT_TRUE(ReachedBMake);
}

TEST(PointerAnalysisTest, ConstructorBindsArgsToThis) {
  auto M = parseProgram(R"(
    class A { }
    class Holder {
      field held: A;
      method init(a: A) { this.held = a; }
    }
    func main() {
      var a: A;
      var h: Holder;
      var got: A;
      a = new A;
      h = new Holder(a);
      got = h.held;
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  EXPECT_EQ(ptsSizeAnyCtx(*R, M->getMain(), "got"), 1u);
}

TEST(PointerAnalysisTest, UnreachableCodeNotAnalyzed) {
  auto M = parseProgram(R"(
    class A { }
    func dead() {
      var x: A;
      x = new A;
    }
    func main() { }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  EXPECT_EQ(R->objects().size(), 0u);
  EXPECT_EQ(R->instances().size(), 1u);
}

TEST(PointerAnalysisTest, ContextInsensitiveMergesCallSites) {
  auto M = parseProgram(R"(
    class A { }
    func id(p: A): A { return p; }
    func main() {
      var x1: A;
      var x2: A;
      var y1: A;
      var y2: A;
      x1 = new A;
      x2 = new A;
      y1 = id(x1);
      y2 = id(x2);
    }
  )");
  auto R0 = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  // 0-ctx conflates both call sites.
  EXPECT_EQ(ptsSizeAnyCtx(*R0, M->getMain(), "y1"), 2u);

  auto R1 = runPointerAnalysis(*M, optsFor(ContextKind::KCallsite, 1));
  // 1-CFA keeps them apart.
  EXPECT_EQ(ptsSizeAnyCtx(*R1, M->getMain(), "y1"), 1u);
  EXPECT_EQ(ptsSizeAnyCtx(*R1, M->getMain(), "y2"), 1u);
}

TEST(PointerAnalysisTest, OneCFAInsufficientForTwoLevelWrappers) {
  auto M = parseProgram(R"(
    class A { }
    func id(p: A): A { return p; }
    func wrap(p: A): A {
      var r: A;
      r = id(p);
      return r;
    }
    func main() {
      var x1: A;
      var x2: A;
      var y1: A;
      var y2: A;
      x1 = new A;
      x2 = new A;
      y1 = wrap(x1);
      y2 = wrap(x2);
    }
  )");
  // 1-CFA merges inside id() (same wrap->id call site).
  auto R1 = runPointerAnalysis(*M, optsFor(ContextKind::KCallsite, 1));
  EXPECT_EQ(ptsSizeAnyCtx(*R1, M->getMain(), "y1"), 2u);
  // 2-CFA distinguishes the full chain.
  auto R2 = runPointerAnalysis(*M, optsFor(ContextKind::KCallsite, 2));
  EXPECT_EQ(ptsSizeAnyCtx(*R2, M->getMain(), "y1"), 1u);
}

TEST(PointerAnalysisTest, ObjectSensitivityDistinguishesReceivers) {
  auto M = parseProgram(R"(
    class Box {
      field item: Box;
      method set(v: Box) { this.item = v; }
      method get(): Box { var r: Box; r = this.item; return r; }
    }
    func main() {
      var a: Box;
      var b: Box;
      var va: Box;
      var vb: Box;
      var got: Box;
      a = new Box;
      b = new Box;
      va = new Box;
      vb = new Box;
      a.set(va);
      b.set(vb);
      got = a.get();
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::KObject, 1));
  EXPECT_EQ(ptsSizeAnyCtx(*R, M->getMain(), "got"), 1u);
}

TEST(PointerAnalysisTest, StatsArePopulated) {
  auto M = parseProgram(R"(
    class A { }
    func main() {
      var x: A;
      x = new A;
    }
  )");
  auto R = runPointerAnalysis(*M, optsFor(ContextKind::Insensitive));
  EXPECT_GE(R->stats().get("pta.pointer-nodes"), 1u);
  EXPECT_EQ(R->stats().get("pta.objects"), 1u);
  EXPECT_EQ(R->stats().get("pta.instances"), 1u);
  EXPECT_FALSE(R->hitBudget());
}

TEST(PointerAnalysisTest, NodeBudgetStopsSolver) {
  auto M = parseProgram(R"(
    class A { field f: A; }
    func main() {
      var a: A;
      var b: A;
      var c: A;
      a = new A;
      b = new A;
      c = new A;
      a.f = b;
      b.f = c;
    }
  )");
  PTAOptions Opts = optsFor(ContextKind::Insensitive);
  Opts.NodeBudget = 2;
  auto R = runPointerAnalysis(*M, Opts);
  EXPECT_TRUE(R->hitBudget());
}

TEST(PointerAnalysisTest, OptionNames) {
  EXPECT_EQ(optsFor(ContextKind::Insensitive).name(), "0-ctx");
  EXPECT_EQ(optsFor(ContextKind::KCallsite, 2).name(), "2-cfa");
  EXPECT_EQ(optsFor(ContextKind::KObject, 1).name(), "1-obj");
  EXPECT_EQ(optsFor(ContextKind::Origin, 1).name(), "1-origin");
}

TEST(PointerAnalysisTest, MainlessModuleYieldsEmptyResultNotAbort) {
  // The verifier rejects main-less modules; a caller that skips it must
  // get a flagged empty result (trivially sound: nothing executes), not
  // an assert/UB, so release-build fleets degrade per-job.
  std::string Err;
  auto M = parseModule("func helper() { }", Err);
  ASSERT_TRUE(M) << Err;
  ASSERT_EQ(M->getMain(), nullptr);
  for (ContextKind CK :
       {ContextKind::Insensitive, ContextKind::Origin, ContextKind::KCallsite}) {
    auto R = runPointerAnalysis(*M, optsFor(CK));
    EXPECT_TRUE(R->entryMissing());
    EXPECT_FALSE(R->cancelled());
    EXPECT_TRUE(R->instances().empty());
    EXPECT_EQ(R->stats().get("pta.no-entry"), 1u);
    EXPECT_EQ(R->stats().get("pta.pointer-nodes"), 0u);
  }
}

} // namespace
