//===- PTATestUtils.h - shared helpers for PTA tests ------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#ifndef O2_TESTS_PTA_PTATESTUTILS_H
#define O2_TESTS_PTA_PTATESTUTILS_H

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/PTA/PointerAnalysis.h"

#include <gtest/gtest.h>

namespace o2test {

/// Parses and verifies a textual OIR program; fails the test on errors.
inline std::unique_ptr<o2::Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = o2::parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  if (!M)
    return nullptr;
  std::vector<std::string> Errors;
  EXPECT_TRUE(o2::verifyModule(*M, Errors))
      << "verifier error: " << (Errors.empty() ? "?" : Errors.front());
  return M;
}

inline o2::PTAOptions optsFor(o2::ContextKind Kind, unsigned K = 1) {
  o2::PTAOptions Opts;
  Opts.Kind = Kind;
  Opts.K = K;
  return Opts;
}

/// Number of abstract objects whose allocated type is named \p TypeName.
inline unsigned countObjectsOfType(const o2::PTAResult &R,
                                   std::string_view TypeName) {
  unsigned N = 0;
  for (const o2::ObjInfo &O : R.objects())
    if (O.AllocatedType->getName() == TypeName)
      ++N;
  return N;
}

/// Finds the unique free function or method statement of the given kind in
/// \p F, failing the test when absent.
template <typename StmtT>
const StmtT *findStmt(const o2::Function *F) {
  const StmtT *Found = nullptr;
  for (const auto &S : F->body())
    if (const auto *T = o2::dyn_cast<StmtT>(S.get())) {
      EXPECT_EQ(Found, nullptr) << "multiple statements of requested kind";
      Found = T;
    }
  EXPECT_NE(Found, nullptr) << "no statement of requested kind";
  return Found;
}

} // namespace o2test

#endif // O2_TESTS_PTA_PTATESTUTILS_H
