//===- RacerDLikeTest.cpp - syntactic baseline unit tests -----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Race/RacerDLike.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Race/RaceDetector.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

TEST(RacerDLikeTest, FindsSimpleSyntacticRace) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      t = new T(s);
      spawn t.run();
      x = s.v;
    }
  )");
  RacerDReport R = runRacerDLike(*M);
  EXPECT_GE(R.numPotentialRaces(), 1u);
}

TEST(RacerDLikeTest, SyntacticLocksSuppress) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    global lock: Obj;
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() {
        var o: Obj;
        var l: Obj;
        var x: int;
        o = this.s;
        l = @lock;
        acquire l;
        o.v = x;
        release l;
      }
    }
    func main() {
      var s: Obj;
      var l: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      l = new Obj;
      @lock = l;
      t = new T(s);
      spawn t.run();
      l = @lock;
      acquire l;
      x = s.v;
      release l;
    }
  )");
  RacerDReport R = runRacerDLike(*M);
  for (const RacerDWarning &W : R.warnings())
    EXPECT_NE(W.Location, "Obj.v");
}

TEST(RacerDLikeTest, MissesPointerDistinctions) {
  // Two threads write the SAME field name of DIFFERENT objects obtained
  // through a factory: no real race, but the field-name abstraction
  // (with only intraprocedural ownership) cannot tell them apart.
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    func makeObj(): Obj {
      var o: Obj;
      o = new Obj;
      return o;
    }
    class T {
      method run() {
        var o: Obj;
        var x: int;
        o = makeObj();
        o.v = x;
      }
    }
    func main() {
      var t1: T;
      var t2: T;
      t1 = new T;
      t2 = new T;
      spawn t1.run();
      spawn t2.run();
    }
  )");
  RacerDReport RacerD = runRacerDLike(*M);
  EXPECT_GE(RacerD.numPotentialRaces(), 1u); // false positive

  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  RaceReport O2R = detectRaces(*PTA);
  EXPECT_EQ(O2R.numRaces(), 0u); // O2 is precise here
}

TEST(RacerDLikeTest, UnprotectedWriteCategory) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      field l: Obj;
      method init(s: Obj, l: Obj) { this.s = s; this.l = l; }
      method run() {
        var o: Obj;
        var lk: Obj;
        var x: int;
        o = this.s;
        lk = this.l;
        acquire lk;
        o.v = x;
        release lk;
      }
    }
    global gs: Obj;
    func main() {
      var s: Obj;
      var s2: Obj;
      var l: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      l = new Obj;
      @gs = s;
      t = new T(s, l);
      spawn t.run();
      s2 = @gs;
      s2.v = x;
    }
  )");
  RacerDReport R = runRacerDLike(*M);
  bool SawUnprotected = false;
  for (const RacerDWarning &W : R.warnings())
    SawUnprotected |=
        W.WarningKind == RacerDWarning::Kind::UnprotectedWrite;
  EXPECT_TRUE(SawUnprotected);
}

TEST(RacerDLikeTest, MainOnlyProgramIsQuiet) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    func main() {
      var o: Obj;
      var x: int;
      o = new Obj;
      o.v = x;
      x = o.v;
    }
  )");
  RacerDReport R = runRacerDLike(*M);
  EXPECT_EQ(R.numPotentialRaces(), 0u);
}

} // namespace
