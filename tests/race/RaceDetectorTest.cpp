//===- RaceDetectorTest.cpp - race detection unit tests -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Race/RaceDetector.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Support/OutputStream.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

RaceReport detect(const Module &M,
                  ContextKind Kind = ContextKind::Origin,
                  RaceDetectorOptions Opts = {}) {
  PTAOptions PTAOpts;
  PTAOpts.Kind = Kind;
  auto PTA = runPointerAnalysis(M, PTAOpts);
  return detectRaces(*PTA, Opts);
}

TEST(RaceDetectorTest, UnprotectedWriteWriteRace) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      t1 = new T(s);
      t2 = new T(s);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  RaceReport R = detect(*M);
  // Both threads execute the same write statement on the shared object.
  ASSERT_EQ(R.numRaces(), 1u);
  EXPECT_EQ(R.races()[0].A, R.races()[0].B);
  EXPECT_TRUE(R.races()[0].AIsWrite);
}

TEST(RaceDetectorTest, CommonLockSuppressesRace) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      field l: Obj;
      method init(s: Obj, l: Obj) { this.s = s; this.l = l; }
      method run() {
        var o: Obj;
        var lk: Obj;
        var x: int;
        o = this.s;
        lk = this.l;
        acquire lk;
        o.v = x;
        release lk;
      }
    }
    func main() {
      var s: Obj;
      var l: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      l = new Obj;
      t1 = new T(s, l);
      t2 = new T(s, l);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  RaceReport R = detect(*M);
  EXPECT_EQ(R.numRaces(), 0u);
}

TEST(RaceDetectorTest, DistinctLocksDoNotProtect) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      field l: Obj;
      method init(s: Obj, l: Obj) { this.s = s; this.l = l; }
      method run() {
        var o: Obj;
        var lk: Obj;
        var x: int;
        o = this.s;
        lk = this.l;
        acquire lk;
        o.v = x;
        release lk;
      }
    }
    func main() {
      var s: Obj;
      var l1: Obj;
      var l2: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      l1 = new Obj;
      l2 = new Obj;
      t1 = new T(s, l1);
      t2 = new T(s, l2);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  RaceReport R = detect(*M);
  // Each thread locks its own lock object: no common guard.
  EXPECT_EQ(R.numRaces(), 1u);
}

TEST(RaceDetectorTest, OneSidedLockStillRaces) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class Locked {
      field s: Obj;
      field l: Obj;
      method init(s: Obj, l: Obj) { this.s = s; this.l = l; }
      method run() {
        var o: Obj;
        var lk: Obj;
        var x: int;
        o = this.s;
        lk = this.l;
        acquire lk;
        o.v = x;
        release lk;
      }
    }
    class Unlocked {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; x = o.v; }
    }
    func main() {
      var s: Obj;
      var l: Obj;
      var a: Locked;
      var b: Unlocked;
      s = new Obj;
      l = new Obj;
      a = new Locked(s, l);
      b = new Unlocked(s);
      spawn a.run();
      spawn b.run();
    }
  )");
  RaceReport R = detect(*M);
  ASSERT_EQ(R.numRaces(), 1u);
  EXPECT_TRUE(R.races()[0].AIsWrite != R.races()[0].BIsWrite);
}

TEST(RaceDetectorTest, ForkJoinOrdersAccesses) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      s.v = x;
      t = new T(s);
      spawn t.run();
      join t;
      s.v = x;
    }
  )");
  RaceReport R = detect(*M);
  EXPECT_EQ(R.numRaces(), 0u);
}

TEST(RaceDetectorTest, ConcurrentMainAccessRaces) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t: T;
      var x: int;
      s = new Obj;
      t = new T(s);
      spawn t.run();
      x = s.v;
      join t;
    }
  )");
  RaceReport R = detect(*M);
  // The main read is between spawn and join: concurrent with the write.
  EXPECT_EQ(R.numRaces(), 1u);
}

TEST(RaceDetectorTest, ReadOnlySharingNoRace) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; x = o.v; }
    }
    func main() {
      var s: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      t1 = new T(s);
      t2 = new T(s);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  RaceReport R = detect(*M);
  EXPECT_EQ(R.numRaces(), 0u);
}

TEST(RaceDetectorTest, ThreadLocalDataNoRace) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      method run() {
        var o: Obj;
        var x: int;
        o = new Obj;
        o.v = x;
        x = o.v;
      }
    }
    func main() {
      var t1: T;
      var t2: T;
      t1 = new T;
      t2 = new T;
      spawn t1.run();
      spawn t2.run();
    }
  )");
  RaceReport R = detect(*M);
  EXPECT_EQ(R.numRaces(), 0u);
  EXPECT_EQ(R.stats().get("race.shared-locations"), 0u);

  // 0-ctx merges the per-thread allocations and reports false races
  // (write/write and write/read): the imprecision OPA eliminates
  // (Section 5.2).
  RaceReport R0 = detect(*M, ContextKind::Insensitive);
  EXPECT_EQ(R0.numRaces(), 2u);
}

TEST(RaceDetectorTest, GlobalRace) {
  auto M = parseProgram(R"(
    class T {
      method run() { var x: int; @counter = x; }
    }
    global counter: int;
    func main() {
      var t: T;
      var x: int;
      t = new T;
      spawn t.run();
      x = @counter;
    }
  )");
  RaceReport R = detect(*M);
  ASSERT_EQ(R.numRaces(), 1u);
  EXPECT_TRUE(R.races()[0].Loc.isGlobal());
}

TEST(RaceDetectorTest, EventSerializationSuppressesHandlerRaces) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class H {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method handleEvent() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var h1: H;
      var h2: H;
      s = new Obj;
      h1 = new H(s);
      h2 = new H(s);
      spawn h1.handleEvent();
      spawn h2.handleEvent();
    }
  )");
  // Section 4.2: handlers on the looper thread cannot race each other.
  RaceReport Serialized = detect(*M);
  EXPECT_EQ(Serialized.numRaces(), 0u);

  RaceDetectorOptions NoSerial;
  NoSerial.SHB.SerializeEventHandlers = false;
  RaceReport Parallel = detect(*M, ContextKind::Origin, NoSerial);
  EXPECT_EQ(Parallel.numRaces(), 1u);
}

TEST(RaceDetectorTest, ThreadVsEventHandlerRaces) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class H {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method handleEvent() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var h: H;
      var t: T;
      s = new Obj;
      h = new H(s);
      t = new T(s);
      spawn h.handleEvent();
      spawn t.run();
    }
  )");
  // The implicit looper lock serializes handlers with each other but NOT
  // with ordinary threads: this is precisely the thread↔event interaction
  // the paper's new bugs exhibit.
  RaceReport R = detect(*M);
  EXPECT_EQ(R.numRaces(), 1u);
}

TEST(RaceDetectorTest, LoopSpawnSelfRace) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t: T;
      s = new Obj;
      loop {
        t = new T(s);
        spawn t.run();
      }
    }
  )");
  RaceReport R = detect(*M);
  // Two duplicated origins race with each other on the same statement.
  EXPECT_EQ(R.numRaces(), 1u);
}

TEST(RaceDetectorTest, LockRegionMergingPreservesRaces) {
  auto M = parseProgram(R"(
    class Obj { field a: int; field b: int; }
    class T {
      field s: Obj;
      field l: Obj;
      method init(s: Obj, l: Obj) { this.s = s; this.l = l; }
      method run() {
        var o: Obj;
        var lk: Obj;
        var x: int;
        o = this.s;
        lk = this.l;
        acquire lk;
        o.a = x;
        x = o.a;
        o.a = x;
        o.b = x;
        release lk;
      }
    }
    class U {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.a = x; }
    }
    func main() {
      var s: Obj;
      var l: Obj;
      var t1: T;
      var t2: T;
      var u: U;
      s = new Obj;
      l = new Obj;
      t1 = new T(s, l);
      t2 = new T(s, l);
      u = new U(s);
      spawn t1.run();
      spawn t2.run();
      spawn u.run();
    }
  )");
  PTAOptions PTAOpts;
  PTAOpts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, PTAOpts);

  RaceDetectorOptions Optimized; // all on
  RaceReport ROpt = detectRaces(*PTA, Optimized);

  RaceDetectorOptions Naive;
  Naive.Engine = RaceEngineKind::Serial;
  Naive.HB = RaceHBKind::Naive;
  Naive.CacheLocksetChecks = false;
  Naive.LockRegionMerging = false;
  RaceReport RNaive = detectRaces(*PTA, Naive);

  // Merging may collapse several racy pairs inside one lock region into a
  // representative, but must preserve exactly the racy locations.
  std::set<uint64_t> OptLocs, NaiveLocs;
  for (const Race &Rc : ROpt.races())
    OptLocs.insert(Rc.Loc.key());
  for (const Race &Rc : RNaive.races())
    NaiveLocs.insert(Rc.Loc.key());
  EXPECT_EQ(OptLocs, NaiveLocs);
  EXPECT_LE(ROpt.numRaces(), RNaive.numRaces());
  EXPECT_GE(ROpt.numRaces(), 1u);
  // Every optimized race is also a naive race.
  std::set<std::pair<const Stmt *, const Stmt *>> NaivePairs;
  for (const Race &Rc : RNaive.races())
    NaivePairs.insert({Rc.A, Rc.B});
  for (const Race &Rc : ROpt.races())
    EXPECT_TRUE(NaivePairs.count({Rc.A, Rc.B}));
  // ... with strictly less work for the merged configuration.
  EXPECT_LT(ROpt.stats().get("race.pairs-checked"),
            RNaive.stats().get("race.pairs-checked"));
  EXPECT_GE(ROpt.stats().get("race.merged-accesses"), 1u);
}

TEST(RaceDetectorTest, ReportPrinting) {
  auto M = parseProgram(R"(
    class T {
      method run() { var x: int; @g = x; }
    }
    global g: int;
    func main() {
      var t: T;
      var x: int;
      t = new T;
      spawn t.run();
      @g = x;
    }
  )");
  PTAOptions PTAOpts;
  PTAOpts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, PTAOpts);
  RaceReport R = detectRaces(*PTA);
  ASSERT_EQ(R.numRaces(), 1u);
  std::string Buf;
  StringOutputStream OS(Buf);
  R.print(OS, *PTA);
  EXPECT_NE(Buf.find("race on @g"), std::string::npos);
  EXPECT_NE(Buf.find("write"), std::string::npos);
}

TEST(RaceDetectorTest, BudgetExhaustionAlwaysSetsBudgetHit) {
  // Three threads hammering one location: several conflicting pairs, all
  // at the *last* (only) candidate with pairs — the case where the old
  // detector returned from checkLocation without ever setting
  // "race.budget-hit" because only the next loop iteration checked it.
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var t1: T;
      var t2: T;
      var t3: T;
      s = new Obj;
      t1 = new T(s);
      t2 = new T(s);
      t3 = new T(s);
      spawn t1.run();
      spawn t2.run();
      spawn t3.run();
    }
  )");
  uint64_t Total =
      detect(*M).stats().get("race.pairs-checked");
  ASSERT_GE(Total, 2u);

  // One pair short: the tripping pair is denied, not half-counted.
  RaceDetectorOptions Opts;
  Opts.MaxPairChecks = Total - 1;
  RaceReport Hit = detect(*M, ContextKind::Origin, Opts);
  EXPECT_EQ(Hit.stats().get("race.budget-hit"), 1u);
  EXPECT_EQ(Hit.stats().get("race.pairs-checked"), Total - 1);

  // An exactly-sufficient budget completes without tripping.
  Opts.MaxPairChecks = Total;
  RaceReport Fits = detect(*M, ContextKind::Origin, Opts);
  EXPECT_EQ(Fits.stats().get("race.budget-hit"), 0u);
  EXPECT_EQ(Fits.stats().get("race.pairs-checked"), Total);
  EXPECT_EQ(Fits.numRaces(), detect(*M).numRaces());
}

} // namespace
