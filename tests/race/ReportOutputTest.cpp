//===- ReportOutputTest.cpp - JSON/DOT report output tests ----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/Driver.h"
#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/O2.h"
#include "o2/Race/RaceDetector.h"
#include "o2/Support/OutputStream.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

const char *RacyProgram = R"(
  class T {
    method run() { var x: int; @g = x; }
  }
  global g: int;
  func main() {
    var t: T;
    var x: int;
    t = new T;
    spawn t.run();
    x = @g;
  }
)";

TEST(ReportOutputTest, JSONReportWellFormed) {
  auto M = parseProgram(RacyProgram);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  RaceReport R = detectRaces(*PTA);
  ASSERT_EQ(R.numRaces(), 1u);

  std::string Buf;
  StringOutputStream OS(Buf);
  R.printJSON(OS, *PTA);
  EXPECT_EQ(Buf.find("{\"races\":[{"), 0u);
  EXPECT_NE(Buf.find("\"location\":\"@g\""), std::string::npos);
  EXPECT_NE(Buf.find("\"write\":true"), std::string::npos);
  EXPECT_NE(Buf.find("\"stats\":{"), std::string::npos);
  EXPECT_NE(Buf.find("\"race.races\":1"), std::string::npos);
  // Balanced braces/brackets.
  int Depth = 0;
  for (char C : Buf) {
    if (C == '{' || C == '[')
      ++Depth;
    if (C == '}' || C == ']')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST(ReportOutputTest, EmptyJSONReport) {
  auto M = parseProgram(R"(
    func main() { }
  )");
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  RaceReport R = detectRaces(*PTA);
  std::string Buf;
  StringOutputStream OS(Buf);
  R.printJSON(OS, *PTA);
  EXPECT_EQ(Buf.find("{\"races\":[]"), 0u);
}

TEST(ReportOutputTest, StatsJSONHasPhaseTimingsAndSolverStats) {
  auto M = parseProgram(RacyProgram);
  O2Analysis Result = analyzeModule(*M);
  std::string Buf;
  StringOutputStream OS(Buf);
  Result.printStatsJSON(OS);
  // Per-phase wall-clock keys (milliseconds).
  EXPECT_NE(Buf.find("\"time.pta-ms\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"time.shb-ms\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"time.race-ms\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"time.total-ms\":"), std::string::npos);
  // Solver identity and the wave-engine statistics.
  EXPECT_NE(Buf.find("\"solver\":\"wave\""), std::string::npos);
  EXPECT_NE(Buf.find("\"pta.scc-collapsed\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"pta.waves\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"pta.propagated-words\":"), std::string::npos);
  EXPECT_NE(Buf.find("\"race.races\":1"), std::string::npos);
  // One flat, balanced JSON object.
  int Depth = 0;
  for (char C : Buf) {
    if (C == '{')
      ++Depth;
    if (C == '}')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);

  // The worklist engine is selectable and reports itself.
  O2Config Cfg;
  Cfg.PTA.Solver = SolverKind::Worklist;
  O2Analysis Baseline = analyzeModule(*M, Cfg);
  Buf.clear();
  Baseline.printStatsJSON(OS);
  EXPECT_NE(Buf.find("\"solver\":\"worklist\""), std::string::npos);
  EXPECT_EQ(Baseline.Races.numRaces(), Result.Races.numRaces());
}

TEST(ReportOutputTest, SHBDotExport) {
  auto M = parseProgram(RacyProgram);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  SHBGraph SHB = buildSHBGraph(*PTA);
  std::string Buf;
  StringOutputStream OS(Buf);
  printSHBDot(SHB, OS);
  EXPECT_EQ(Buf.find("digraph shb {"), 0u);
  EXPECT_NE(Buf.find("(main)"), std::string::npos);
  EXPECT_NE(Buf.find("(thread)"), std::string::npos);
  EXPECT_NE(Buf.find("spawn@"), std::string::npos);
}

TEST(ReportOutputTest, CLIExitCodeConvention) {
  // o2cli and o2batch share one convention: 0 clean, 1 races found,
  // 2 for parse/verify/internal errors and timeouts.
  EXPECT_EQ(ExitClean, 0);
  EXPECT_EQ(ExitRacesFound, 1);
  EXPECT_EQ(ExitError, 2);

  // A racy analysis maps onto exit 1, a clean one onto exit 0 — this is
  // what o2cli returns after the analysis ran.
  auto Racy = parseProgram(RacyProgram);
  O2Analysis RacyResult = analyzeModule(*Racy);
  EXPECT_EQ(RacyResult.Races.numRaces() == 0 ? ExitClean : ExitRacesFound,
            ExitRacesFound);

  auto Clean = parseProgram("func main() { }");
  O2Analysis CleanResult = analyzeModule(*Clean);
  EXPECT_EQ(CleanResult.Races.numRaces() == 0 ? ExitClean : ExitRacesFound,
            ExitClean);

  // Failure modes map onto exit 2 through the shared jobStatusName /
  // exitCodeFor pair the batch driver uses for its per-job records.
  EXPECT_EQ(exitCodeFor(JobStatus::ParseError), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::VerifyError), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::InternalError), ExitError);
  JobSpec Broken;
  Broken.Name = "broken";
  Broken.Source = "class {";
  EXPECT_EQ(exitCodeFor(runOneJob(Broken).Status), ExitError);
}

TEST(ReportOutputTest, SHBDotShowsJoins) {
  auto M = parseProgram(R"(
    class T { method run() { } }
    func main() {
      var t: T;
      t = new T;
      spawn t.run();
      join t;
    }
  )");
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  SHBGraph SHB = buildSHBGraph(*PTA);
  std::string Buf;
  StringOutputStream OS(Buf);
  printSHBDot(SHB, OS);
  EXPECT_NE(Buf.find("join@"), std::string::npos);
}

} // namespace
