//===- AtomicsTest.cpp - atomic fields/globals tests ----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// The paper lists std::atomic support as future work ("by adding new
// happens-before rules ... to the atomic/semaphore operations"); OIR
// implements it with an `atomic` storage modifier: accesses to atomic
// fields and globals are synchronization, not data, so the detector does
// not report races on them.
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Parser.h"
#include "o2/IR/Printer.h"
#include "o2/IR/Verifier.h"
#include "o2/Race/RaceDetector.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

const char *AtomicProgram = R"(
class Obj {
  field flag: int atomic;
  field data: int;
}
global stop: int atomic;
class T {
  field s: Obj;
  method init(s: Obj) { this.s = s; }
  method run() {
    var o: Obj;
    var x: int;
    o = this.s;
    o.flag = x;
    o.data = x;
    @stop = x;
  }
}
func main() {
  var s: Obj;
  var t1: T;
  var t2: T;
  var x: int;
  s = new Obj;
  t1 = new T(s);
  t2 = new T(s);
  spawn t1.run();
  spawn t2.run();
  x = @stop;
}
)";

TEST(AtomicsTest, ParserRecordsAtomicity) {
  auto M = parseProgram(AtomicProgram);
  ClassType *Obj = M->findClass("Obj");
  EXPECT_TRUE(Obj->findField("flag")->isAtomic());
  EXPECT_FALSE(Obj->findField("data")->isAtomic());
  EXPECT_TRUE(M->findGlobal("stop")->isAtomic());
}

TEST(AtomicsTest, PrinterRoundTripsAtomic) {
  auto M = parseProgram(AtomicProgram);
  std::string Printed = printModule(*M);
  EXPECT_NE(Printed.find("field flag: int atomic;"), std::string::npos);
  EXPECT_NE(Printed.find("global stop: int atomic;"), std::string::npos);
  std::string Err;
  auto M2 = parseModule(Printed, Err);
  ASSERT_TRUE(M2) << Err;
  EXPECT_TRUE(M2->findClass("Obj")->findField("flag")->isAtomic());
  EXPECT_EQ(printModule(*M2), Printed);
}

TEST(AtomicsTest, AtomicLocationsDoNotRace) {
  auto M = parseProgram(AtomicProgram);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  RaceReport R = detectRaces(*PTA);
  // Only the plain field races; flag and @stop are synchronization.
  ASSERT_EQ(R.numRaces(), 1u);
  EXPECT_NE(R.races()[0].Loc.toString(*PTA).find(".data"),
            std::string::npos);
}

TEST(AtomicsTest, TreatmentCanBeDisabled) {
  auto M = parseProgram(AtomicProgram);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  RaceDetectorOptions DetOpts;
  DetOpts.HandleAtomics = false;
  RaceReport R = detectRaces(*PTA, DetOpts);
  // data + flag + @stop (write/write and write/read on the global).
  EXPECT_GE(R.numRaces(), 3u);
}

TEST(AtomicsTest, InheritedAtomicFieldsRespected) {
  auto M = parseProgram(R"(
    class Base { field flag: int atomic; }
    class Obj extends Base { }
    class T {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method run() {
        var o: Obj;
        var x: int;
        o = this.s;
        o.flag = x;
      }
    }
    func main() {
      var s: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      t1 = new T(s);
      t2 = new T(s);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  RaceReport R = detectRaces(*PTA);
  EXPECT_EQ(R.numRaces(), 0u);
}

} // namespace
