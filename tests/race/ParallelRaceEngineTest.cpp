//===- ParallelRaceEngineTest.cpp - serial/parallel engine equivalence ---------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// The parallel race engine's determinism contract: byte-identical reports
// and equal statistics (modulo `race.*-cache-*` diagnostics) with the
// serial engine, on every bundled example and generated workload, at any
// worker count — including forced sharding of tiny candidate lists, an
// external shared pool, and the serial fallback for finite pair budgets.
//
//===----------------------------------------------------------------------===//

#include "o2/Race/RaceDetector.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Support/OutputStream.h"
#include "o2/Support/ThreadPool.h"
#include "o2/Workload/Generator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

std::unique_ptr<Module> loadCase(const std::string &Name) {
  if (Name.rfind("oir_", 0) == 0) {
    std::ifstream In(std::string(O2_OIR_DIR) + "/" + Name.substr(4) + ".oir");
    EXPECT_TRUE(In.good()) << "cannot open " << Name;
    std::stringstream Buf;
    Buf << In.rdbuf();
    return parseProgram(Buf.str());
  }
  const WorkloadProfile *P = findProfile(Name);
  EXPECT_NE(P, nullptr) << Name;
  return generateWorkload(*P);
}

std::unique_ptr<PTAResult> runOPA(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  return runPointerAnalysis(M, Opts);
}

std::string render(const RaceReport &R, const PTAResult &PTA) {
  std::string Buf;
  StringOutputStream OS(Buf);
  R.print(OS, PTA);
  R.printJSON(OS, PTA);
  return Buf;
}

/// Stats with the explicitly schedule-dependent diagnostics removed (the
/// equivalence contract allows engines to differ in `race.*-cache-*`
/// occupancy counters only).
std::map<std::string, uint64_t> comparableStats(const RaceReport &R) {
  std::map<std::string, uint64_t> Out;
  for (const auto &[Name, Value] : R.stats().counters())
    if (Name.find("-cache-") == std::string::npos)
      Out[Name] = Value;
  return Out;
}

class ParallelRaceEngine : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelRaceEngine, ByteIdenticalToSerial) {
  auto M = loadCase(GetParam());
  ASSERT_TRUE(M);
  auto PTA = runOPA(*M);
  SHBGraph SHB = buildSHBGraph(*PTA);

  RaceDetectorOptions SerialOpts;
  SerialOpts.Engine = RaceEngineKind::Serial;
  RaceReport Serial = detectRaces(*PTA, SHB, SerialOpts);
  std::string SerialText = render(Serial, *PTA);
  auto SerialStats = comparableStats(Serial);

  for (unsigned Jobs : {1u, 2u, 8u}) {
    for (unsigned MinPar : {0u, 1u}) {
      RaceDetectorOptions Par;
      Par.Engine = RaceEngineKind::Parallel;
      Par.Jobs = Jobs;
      // MinPar == 1 forces real sharding even on tiny candidate lists;
      // MinPar == 0 keeps the production inline-below-threshold default.
      if (MinPar)
        Par.MinParallelLocations = MinPar;
      RaceReport R = detectRaces(*PTA, SHB, Par);
      std::string Tag = GetParam() + "/jobs=" + std::to_string(Jobs) +
                        "/minpar=" + std::to_string(MinPar);
      EXPECT_EQ(render(R, *PTA), SerialText) << Tag;
      EXPECT_EQ(comparableStats(R), SerialStats) << Tag;
    }
  }
}

TEST_P(ParallelRaceEngine, SharedExternalPool) {
  auto M = loadCase(GetParam());
  ASSERT_TRUE(M);
  auto PTA = runOPA(*M);
  SHBGraph SHB = buildSHBGraph(*PTA);

  RaceDetectorOptions SerialOpts;
  SerialOpts.Engine = RaceEngineKind::Serial;
  RaceReport Serial = detectRaces(*PTA, SHB, SerialOpts);

  ThreadPool Pool(4);
  RaceDetectorOptions Par;
  Par.Engine = RaceEngineKind::Parallel;
  Par.Pool = &Pool;
  Par.MinParallelLocations = 1;
  // Two runs on one borrowed pool: late tasks of the first run must not
  // disturb the second.
  RaceReport R1 = detectRaces(*PTA, SHB, Par);
  RaceReport R2 = detectRaces(*PTA, SHB, Par);
  EXPECT_EQ(render(R1, *PTA), render(Serial, *PTA)) << GetParam();
  EXPECT_EQ(render(R2, *PTA), render(Serial, *PTA)) << GetParam();
  EXPECT_EQ(comparableStats(R1), comparableStats(Serial)) << GetParam();
}

TEST_P(ParallelRaceEngine, SmallLocksetMatrixLimitStaysIdentical) {
  auto M = loadCase(GetParam());
  ASSERT_TRUE(M);
  auto PTA = runOPA(*M);
  SHBGraph SHB = buildSHBGraph(*PTA);

  RaceDetectorOptions SerialOpts;
  SerialOpts.Engine = RaceEngineKind::Serial;
  RaceReport Serial = detectRaces(*PTA, SHB, SerialOpts);

  // Forbid the precomputed matrix so the shard-local cache path runs.
  RaceDetectorOptions Par;
  Par.Engine = RaceEngineKind::Parallel;
  Par.MinParallelLocations = 1;
  Par.LocksetMatrixMaxSize = 0;
  Par.Jobs = 4;
  RaceReport R = detectRaces(*PTA, SHB, Par);
  EXPECT_EQ(render(R, *PTA), render(Serial, *PTA)) << GetParam();
  EXPECT_EQ(comparableStats(R), comparableStats(Serial)) << GetParam();
}

std::vector<std::string> engineCases() {
  std::vector<std::string> Cases = {
      "oir_racy_counter",   "oir_producer_consumer", "oir_event_thread_mix",
      "oir_fork_join",      "oir_locked_account",    "oir_lockfree_flag",
      "oir_nested_handlers"};
  for (const WorkloadProfile &P : benchmarkProfiles()) {
    if (P.PaddingFunctions > 100 || P.AmplifierFanOut > 12)
      continue; // large profiles; shape covered by the smaller ones
    Cases.push_back(P.Name);
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ParallelRaceEngine,
                         ::testing::ValuesIn(engineCases()),
                         [](const auto &Info) { return Info.param; });

TEST(ParallelRaceEngineFallback, FiniteBudgetMatchesSerialExactly) {
  auto M = loadCase("oir_racy_counter");
  ASSERT_TRUE(M);
  auto PTA = runOPA(*M);
  SHBGraph SHB = buildSHBGraph(*PTA);

  for (uint64_t Budget : {0ull, 1ull, 3ull, 1000ull}) {
    RaceDetectorOptions SerialOpts;
    SerialOpts.Engine = RaceEngineKind::Serial;
    SerialOpts.MaxPairChecks = Budget;
    RaceReport Serial = detectRaces(*PTA, SHB, SerialOpts);

    RaceDetectorOptions Par = SerialOpts;
    Par.Engine = RaceEngineKind::Parallel;
    RaceReport R = detectRaces(*PTA, SHB, Par);
    EXPECT_EQ(render(R, *PTA), render(Serial, *PTA)) << "budget " << Budget;
    EXPECT_EQ(comparableStats(R), comparableStats(Serial))
        << "budget " << Budget;
  }
}

TEST(SerialHBModes, IndexMatchesMemoAndNaiveQueries) {
  // The acceptance oracle for the O(1) HB index: on every corpus module
  // the serial engine issues the same number of HB queries and reports
  // the same races whether queries go through the naive BFS, the
  // memoized fixpoint, or the precomputed index.
  for (const std::string &Name : engineCases()) {
    auto M = loadCase(Name);
    ASSERT_TRUE(M);
    auto PTA = runOPA(*M);
    SHBGraph SHB = buildSHBGraph(*PTA);

    std::string Rendered[3];
    uint64_t Queries[3];
    int I = 0;
    for (RaceHBKind HB :
         {RaceHBKind::Naive, RaceHBKind::Memo, RaceHBKind::Index}) {
      RaceDetectorOptions Opts;
      Opts.Engine = RaceEngineKind::Serial;
      Opts.HB = HB;
      RaceReport R = detectRaces(*PTA, SHB, Opts);
      Rendered[I] = render(R, *PTA);
      Queries[I] = R.stats().get("race.hb-queries");
      ++I;
    }
    // Reports are byte-identical except for the index-only
    // "race.hb-index-segments" statistic line.
    EXPECT_EQ(Rendered[0], Rendered[1]) << Name;
    EXPECT_EQ(Queries[0], Queries[1]) << Name;
    EXPECT_EQ(Queries[0], Queries[2]) << Name;
  }
}

} // namespace
