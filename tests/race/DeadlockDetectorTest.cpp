//===- DeadlockDetectorTest.cpp - lock-order deadlock tests ---------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Race/DeadlockDetector.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Support/OutputStream.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

DeadlockReport detect(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(M, Opts);
  SHBGraph SHB = buildSHBGraph(*PTA);
  return detectDeadlocks(*PTA, SHB);
}

/// Two threads taking two locks; the acquisition order is a parameter.
std::string twoLockProgram(bool SameOrder, bool WithGate = false) {
  std::string ABody = WithGate ? "acquire g;\n" : "";
  std::string AEnd = WithGate ? "release g;\n" : "";
  std::string T2First = SameOrder ? "la" : "lb";
  std::string T2Second = SameOrder ? "lb" : "la";
  return R"(
    class Lock { }
    global ga: Lock;
    global gb: Lock;
    global gg: Lock;
    class T1 {
      method run() {
        var la: Lock;
        var lb: Lock;
        var g: Lock;
        la = @ga;
        lb = @gb;
        g = @gg;
        )" + ABody + R"(
        acquire la;
        acquire lb;
        release lb;
        release la;
        )" + AEnd + R"(
      }
    }
    class T2 {
      method run() {
        var la: Lock;
        var lb: Lock;
        var g: Lock;
        la = @ga;
        lb = @gb;
        g = @gg;
        )" + ABody + R"(
        acquire )" + T2First + R"(;
        acquire )" + T2Second + R"(;
        release )" + T2Second + R"(;
        release )" + T2First + R"(;
        )" + AEnd + R"(
      }
    }
    func main() {
      var a: Lock;
      var b: Lock;
      var g: Lock;
      var t1: T1;
      var t2: T2;
      a = new Lock;
      b = new Lock;
      g = new Lock;
      @ga = a;
      @gb = b;
      @gg = g;
      t1 = new T1;
      t2 = new T2;
      spawn t1.run();
      spawn t2.run();
    }
  )";
}

TEST(DeadlockDetectorTest, ABBADeadlockFound) {
  auto M = parseProgram(twoLockProgram(/*SameOrder=*/false));
  DeadlockReport R = detect(*M);
  ASSERT_EQ(R.numDeadlocks(), 1u);
  EXPECT_EQ(R.cycles()[0].Locks.size(), 2u);
  EXPECT_EQ(R.cycles()[0].Witnesses.size(), 2u);
  EXPECT_NE(R.cycles()[0].Witnesses[0].Thread,
            R.cycles()[0].Witnesses[1].Thread);
}

TEST(DeadlockDetectorTest, ConsistentOrderIsSafe) {
  auto M = parseProgram(twoLockProgram(/*SameOrder=*/true));
  DeadlockReport R = detect(*M);
  EXPECT_EQ(R.numDeadlocks(), 0u);
  // The ordered edges themselves are still recorded.
  EXPECT_GE(R.edges().size(), 2u);
}

TEST(DeadlockDetectorTest, GateLockSerializesCycle) {
  auto M = parseProgram(twoLockProgram(/*SameOrder=*/false,
                                       /*WithGate=*/true));
  DeadlockReport R = detect(*M);
  EXPECT_EQ(R.numDeadlocks(), 0u);
}

TEST(DeadlockDetectorTest, SingleThreadCycleNotReported) {
  // One thread that (sequentially) takes A->B then B->A cannot deadlock
  // with itself.
  auto M = parseProgram(R"(
    class Lock { }
    global ga: Lock;
    global gb: Lock;
    class T1 {
      method run() {
        var la: Lock;
        var lb: Lock;
        la = @ga;
        lb = @gb;
        acquire la;
        acquire lb;
        release lb;
        release la;
        acquire lb;
        acquire la;
        release la;
        release lb;
      }
    }
    func main() {
      var a: Lock;
      var b: Lock;
      var t: T1;
      a = new Lock;
      b = new Lock;
      @ga = a;
      @gb = b;
      t = new T1;
      spawn t.run();
    }
  )");
  DeadlockReport R = detect(*M);
  EXPECT_EQ(R.numDeadlocks(), 0u);
}

TEST(DeadlockDetectorTest, ThreeCycleFound) {
  auto M = parseProgram(R"(
    class Lock { }
    global ga: Lock;
    global gb: Lock;
    global gc: Lock;
    class TA {
      method run() {
        var x: Lock;
        var y: Lock;
        x = @ga;
        y = @gb;
        acquire x;
        acquire y;
        release y;
        release x;
      }
    }
    class TB {
      method run() {
        var x: Lock;
        var y: Lock;
        x = @gb;
        y = @gc;
        acquire x;
        acquire y;
        release y;
        release x;
      }
    }
    class TC {
      method run() {
        var x: Lock;
        var y: Lock;
        x = @gc;
        y = @ga;
        acquire x;
        acquire y;
        release y;
        release x;
      }
    }
    func main() {
      var a: Lock;
      var b: Lock;
      var c: Lock;
      var ta: TA;
      var tb: TB;
      var tc: TC;
      a = new Lock;
      b = new Lock;
      c = new Lock;
      @ga = a;
      @gb = b;
      @gc = c;
      ta = new TA;
      tb = new TB;
      tc = new TC;
      spawn ta.run();
      spawn tb.run();
      spawn tc.run();
    }
  )");
  DeadlockReport R = detect(*M);
  ASSERT_EQ(R.numDeadlocks(), 1u);
  EXPECT_EQ(R.cycles()[0].Locks.size(), 3u);
}

TEST(DeadlockDetectorTest, ForkJoinOrderingPrunesCycle) {
  // T2 only runs after T1 was joined: the inverse acquisitions can never
  // overlap.
  auto M = parseProgram(R"(
    class Lock { }
    global ga: Lock;
    global gb: Lock;
    class T1 {
      method run() {
        var la: Lock;
        var lb: Lock;
        la = @ga;
        lb = @gb;
        acquire la;
        acquire lb;
        release lb;
        release la;
      }
    }
    class T2 {
      method run() {
        var la: Lock;
        var lb: Lock;
        la = @ga;
        lb = @gb;
        acquire lb;
        acquire la;
        release la;
        release lb;
      }
    }
    func main() {
      var a: Lock;
      var b: Lock;
      var t1: T1;
      var t2: T2;
      a = new Lock;
      b = new Lock;
      @ga = a;
      @gb = b;
      t1 = new T1;
      spawn t1.run();
      join t1;
      t2 = new T2;
      spawn t2.run();
    }
  )");
  DeadlockReport R = detect(*M);
  EXPECT_EQ(R.numDeadlocks(), 0u);
}

TEST(DeadlockDetectorTest, ReportPrints) {
  auto M = parseProgram(twoLockProgram(/*SameOrder=*/false));
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, Opts);
  SHBGraph SHB = buildSHBGraph(*PTA);
  DeadlockReport R = detectDeadlocks(*PTA, SHB);
  std::string Buf;
  StringOutputStream OS(Buf);
  R.print(OS, *PTA);
  EXPECT_NE(Buf.find("1 potential deadlock"), std::string::npos);
  EXPECT_NE(Buf.find("lock cycle"), std::string::npos);
}

} // namespace
