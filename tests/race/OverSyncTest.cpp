//===- OverSyncTest.cpp - over-synchronization analysis tests -------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Race/OverSync.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Support/OutputStream.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

OverSyncReport analyze(const Module &M) {
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(M, Opts);
  SharingResult Sharing = runSharingAnalysis(*PTA);
  SHBGraph SHB = buildSHBGraph(*PTA);
  return detectOverSynchronization(Sharing, SHB);
}

TEST(OverSyncTest, LockOverOriginLocalDataFlagged) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field lk: Obj;
      method init(lk: Obj) { this.lk = lk; }
      method run() {
        var o: Obj;
        var l: Obj;
        var x: int;
        o = new Obj;
        l = this.lk;
        acquire l;
        o.v = x;
        x = o.v;
        release l;
      }
    }
    func main() {
      var lk: Obj;
      var t1: T;
      var t2: T;
      lk = new Obj;
      t1 = new T(lk);
      t2 = new T(lk);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  OverSyncReport R = analyze(*M);
  // Each thread's lock region guards only its own local object.
  EXPECT_EQ(R.numRegions(), 2u);
  EXPECT_EQ(R.regions()[0].NumAccesses, 2u);
}

TEST(OverSyncTest, LockOverSharedDataNotFlagged) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      field lk: Obj;
      method init(s: Obj, lk: Obj) { this.s = s; this.lk = lk; }
      method run() {
        var o: Obj;
        var l: Obj;
        var x: int;
        o = this.s;
        l = this.lk;
        acquire l;
        o.v = x;
        release l;
      }
    }
    func main() {
      var s: Obj;
      var lk: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      lk = new Obj;
      t1 = new T(s, lk);
      t2 = new T(s, lk);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  OverSyncReport R = analyze(*M);
  EXPECT_EQ(R.numRegions(), 0u);
  EXPECT_GE(R.numRegionsChecked(), 2u);
}

TEST(OverSyncTest, MixedRegionNotFlagged) {
  // A region touching one shared and one local location is doing real
  // work: not over-synchronization.
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field s: Obj;
      field lk: Obj;
      method init(s: Obj, lk: Obj) { this.s = s; this.lk = lk; }
      method run() {
        var o: Obj;
        var mine: Obj;
        var l: Obj;
        var x: int;
        o = this.s;
        mine = new Obj;
        l = this.lk;
        acquire l;
        mine.v = x;
        o.v = x;
        release l;
      }
    }
    func main() {
      var s: Obj;
      var lk: Obj;
      var t1: T;
      var t2: T;
      s = new Obj;
      lk = new Obj;
      t1 = new T(s, lk);
      t2 = new T(s, lk);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  OverSyncReport R = analyze(*M);
  EXPECT_EQ(R.numRegions(), 0u);
}

TEST(OverSyncTest, EmptyRegionsNotReported) {
  auto M = parseProgram(R"(
    class Obj { }
    class T {
      field lk: Obj;
      method init(lk: Obj) { this.lk = lk; }
      method run() {
        var l: Obj;
        l = this.lk;
        acquire l;
        release l;
      }
    }
    func main() {
      var lk: Obj;
      var t: T;
      lk = new Obj;
      t = new T(lk);
      spawn t.run();
    }
  )");
  OverSyncReport R = analyze(*M);
  EXPECT_EQ(R.numRegions(), 0u);
}

TEST(OverSyncTest, ReportPrints) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class T {
      field lk: Obj;
      method init(lk: Obj) { this.lk = lk; }
      method run() {
        var o: Obj;
        var l: Obj;
        var x: int;
        o = new Obj;
        l = this.lk;
        acquire l;
        o.v = x;
        release l;
      }
    }
    func main() {
      var lk: Obj;
      var t1: T;
      var t2: T;
      lk = new Obj;
      t1 = new T(lk);
      t2 = new T(lk);
      spawn t1.run();
      spawn t2.run();
    }
  )");
  OverSyncReport R = analyze(*M);
  std::string Buf;
  StringOutputStream OS(Buf);
  R.print(OS);
  EXPECT_NE(Buf.find("over-synchronized"), std::string::npos);
  EXPECT_NE(Buf.find("origin-local"), std::string::npos);
}

} // namespace
