//===- FacadeTest.cpp - O2 facade tests --------------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/O2.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Support/OutputStream.h"

#include <gtest/gtest.h>

#include <thread>

using namespace o2;

namespace {

std::unique_ptr<Module> parseProgram(std::string_view Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_TRUE(M) << "parse error: " << Err;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return M;
}

const char *Program = R"(
  class Obj { field v: int; }
  class T {
    field s: Obj;
    method init(s: Obj) { this.s = s; }
    method run() { var o: Obj; var x: int; o = this.s; o.v = x; }
  }
  func main() {
    var s: Obj;
    var t1: T;
    var t2: T;
    s = new Obj;
    t1 = new T(s);
    t2 = new T(s);
    spawn t1.run();
    spawn t2.run();
  }
)";

TEST(FacadeTest, DefaultPipelineRunsEverything) {
  auto M = parseProgram(Program);
  O2Analysis Result = analyzeModule(*M);
  ASSERT_TRUE(Result.PTA);
  EXPECT_EQ(Result.PTA->options().Kind, ContextKind::Origin);
  EXPECT_EQ(Result.PTA->origins().size(), 3u);
  EXPECT_EQ(Result.Sharing.sharedLocations().size(), 1u);
  EXPECT_EQ(Result.SHB.numThreads(), 3u);
  EXPECT_EQ(Result.Races.numRaces(), 1u);
  // Timings are populated and consistent.
  EXPECT_GT(Result.PTASeconds, 0.0);
  EXPECT_GT(Result.totalSeconds(), 0.0);
  EXPECT_GE(Result.totalSeconds(), Result.PTASeconds);
}

TEST(FacadeTest, OSACanBeSkipped) {
  auto M = parseProgram(Program);
  O2Config Config;
  Config.RunOSA = false;
  O2Analysis Result = analyzeModule(*M, Config);
  EXPECT_TRUE(Result.Sharing.sharedLocations().empty());
  EXPECT_EQ(Result.OSASeconds, 0.0);
  EXPECT_EQ(Result.Races.numRaces(), 1u); // detection is independent
}

TEST(FacadeTest, OSASkippedForNonOriginAnalyses) {
  auto M = parseProgram(Program);
  O2Config Config;
  Config.PTA.Kind = ContextKind::KCallsite;
  Config.PTA.K = 1;
  O2Analysis Result = analyzeModule(*M, Config);
  // OSA requires origin sensitivity; the facade must not run it.
  EXPECT_TRUE(Result.Sharing.sharedLocations().empty());
  EXPECT_GE(Result.Races.numRaces(), 1u);
}

TEST(FacadeTest, DetectorConfigIsForwarded) {
  auto M = parseProgram(R"(
    class Obj { field v: int; }
    class H {
      field s: Obj;
      method init(s: Obj) { this.s = s; }
      method handleEvent() { var o: Obj; var x: int; o = this.s; o.v = x; }
    }
    func main() {
      var s: Obj;
      var h1: H;
      var h2: H;
      s = new Obj;
      h1 = new H(s);
      h2 = new H(s);
      spawn h1.handleEvent();
      spawn h2.handleEvent();
    }
  )");
  O2Analysis Serialized = analyzeModule(*M);
  EXPECT_EQ(Serialized.Races.numRaces(), 0u);

  O2Config NoSerial;
  NoSerial.Detector.SHB.SerializeEventHandlers = false;
  O2Analysis Parallel = analyzeModule(*M, NoSerial);
  EXPECT_EQ(Parallel.Races.numRaces(), 1u);
}

TEST(FacadeTest, SummaryMentionsEveryPhase) {
  auto M = parseProgram(Program);
  O2Analysis Result = analyzeModule(*M);
  std::string Buf;
  StringOutputStream OS(Buf);
  Result.printSummary(OS);
  EXPECT_NE(Buf.find("pointer analysis:"), std::string::npos);
  EXPECT_NE(Buf.find("sharing:"), std::string::npos);
  EXPECT_NE(Buf.find("SHB:"), std::string::npos);
  EXPECT_NE(Buf.find("races: 1"), std::string::npos);
  EXPECT_NE(Buf.find("1-origin"), std::string::npos);
}

TEST(FacadeTest, ConcurrentAnalysesKeepIndependentStatistics) {
  // Statistics are instance-based, not process-global: two analyses
  // running at the same time (the batch driver's normal mode) must each
  // produce exactly the counters a serial run produces. A shared mutable
  // registry would double-count under this interleaving.
  auto MA = parseProgram(Program);
  auto MB = parseProgram(R"(
    class T {
      method run() { var x: int; @g = x; }
    }
    global g: int;
    func main() {
      var t: T;
      var x: int;
      t = new T;
      spawn t.run();
      x = @g;
    }
  )");

  O2Analysis SerialA = analyzeModule(*MA);
  O2Analysis SerialB = analyzeModule(*MB);

  for (int Round = 0; Round < 4; ++Round) {
    O2Analysis ParA, ParB;
    std::thread TA([&] { ParA = analyzeModule(*MA); });
    std::thread TB([&] { ParB = analyzeModule(*MB); });
    TA.join();
    TB.join();
    EXPECT_EQ(ParA.PTA->stats().counters(), SerialA.PTA->stats().counters());
    EXPECT_EQ(ParB.PTA->stats().counters(), SerialB.PTA->stats().counters());
    EXPECT_EQ(ParA.Races.stats().counters(),
              SerialA.Races.stats().counters());
    EXPECT_EQ(ParB.Races.stats().counters(),
              SerialB.Races.stats().counters());
    EXPECT_EQ(ParA.Races.numRaces(), SerialA.Races.numRaces());
    EXPECT_EQ(ParB.Races.numRaces(), SerialB.Races.numRaces());
  }
}

} // namespace
