//===- OutputStreamTest.cpp - OutputStream unit tests ------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/OutputStream.h"

#include <gtest/gtest.h>

using o2::StringOutputStream;

namespace {

TEST(OutputStreamTest, Strings) {
  std::string Buf;
  StringOutputStream OS(Buf);
  OS << "hello" << ' ' << std::string("world");
  EXPECT_EQ(Buf, "hello world");
}

TEST(OutputStreamTest, Integers) {
  std::string Buf;
  StringOutputStream OS(Buf);
  OS << 42 << ' ' << -7 << ' ' << uint64_t(1) << ' ' << int64_t(-1);
  EXPECT_EQ(Buf, "42 -7 1 -1");
}

TEST(OutputStreamTest, LargeIntegers) {
  std::string Buf;
  StringOutputStream OS(Buf);
  OS << uint64_t(18446744073709551615ULL);
  EXPECT_EQ(Buf, "18446744073709551615");
}

TEST(OutputStreamTest, Double) {
  std::string Buf;
  StringOutputStream OS(Buf);
  OS << 1.5;
  EXPECT_EQ(Buf, "1.5");
}

TEST(OutputStreamTest, Bool) {
  std::string Buf;
  StringOutputStream OS(Buf);
  OS << true << ' ' << false;
  EXPECT_EQ(Buf, "true false");
}

TEST(OutputStreamTest, Indent) {
  std::string Buf;
  StringOutputStream OS(Buf);
  OS.indent(4) << "x";
  EXPECT_EQ(Buf, "    x");
}

TEST(OutputStreamTest, LongIndent) {
  std::string Buf;
  StringOutputStream OS(Buf);
  OS.indent(70);
  EXPECT_EQ(Buf.size(), 70u);
}

TEST(OutputStreamTest, OutsErrsExist) {
  // Smoke test: the global streams are constructible and writable.
  o2::outs() << "";
  o2::errs() << "";
}

} // namespace
