//===- FaultInjectorTest.cpp - Fault-injection framework tests ------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/FaultInjector.h"

#include "gtest/gtest.h"

#include <new>
#include <stdexcept>

namespace o2 {
namespace {

/// Every test leaves the process-wide injector disarmed.
class FaultInjectorTest : public testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().disarm(); }
  void TearDown() override { FaultInjector::instance().disarm(); }
};

TEST_F(FaultInjectorTest, UnarmedHitIsANoOp) {
  EXPECT_FALSE(FaultInjector::instance().anyArmed());
  for (int I = 0; I != 1000; ++I)
    FaultInjector::hit("parse");
}

TEST_F(FaultInjectorTest, NthSemanticsFireExactlyOnce) {
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().armFromSpec("parse:3", Err)) << Err;
  FaultInjector::hit("parse");
  FaultInjector::hit("parse");
  EXPECT_THROW(FaultInjector::hit("parse"), std::runtime_error);
  // The counter has passed Nth: later hits do not fire again.
  FaultInjector::hit("parse");
  FaultInjector::hit("parse");
}

TEST_F(FaultInjectorTest, StarFiresOnEveryHit) {
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().armFromSpec("cache.read:*", Err))
      << Err;
  EXPECT_THROW(FaultInjector::hit("cache.read"), std::runtime_error);
  EXPECT_THROW(FaultInjector::hit("cache.read"), std::runtime_error);
  FaultInjector::hit("cache.write"); // different point: untouched
}

TEST_F(FaultInjectorTest, OomActionThrowsBadAlloc) {
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().armFromSpec("alloc:1:oom", Err))
      << Err;
  EXPECT_THROW(FaultInjector::hit("alloc"), std::bad_alloc);
}

TEST_F(FaultInjectorTest, ScopeFilterMatchesOnlyTheNamedJob) {
  std::string Err;
  ASSERT_TRUE(
      FaultInjector::instance().armFromSpec("pass.pta@victim:1", Err))
      << Err;
  // No scope active, wrong scope active: the counter must not advance.
  FaultInjector::hit("pass.pta");
  {
    FaultInjector::JobScope S("bystander");
    FaultInjector::hit("pass.pta");
  }
  {
    FaultInjector::JobScope S("victim");
    EXPECT_THROW(FaultInjector::hit("pass.pta"), std::runtime_error);
  }
}

TEST_F(FaultInjectorTest, JobScopesNest) {
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().armFromSpec("parse@outer:1", Err))
      << Err;
  FaultInjector::JobScope Outer("outer");
  {
    FaultInjector::JobScope Inner("inner");
    FaultInjector::hit("parse"); // scoped to "inner": no fire
  }
  EXPECT_THROW(FaultInjector::hit("parse"), std::runtime_error);
}

TEST_F(FaultInjectorTest, MultipleFaultsArmIndependently) {
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().armFromSpec("parse:1", Err)) << Err;
  ASSERT_TRUE(FaultInjector::instance().armFromSpec("alloc:2:oom", Err))
      << Err;
  EXPECT_THROW(FaultInjector::hit("parse"), std::runtime_error);
  FaultInjector::hit("alloc");
  EXPECT_THROW(FaultInjector::hit("alloc"), std::bad_alloc);
}

TEST_F(FaultInjectorTest, DisarmClearsFaultsAndCounters) {
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().armFromSpec("parse:2", Err)) << Err;
  FaultInjector::hit("parse");
  FaultInjector::instance().disarm();
  EXPECT_FALSE(FaultInjector::instance().anyArmed());
  FaultInjector::hit("parse"); // would have fired at the old count
  // Re-arming starts a fresh counter.
  ASSERT_TRUE(FaultInjector::instance().armFromSpec("parse:2", Err)) << Err;
  FaultInjector::hit("parse");
  EXPECT_THROW(FaultInjector::hit("parse"), std::runtime_error);
}

TEST_F(FaultInjectorTest, SpecParsingRejectsMalformedInput) {
  std::string Err;
  FaultInjector &I = FaultInjector::instance();
  EXPECT_FALSE(I.armFromSpec("", Err));
  EXPECT_FALSE(I.armFromSpec("parse", Err)); // no count
  EXPECT_FALSE(I.armFromSpec(":1", Err));    // no point
  EXPECT_FALSE(I.armFromSpec("no-such-point:1", Err));
  EXPECT_NE(Err.find("unknown fault point"), std::string::npos);
  EXPECT_FALSE(I.armFromSpec("parse:0", Err)); // counts are 1-based
  EXPECT_FALSE(I.armFromSpec("parse:x", Err));
  EXPECT_FALSE(I.armFromSpec("parse:1:frobnicate", Err));
  EXPECT_NE(Err.find("unknown fault action"), std::string::npos);
  EXPECT_FALSE(I.armFromSpec("parse@:1", Err)); // empty scope
  EXPECT_FALSE(I.anyArmed());
}

TEST_F(FaultInjectorTest, CatalogueCoversTheDriverPipeline) {
  // The docs and CLI help are generated from this list; pin the names so
  // a renamed fault point is a conscious, documented change.
  const char *Expected[] = {
      "parse",         "alloc",       "cache.read",    "cache.write",
      "pass.pta",      "pass.osa",    "pass.shb",      "pass.hbindex",
      "pass.race",     "pass.deadlock", "pass.oversync", "pass.racerd",
      "pass.escape",
  };
  const auto &Cat = FaultInjector::catalogue();
  ASSERT_EQ(Cat.size(), std::size(Expected));
  for (size_t I = 0; I != Cat.size(); ++I) {
    EXPECT_STREQ(Cat[I].Name, Expected[I]);
    EXPECT_NE(Cat[I].Where[0], '\0');
  }
  // Every catalogued point must be armable.
  std::string Err;
  for (const FaultPointInfo &P : Cat)
    EXPECT_TRUE(FaultInjector::instance().armFromSpec(
        std::string(P.Name) + ":1000000", Err))
        << P.Name << ": " << Err;
}

} // namespace
} // namespace o2
