//===- BitVectorTest.cpp - BitVector unit tests ------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/BitVector.h"

#include <gtest/gtest.h>

#include <set>

using o2::BitVector;

namespace {

TEST(BitVectorTest, DefaultEmpty) {
  BitVector BV;
  EXPECT_TRUE(BV.empty());
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.findFirst(), -1);
}

TEST(BitVectorTest, SetGrowsAndReportsNewness) {
  BitVector BV;
  EXPECT_TRUE(BV.set(100));
  EXPECT_FALSE(BV.set(100)); // already set
  EXPECT_TRUE(BV.test(100));
  EXPECT_FALSE(BV.test(99));
  EXPECT_GE(BV.size(), 101u);
}

TEST(BitVectorTest, ResetAndClear) {
  BitVector BV(64);
  BV.set(3);
  BV.set(63);
  BV.reset(3);
  EXPECT_FALSE(BV.test(3));
  EXPECT_TRUE(BV.test(63));
  BV.clear();
  EXPECT_TRUE(BV.none());
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector BV(70, true);
  EXPECT_EQ(BV.count(), 70u);
  EXPECT_TRUE(BV.test(69));
  EXPECT_FALSE(BV.test(70)); // out of range
}

TEST(BitVectorTest, UnionWith) {
  BitVector A, B;
  A.set(1);
  A.set(65);
  B.set(2);
  B.set(65);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(1));
  EXPECT_TRUE(A.test(2));
  EXPECT_TRUE(A.test(65));
  EXPECT_EQ(A.count(), 3u);
  // Second union adds nothing.
  EXPECT_FALSE(A.unionWith(B));
}

TEST(BitVectorTest, UnionGrows) {
  BitVector A, B;
  A.set(0);
  B.set(200);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(200));
}

TEST(BitVectorTest, IntersectWithAndIntersects) {
  BitVector A, B;
  A.set(5);
  A.set(70);
  B.set(70);
  B.set(90);
  EXPECT_TRUE(A.intersects(B));
  A.intersectWith(B);
  EXPECT_FALSE(A.test(5));
  EXPECT_TRUE(A.test(70));
  EXPECT_EQ(A.count(), 1u);

  BitVector C;
  C.set(4);
  EXPECT_FALSE(A.intersects(C));
}

TEST(BitVectorTest, FindFirstAndNext) {
  BitVector BV;
  BV.set(7);
  BV.set(64);
  BV.set(128);
  EXPECT_EQ(BV.findFirst(), 7);
  EXPECT_EQ(BV.findNext(8), 64);
  EXPECT_EQ(BV.findNext(64), 64);
  EXPECT_EQ(BV.findNext(65), 128);
  EXPECT_EQ(BV.findNext(129), -1);
}

TEST(BitVectorTest, SetBitIteration) {
  BitVector BV;
  std::set<unsigned> Expected = {3, 64, 65, 200};
  for (unsigned I : Expected)
    BV.set(I);
  std::set<unsigned> Got;
  for (unsigned I : BV)
    Got.insert(I);
  EXPECT_EQ(Got, Expected);
}

TEST(BitVectorTest, EqualityIgnoresTrailingZeroWords) {
  BitVector A, B;
  A.set(3);
  B.set(3);
  B.ensureSize(1000);
  EXPECT_TRUE(A == B);
  B.set(999);
  EXPECT_FALSE(A == B);
}

TEST(BitVectorTest, ResizeWithValueTrue) {
  BitVector BV(10, true);
  BV.resize(20, true);
  EXPECT_EQ(BV.count(), 20u);
  BV.resize(5, true);
  EXPECT_EQ(BV.count(), 5u);
}

} // namespace
