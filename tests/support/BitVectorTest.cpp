//===- BitVectorTest.cpp - BitVector unit tests ------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/BitVector.h"

#include <gtest/gtest.h>

#include <set>

using o2::BitVector;

namespace {

TEST(BitVectorTest, DefaultEmpty) {
  BitVector BV;
  EXPECT_TRUE(BV.empty());
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.findFirst(), -1);
}

TEST(BitVectorTest, SetGrowsAndReportsNewness) {
  BitVector BV;
  EXPECT_TRUE(BV.set(100));
  EXPECT_FALSE(BV.set(100)); // already set
  EXPECT_TRUE(BV.test(100));
  EXPECT_FALSE(BV.test(99));
  EXPECT_GE(BV.size(), 101u);
}

TEST(BitVectorTest, ResetAndClear) {
  BitVector BV(64);
  BV.set(3);
  BV.set(63);
  BV.reset(3);
  EXPECT_FALSE(BV.test(3));
  EXPECT_TRUE(BV.test(63));
  BV.clear();
  EXPECT_TRUE(BV.none());
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector BV(70, true);
  EXPECT_EQ(BV.count(), 70u);
  EXPECT_TRUE(BV.test(69));
  EXPECT_FALSE(BV.test(70)); // out of range
}

TEST(BitVectorTest, UnionWith) {
  BitVector A, B;
  A.set(1);
  A.set(65);
  B.set(2);
  B.set(65);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(1));
  EXPECT_TRUE(A.test(2));
  EXPECT_TRUE(A.test(65));
  EXPECT_EQ(A.count(), 3u);
  // Second union adds nothing.
  EXPECT_FALSE(A.unionWith(B));
}

TEST(BitVectorTest, UnionGrows) {
  BitVector A, B;
  A.set(0);
  B.set(200);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(200));
}

TEST(BitVectorTest, IntersectWithAndIntersects) {
  BitVector A, B;
  A.set(5);
  A.set(70);
  B.set(70);
  B.set(90);
  EXPECT_TRUE(A.intersects(B));
  A.intersectWith(B);
  EXPECT_FALSE(A.test(5));
  EXPECT_TRUE(A.test(70));
  EXPECT_EQ(A.count(), 1u);

  BitVector C;
  C.set(4);
  EXPECT_FALSE(A.intersects(C));
}

TEST(BitVectorTest, FindFirstAndNext) {
  BitVector BV;
  BV.set(7);
  BV.set(64);
  BV.set(128);
  EXPECT_EQ(BV.findFirst(), 7);
  EXPECT_EQ(BV.findNext(8), 64);
  EXPECT_EQ(BV.findNext(64), 64);
  EXPECT_EQ(BV.findNext(65), 128);
  EXPECT_EQ(BV.findNext(129), -1);
}

TEST(BitVectorTest, SetBitIteration) {
  BitVector BV;
  std::set<unsigned> Expected = {3, 64, 65, 200};
  for (unsigned I : Expected)
    BV.set(I);
  std::set<unsigned> Got;
  for (unsigned I : BV)
    Got.insert(I);
  EXPECT_EQ(Got, Expected);
}

TEST(BitVectorTest, UnionWithChangedMatchesUnionWith) {
  BitVector A, B;
  A.set(0);
  A.set(63);
  B.set(64);
  B.set(130);
  EXPECT_TRUE(A.unionWithChanged(B));
  EXPECT_EQ(A.count(), 4u);
  EXPECT_FALSE(A.unionWithChanged(B));
  // Self-union is a no-op.
  EXPECT_FALSE(A.unionWithChanged(A));
  EXPECT_EQ(A.count(), 4u);
}

TEST(BitVectorTest, UnionWithDiffExtractsNewBits) {
  BitVector A, B, New;
  A.set(1);
  A.set(70);
  B.set(1); // already present: must not appear in New
  B.set(2);
  B.set(200);
  EXPECT_TRUE(A.unionWithDiff(B, New));
  EXPECT_TRUE(A.test(2));
  EXPECT_TRUE(A.test(200));
  std::set<unsigned> Got;
  for (unsigned I : New)
    Got.insert(I);
  EXPECT_EQ(Got, (std::set<unsigned>{2, 200}));
  // Re-union adds nothing and leaves New untouched.
  BitVector New2;
  EXPECT_FALSE(A.unionWithDiff(B, New2));
  EXPECT_TRUE(New2.none());
}

TEST(BitVectorTest, UnionWithDiffAccumulates) {
  BitVector A, B, C, New;
  B.set(3);
  C.set(90);
  EXPECT_TRUE(A.unionWithDiff(B, New));
  EXPECT_TRUE(A.unionWithDiff(C, New));
  std::set<unsigned> Got;
  for (unsigned I : New)
    Got.insert(I);
  EXPECT_EQ(Got, (std::set<unsigned>{3, 90}));
}

TEST(BitVectorTest, UnionWithDiffSelfIsNoop) {
  BitVector A, New;
  A.set(7);
  A.set(128);
  EXPECT_FALSE(A.unionWithDiff(A, New));
  EXPECT_TRUE(New.none());
  EXPECT_EQ(A.count(), 2u);
}

TEST(BitVectorTest, Diff) {
  BitVector A, B;
  A.set(1);
  A.set(64);
  A.set(200);
  B.set(64);
  B.set(300);
  BitVector D = A.diff(B);
  std::set<unsigned> Got;
  for (unsigned I : D)
    Got.insert(I);
  EXPECT_EQ(Got, (std::set<unsigned>{1, 200}));
  // Diff against a longer vector and against an empty one.
  EXPECT_TRUE(B.diff(B).none());
  BitVector Empty;
  EXPECT_TRUE(A.diff(Empty) == A);
}

TEST(BitVectorTest, ForEachSetWordAndNumSetWords) {
  BitVector BV;
  BV.set(0);
  BV.set(63);
  BV.set(130);
  EXPECT_EQ(BV.numSetWords(), 2u);
  std::set<unsigned> WordIdxs;
  BitVector::Word Word0 = 0;
  BV.forEachSetWord([&](size_t I, BitVector::Word W) {
    WordIdxs.insert(static_cast<unsigned>(I));
    if (I == 0)
      Word0 = W;
  });
  EXPECT_EQ(WordIdxs, (std::set<unsigned>{0, 2}));
  EXPECT_EQ(Word0, (BitVector::Word(1) | (BitVector::Word(1) << 63)));
}

TEST(BitVectorTest, EqualityIgnoresTrailingZeroWords) {
  BitVector A, B;
  A.set(3);
  B.set(3);
  B.ensureSize(1000);
  EXPECT_TRUE(A == B);
  B.set(999);
  EXPECT_FALSE(A == B);
}

TEST(BitVectorTest, ResizeWithValueTrue) {
  BitVector BV(10, true);
  BV.resize(20, true);
  EXPECT_EQ(BV.count(), 20u);
  BV.resize(5, true);
  EXPECT_EQ(BV.count(), 5u);
}

} // namespace
