//===- ArrayRefTest.cpp - ArrayRef unit tests -------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/ArrayRef.h"

#include <gtest/gtest.h>

using o2::ArrayRef;
using o2::SmallVector;

namespace {

TEST(ArrayRefTest, DefaultIsEmpty) {
  ArrayRef<int> A;
  EXPECT_TRUE(A.empty());
  EXPECT_EQ(A.size(), 0u);
}

TEST(ArrayRefTest, FromCArray) {
  int Arr[] = {1, 2, 3};
  ArrayRef<int> A(Arr);
  EXPECT_EQ(A.size(), 3u);
  EXPECT_EQ(A[0], 1);
  EXPECT_EQ(A.back(), 3);
}

TEST(ArrayRefTest, FromVector) {
  std::vector<int> V = {4, 5};
  ArrayRef<int> A(V);
  EXPECT_EQ(A.size(), 2u);
  EXPECT_EQ(A.data(), V.data());
}

TEST(ArrayRefTest, FromSmallVector) {
  SmallVector<int, 4> V = {7, 8, 9};
  ArrayRef<int> A(V);
  EXPECT_EQ(A.size(), 3u);
  EXPECT_EQ(A[2], 9);
}

TEST(ArrayRefTest, FromSingleElement) {
  int X = 42;
  ArrayRef<int> A(X);
  EXPECT_EQ(A.size(), 1u);
  EXPECT_EQ(A[0], 42);
}

TEST(ArrayRefTest, SliceAndDropFront) {
  int Arr[] = {0, 1, 2, 3, 4};
  ArrayRef<int> A(Arr);
  ArrayRef<int> S = A.slice(1, 3);
  EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 1);
  EXPECT_EQ(S[2], 3);
  ArrayRef<int> D = A.drop_front(2);
  EXPECT_EQ(D.size(), 3u);
  EXPECT_EQ(D[0], 2);
}

TEST(ArrayRefTest, Equality) {
  int X[] = {1, 2, 3};
  int Y[] = {1, 2, 3};
  int Z[] = {1, 2, 4};
  EXPECT_TRUE(ArrayRef<int>(X) == ArrayRef<int>(Y));
  EXPECT_FALSE(ArrayRef<int>(X) == ArrayRef<int>(Z));
  EXPECT_FALSE(ArrayRef<int>(X) == ArrayRef<int>(X, 2));
}

TEST(ArrayRefTest, RangeFor) {
  int Arr[] = {1, 2, 3};
  int Sum = 0;
  for (int V : ArrayRef<int>(Arr))
    Sum += V;
  EXPECT_EQ(Sum, 6);
}

} // namespace
