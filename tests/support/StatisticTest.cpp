//===- StatisticTest.cpp - StatisticRegistry unit tests ----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/Statistic.h"

#include "o2/Support/OutputStream.h"

#include <gtest/gtest.h>

using o2::StatisticRegistry;
using o2::StringOutputStream;

namespace {

TEST(StatisticTest, StartsEmpty) {
  StatisticRegistry R;
  EXPECT_TRUE(R.empty());
  EXPECT_EQ(R.get("anything"), 0u);
}

TEST(StatisticTest, AddAndGet) {
  StatisticRegistry R;
  R.add("pta.edges");
  R.add("pta.edges", 4);
  EXPECT_EQ(R.get("pta.edges"), 5u);
}

TEST(StatisticTest, SetOverrides) {
  StatisticRegistry R;
  R.add("x", 10);
  R.set("x", 3);
  EXPECT_EQ(R.get("x"), 3u);
}

TEST(StatisticTest, PrintSortedByName) {
  StatisticRegistry R;
  R.add("zeta", 1);
  R.add("alpha", 2);
  std::string Buf;
  StringOutputStream OS(Buf);
  R.print(OS);
  EXPECT_EQ(Buf, "2  alpha\n1  zeta\n");
}

TEST(StatisticTest, MergeAddsEveryCounter) {
  StatisticRegistry A;
  A.add("shared", 2);
  A.add("only-a", 1);
  StatisticRegistry B;
  B.add("shared", 3);
  B.add("only-b", 7);
  A.merge(B);
  EXPECT_EQ(A.get("shared"), 5u);
  EXPECT_EQ(A.get("only-a"), 1u);
  EXPECT_EQ(A.get("only-b"), 7u);
  // The source registry is untouched.
  EXPECT_EQ(B.get("shared"), 3u);
  EXPECT_EQ(B.get("only-a"), 0u);
}

} // namespace
