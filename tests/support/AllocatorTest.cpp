//===- AllocatorTest.cpp - BumpPtrAllocator/StringSaver unit tests ----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/Allocator.h"

#include <gtest/gtest.h>

#include <cstdint>

using o2::BumpPtrAllocator;
using o2::StringSaver;

namespace {

TEST(BumpPtrAllocatorTest, AllocatesAligned) {
  BumpPtrAllocator Alloc;
  void *P1 = Alloc.allocate(1, 1);
  void *P8 = Alloc.allocate(8, 8);
  void *P16 = Alloc.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P16) % 16, 0u);
  EXPECT_NE(P1, nullptr);
}

TEST(BumpPtrAllocatorTest, DistinctAllocations) {
  BumpPtrAllocator Alloc;
  int *A = Alloc.allocate<int>();
  int *B = Alloc.allocate<int>();
  *A = 1;
  *B = 2;
  EXPECT_NE(A, B);
  EXPECT_EQ(*A, 1);
  EXPECT_EQ(*B, 2);
}

TEST(BumpPtrAllocatorTest, SpillsToNewSlab) {
  BumpPtrAllocator Alloc(/*SlabSize=*/128);
  // Allocate more than one slab's worth.
  for (int I = 0; I < 100; ++I)
    Alloc.allocate(16, 8);
  EXPECT_GT(Alloc.numSlabs(), 1u);
  EXPECT_GE(Alloc.bytesAllocated(), 1600u);
}

TEST(BumpPtrAllocatorTest, OversizedAllocationGetsOwnSlab) {
  BumpPtrAllocator Alloc(/*SlabSize=*/64);
  void *Big = Alloc.allocate(1024, 8);
  EXPECT_NE(Big, nullptr);
  // The slab must fit the request.
  std::memset(Big, 0xAB, 1024);
}

TEST(BumpPtrAllocatorTest, CreateConstructsInPlace) {
  BumpPtrAllocator Alloc;
  struct Point {
    int X, Y;
    Point(int X, int Y) : X(X), Y(Y) {}
  };
  Point *P = Alloc.create<Point>(3, 4);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(StringSaverTest, SavesCopies) {
  BumpPtrAllocator Alloc;
  StringSaver Saver(Alloc);
  std::string Temp = "hello";
  std::string_view Saved = Saver.save(Temp);
  Temp = "goodbye";
  EXPECT_EQ(Saved, "hello");
}

TEST(StringSaverTest, NulTerminated) {
  BumpPtrAllocator Alloc;
  StringSaver Saver(Alloc);
  std::string_view S = Saver.save("abc");
  EXPECT_EQ(S.data()[3], '\0');
}

} // namespace
