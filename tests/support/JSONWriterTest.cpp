//===- JSONWriterTest.cpp - JSONWriter unit tests -----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/JSONWriter.h"

#include <gtest/gtest.h>

using namespace o2;

namespace {

std::string render(void (*Fn)(JSONWriter &)) {
  std::string Buf;
  StringOutputStream OS(Buf);
  JSONWriter W(OS);
  Fn(W);
  return Buf;
}

TEST(JSONWriterTest, EmptyObjectAndArray) {
  EXPECT_EQ(render([](JSONWriter &W) {
              W.beginObject();
              W.endObject();
            }),
            "{}");
  EXPECT_EQ(render([](JSONWriter &W) {
              W.beginArray();
              W.endArray();
            }),
            "[]");
}

TEST(JSONWriterTest, ObjectAttributes) {
  std::string Out = render([](JSONWriter &W) {
    W.beginObject();
    W.attribute("name", "o2");
    W.attribute("races", 42u);
    W.attribute("sound", true);
    W.endObject();
  });
  EXPECT_EQ(Out, R"({"name":"o2","races":42,"sound":true})");
}

TEST(JSONWriterTest, NestedStructures) {
  std::string Out = render([](JSONWriter &W) {
    W.beginObject();
    W.key("list");
    W.beginArray();
    W.value(1);
    W.value(2);
    W.beginObject();
    W.attribute("k", "v");
    W.endObject();
    W.endArray();
    W.endObject();
  });
  EXPECT_EQ(Out, R"({"list":[1,2,{"k":"v"}]})");
}

TEST(JSONWriterTest, StringEscaping) {
  std::string Out = render([](JSONWriter &W) {
    W.beginObject();
    W.attribute("s", "a\"b\\c\nd\te");
    W.endObject();
  });
  EXPECT_EQ(Out, "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JSONWriterTest, ControlCharacterEscaping) {
  std::string Out = render([](JSONWriter &W) {
    W.beginArray();
    W.value(std::string_view("\x01", 1));
    W.endArray();
  });
  EXPECT_EQ(Out, "[\"\\u0001\"]");
}

TEST(JSONWriterTest, NegativeAndNull) {
  std::string Out = render([](JSONWriter &W) {
    W.beginArray();
    W.value(int64_t(-7));
    W.nullValue();
    W.endArray();
  });
  EXPECT_EQ(Out, "[-7,null]");
}

} // namespace
