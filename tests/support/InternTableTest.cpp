//===- InternTableTest.cpp - InternTable unit tests --------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/InternTable.h"

#include <gtest/gtest.h>

using o2::ArrayRef;
using o2::InternTable;

namespace {

TEST(InternTableTest, EmptyIsHandleZero) {
  InternTable T;
  EXPECT_EQ(T.intern({}), InternTable::Empty);
  EXPECT_TRUE(T.get(InternTable::Empty).empty());
}

TEST(InternTableTest, InternIsIdempotent) {
  InternTable T;
  uint32_t Seq[] = {1, 2, 3};
  auto H1 = T.intern(Seq);
  auto H2 = T.intern(Seq);
  EXPECT_EQ(H1, H2);
  EXPECT_EQ(T.size(), 2u); // empty + one sequence
}

TEST(InternTableTest, DistinctSequencesDistinctHandles) {
  InternTable T;
  uint32_t A[] = {1, 2};
  uint32_t B[] = {2, 1};
  uint32_t C[] = {1, 2, 0};
  auto HA = T.intern(A);
  auto HB = T.intern(B);
  auto HC = T.intern(C);
  EXPECT_NE(HA, HB);
  EXPECT_NE(HA, HC);
  EXPECT_NE(HB, HC);
}

TEST(InternTableTest, GetReturnsElements) {
  InternTable T;
  uint32_t Seq[] = {10, 20, 30};
  auto H = T.intern(Seq);
  ArrayRef<uint32_t> Got = T.get(H);
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0], 10u);
  EXPECT_EQ(Got[1], 20u);
  EXPECT_EQ(Got[2], 30u);
}

TEST(InternTableTest, ManySequences) {
  InternTable T;
  std::vector<InternTable::Handle> Handles;
  for (uint32_t I = 0; I < 1000; ++I) {
    uint32_t Seq[] = {I, I * 7, I * 13};
    Handles.push_back(T.intern(Seq));
  }
  // All distinct and retrievable.
  for (uint32_t I = 0; I < 1000; ++I) {
    ArrayRef<uint32_t> Got = T.get(Handles[I]);
    ASSERT_EQ(Got.size(), 3u);
    EXPECT_EQ(Got[0], I);
    EXPECT_EQ(Got[1], I * 7);
    EXPECT_EQ(Got[2], I * 13);
  }
  // Re-interning returns the same handles.
  for (uint32_t I = 0; I < 1000; ++I) {
    uint32_t Seq[] = {I, I * 7, I * 13};
    EXPECT_EQ(T.intern(Seq), Handles[I]);
  }
}

TEST(InternTableTest, SingleElementSequences) {
  InternTable T;
  uint32_t X = 5;
  auto H = T.intern(ArrayRef<uint32_t>(X));
  EXPECT_EQ(T.get(H).size(), 1u);
  EXPECT_EQ(T.get(H)[0], 5u);
}

} // namespace
