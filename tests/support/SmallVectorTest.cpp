//===- SmallVectorTest.cpp - SmallVector unit tests -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/SmallVector.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>

using o2::SmallVector;
using o2::SmallVectorImpl;

namespace {

TEST(SmallVectorTest, EmptyOnConstruction) {
  SmallVector<int, 4> V;
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.size(), 0u);
  EXPECT_EQ(V.begin(), V.end());
}

TEST(SmallVectorTest, PushBackWithinInlineCapacity) {
  SmallVector<int, 4> V;
  for (int I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(V[static_cast<size_t>(I)], I);
}

TEST(SmallVectorTest, GrowthBeyondInlineCapacity) {
  SmallVector<int, 2> V;
  for (int I = 0; I < 100; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[static_cast<size_t>(I)], I);
}

TEST(SmallVectorTest, InitializerList) {
  SmallVector<int, 4> V = {1, 2, 3, 4, 5};
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(V.front(), 1);
  EXPECT_EQ(V.back(), 5);
}

TEST(SmallVectorTest, NonTrivialElementType) {
  SmallVector<std::string, 2> V;
  V.push_back("alpha");
  V.push_back("beta");
  V.push_back("gamma"); // forces a grow with moves
  EXPECT_EQ(V[0], "alpha");
  EXPECT_EQ(V[1], "beta");
  EXPECT_EQ(V[2], "gamma");
}

TEST(SmallVectorTest, MoveOnlyElementType) {
  SmallVector<std::unique_ptr<int>, 2> V;
  for (int I = 0; I < 10; ++I)
    V.push_back(std::make_unique<int>(I));
  EXPECT_EQ(*V[9], 9);
  SmallVector<std::unique_ptr<int>, 2> W = std::move(V);
  EXPECT_EQ(W.size(), 10u);
  EXPECT_EQ(*W[3], 3);
}

TEST(SmallVectorTest, PopBackDestroys) {
  auto Counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> C;
    explicit Probe(std::shared_ptr<int> C) : C(std::move(C)) {}
    Probe(const Probe &) = default;
    Probe(Probe &&) = default;
    ~Probe() {
      if (C)
        ++*C;
    }
  };
  {
    SmallVector<Probe, 2> V;
    V.emplace_back(Counter);
    V.pop_back();
    EXPECT_EQ(*Counter, 1);
  }
  EXPECT_EQ(*Counter, 1);
}

TEST(SmallVectorTest, ClearKeepsCapacity) {
  SmallVector<int, 2> V;
  for (int I = 0; I < 50; ++I)
    V.push_back(I);
  size_t Cap = V.capacity();
  V.clear();
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.capacity(), Cap);
}

TEST(SmallVectorTest, ResizeGrowAndShrink) {
  SmallVector<int, 4> V;
  V.resize(6, 7);
  EXPECT_EQ(V.size(), 6u);
  EXPECT_EQ(V[5], 7);
  V.resize(2);
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V[1], 7);
}

TEST(SmallVectorTest, AppendRange) {
  SmallVector<int, 2> V = {1, 2};
  int More[] = {3, 4, 5};
  V.append(std::begin(More), std::end(More));
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(std::accumulate(V.begin(), V.end(), 0), 15);
}

TEST(SmallVectorTest, EraseMiddle) {
  SmallVector<int, 8> V = {1, 2, 3, 4, 5};
  V.erase(V.begin() + 2);
  SmallVector<int, 8> Expected = {1, 2, 4, 5};
  EXPECT_TRUE(V == Expected);
}

TEST(SmallVectorTest, CopyAssignment) {
  SmallVector<int, 2> A = {1, 2, 3};
  SmallVector<int, 2> B;
  B = A;
  EXPECT_TRUE(A == B);
  B.push_back(4);
  EXPECT_EQ(A.size(), 3u);
}

TEST(SmallVectorTest, MoveAssignmentStealsHeap) {
  SmallVector<int, 2> A;
  for (int I = 0; I < 64; ++I)
    A.push_back(I);
  const int *Data = A.data();
  SmallVector<int, 2> B;
  B = std::move(A);
  EXPECT_EQ(B.data(), Data); // heap buffer stolen, no copy
  EXPECT_EQ(B.size(), 64u);
  EXPECT_TRUE(A.empty());
}

TEST(SmallVectorTest, UsableThroughImplBase) {
  SmallVector<int, 4> V = {1, 2};
  SmallVectorImpl<int> &Impl = V;
  Impl.push_back(3);
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(Impl.back(), 3);
}

TEST(SmallVectorTest, IterationOrder) {
  SmallVector<int, 4> V = {10, 20, 30};
  int Sum = 0;
  for (int X : V)
    Sum = Sum * 100 + X;
  EXPECT_EQ(Sum, 102030);
}

} // namespace
