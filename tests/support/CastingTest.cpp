//===- CastingTest.cpp - isa/cast/dyn_cast unit tests ----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/Casting.h"

#include <gtest/gtest.h>

namespace {

struct Shape {
  enum Kind { K_Circle, K_Square, K_RoundedSquare };
  explicit Shape(Kind K) : TheKind(K) {}
  Kind getKind() const { return TheKind; }

private:
  Kind TheKind;
};

struct Circle : Shape {
  Circle() : Shape(K_Circle) {}
  static bool classof(const Shape *S) { return S->getKind() == K_Circle; }
};

struct Square : Shape {
  explicit Square(Kind K = K_Square) : Shape(K) {}
  static bool classof(const Shape *S) {
    return S->getKind() == K_Square || S->getKind() == K_RoundedSquare;
  }
};

struct RoundedSquare : Square {
  RoundedSquare() : Square(K_RoundedSquare) {}
  static bool classof(const Shape *S) {
    return S->getKind() == K_RoundedSquare;
  }
};

TEST(CastingTest, IsaOnExactType) {
  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(o2::isa<Circle>(S));
  EXPECT_FALSE(o2::isa<Square>(S));
}

TEST(CastingTest, IsaOnIntermediateType) {
  RoundedSquare RS;
  Shape *S = &RS;
  EXPECT_TRUE(o2::isa<Square>(S));
  EXPECT_TRUE(o2::isa<RoundedSquare>(S));
  EXPECT_FALSE(o2::isa<Circle>(S));
}

TEST(CastingTest, IsaReference) {
  Square Sq;
  const Shape &S = Sq;
  EXPECT_TRUE(o2::isa<Square>(S));
  EXPECT_FALSE(o2::isa<RoundedSquare>(S));
}

TEST(CastingTest, VariadicIsa) {
  Circle C;
  Shape *S = &C;
  bool Result = o2::isa<Square, Circle>(S);
  EXPECT_TRUE(Result);
  Result = o2::isa<Square, RoundedSquare>(S);
  EXPECT_FALSE(Result);
}

TEST(CastingTest, CastReturnsSamePointer) {
  RoundedSquare RS;
  Shape *S = &RS;
  EXPECT_EQ(o2::cast<Square>(S), &RS);
  EXPECT_EQ(o2::cast<RoundedSquare>(S), &RS);
}

TEST(CastingTest, CastConstPointer) {
  Circle C;
  const Shape *S = &C;
  const Circle *CC = o2::cast<Circle>(S);
  EXPECT_EQ(CC, &C);
}

TEST(CastingTest, DynCastSuccessAndFailure) {
  Square Sq;
  Shape *S = &Sq;
  EXPECT_EQ(o2::dyn_cast<Square>(S), &Sq);
  EXPECT_EQ(o2::dyn_cast<Circle>(S), nullptr);
  EXPECT_EQ(o2::dyn_cast<RoundedSquare>(S), nullptr);
}

TEST(CastingTest, UpcastIsAlwaysTrue) {
  RoundedSquare RS;
  // isa<Shape> on a Shape-derived pointer needs no classof.
  EXPECT_TRUE(o2::isa<Shape>(static_cast<Square *>(&RS)));
}

TEST(CastingTest, PresentVariants) {
  Shape *Null = nullptr;
  EXPECT_FALSE(o2::isa_and_present<Circle>(Null));
  EXPECT_EQ(o2::dyn_cast_if_present<Circle>(Null), nullptr);

  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(o2::isa_and_present<Circle>(S));
  EXPECT_EQ(o2::dyn_cast_if_present<Circle>(S), &C);
}

} // namespace
