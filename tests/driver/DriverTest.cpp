//===- DriverTest.cpp - Batch-analysis driver tests ---------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Covers the batch driver: job status classification, deterministic
// reports across worker counts and runs, per-job deadline degradation,
// per-phase cancellation, baseline diffing with reorder-stable
// fingerprints, and the shared exit-code convention.
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/Driver.h"

#include "o2/Driver/ResultCache.h"
#include "o2/IR/Parser.h"
#include "o2/Support/FaultInjector.h"
#include "o2/Support/OutputStream.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

// Address sanitizer reserves terabytes of shadow address space, which is
// incompatible with the RLIMIT_AS cap --mem-limit-mb installs, and it
// intercepts SIGSEGV/abort with its own reporting exit path. The
// affected cases are skipped or routed through sanitizer-proof actions
// (SIGKILL) instead.
#if defined(__SANITIZE_ADDRESS__)
#define O2_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define O2_UNDER_ASAN 1
#endif
#endif
#ifndef O2_UNDER_ASAN
#define O2_UNDER_ASAN 0
#endif

using namespace o2;

namespace {

const char *RacyProgram = R"(
  class T {
    method run() { var x: int; @g = x; }
  }
  global g: int;
  func main() {
    var t: T;
    var x: int;
    t = new T;
    spawn t.run();
    x = @g;
  }
)";

const char *CleanProgram = R"(
  class T { method run() { var x: int; } }
  func main() {
    var t: T;
    t = new T;
    spawn t.run();
  }
)";

JobSpec sourceSpec(std::string Name, std::string Source) {
  JobSpec S;
  S.Name = std::move(Name);
  S.Source = std::move(Source);
  return S;
}

std::string renderJSONL(const BatchResult &R) {
  std::string Buf;
  StringOutputStream OS(Buf);
  printJSONL(R, OS);
  return Buf;
}

TEST(DriverTest, StatusClassification) {
  std::vector<JobSpec> Specs = {
      sourceSpec("clean", CleanProgram),
      sourceSpec("racy", RacyProgram),
      sourceSpec("broken", "class {"),
      sourceSpec("headless", "func helper() { }"), // no main
  };
  BatchResult R = runBatch(Specs);
  ASSERT_EQ(R.Jobs.size(), 4u);
  // Sorted by name.
  EXPECT_EQ(R.Jobs[0].Name, "broken");
  EXPECT_EQ(R.Jobs[1].Name, "clean");
  EXPECT_EQ(R.Jobs[2].Name, "headless");
  EXPECT_EQ(R.Jobs[3].Name, "racy");

  EXPECT_EQ(R.Jobs[0].Status, JobStatus::ParseError);
  EXPECT_NE(R.Jobs[0].Error.find(":"), std::string::npos)
      << "parse diagnostics carry a position: " << R.Jobs[0].Error;
  EXPECT_EQ(R.Jobs[1].Status, JobStatus::Clean);
  EXPECT_TRUE(R.Jobs[1].Races.empty());
  EXPECT_EQ(R.Jobs[2].Status, JobStatus::VerifyError);
  EXPECT_NE(R.Jobs[2].Error.find("main"), std::string::npos)
      << R.Jobs[2].Error;
  EXPECT_EQ(R.Jobs[3].Status, JobStatus::Races);
  EXPECT_EQ(R.Jobs[3].Races.size(), 1u);
  EXPECT_EQ(R.Jobs[3].Races[0].Location, "@g");

  EXPECT_EQ(R.Summary.get("jobs.total"), 4u);
  EXPECT_EQ(R.Summary.get("jobs.clean"), 1u);
  EXPECT_EQ(R.Summary.get("jobs.races"), 1u);
  EXPECT_EQ(R.Summary.get("jobs.parse-error"), 1u);
  EXPECT_EQ(R.Summary.get("jobs.verify-error"), 1u);
  EXPECT_EQ(R.Summary.get("races.total"), 1u);
  EXPECT_EQ(R.exitCode(), ExitError);
}

TEST(DriverTest, DeterministicAcrossWorkerCountsAndRuns) {
  std::vector<JobSpec> Specs;
  for (int I = 0; I < 6; ++I)
    Specs.push_back(sourceSpec("racy" + std::to_string(I), RacyProgram));
  Specs.push_back(sourceSpec("clean", CleanProgram));

  BatchOptions Serial;
  Serial.Jobs = 1;
  BatchOptions Wide;
  Wide.Jobs = 4;

  std::string Golden = renderJSONL(runBatch(Specs, Serial));
  EXPECT_EQ(renderJSONL(runBatch(Specs, Wide)), Golden);
  EXPECT_EQ(renderJSONL(runBatch(Specs, Wide)), Golden);
  EXPECT_EQ(renderJSONL(runBatch(Specs, Serial)), Golden);

  // One JSONL record per job plus the aggregate.
  size_t Lines = 0;
  for (char C : Golden)
    Lines += C == '\n';
  EXPECT_EQ(Lines, Specs.size() + 1);
}

TEST(DriverTest, DeadlineTimeoutIsIsolatedPerJob) {
  // "telegram" is the heaviest generated workload (context amplifier with
  // fan-out 32): far more than a millisecond of pointer analysis, so the
  // deadline always fires in the first phase — while the tiny racy
  // module on the same pool still completes normally.
  const WorkloadProfile *Heavy = findProfile("telegram");
  ASSERT_NE(Heavy, nullptr);
  JobSpec HeavySpec;
  HeavySpec.Name = "heavy";
  HeavySpec.Profile = Heavy;
  std::vector<JobSpec> Specs = {HeavySpec, sourceSpec("tiny", RacyProgram)};

  BatchOptions Opts;
  Opts.Jobs = 2;
  Opts.DeadlineMs = 1;
  BatchResult R = runBatch(Specs, Opts);
  ASSERT_EQ(R.Jobs.size(), 2u);

  const JobResult &HeavyJob = R.Jobs[0];
  EXPECT_EQ(HeavyJob.Name, "heavy");
  EXPECT_EQ(HeavyJob.Status, JobStatus::Timeout);
  EXPECT_EQ(HeavyJob.Phase, "pta");
  // Partial statistics survive: the solver got far enough to allocate.
  EXPECT_GT(HeavyJob.Stats.get("pta.pointer-nodes"), 0u);
  EXPECT_EQ(HeavyJob.Stats.get("pta.cancelled"), 1u);

  const JobResult &TinyJob = R.Jobs[1];
  EXPECT_EQ(TinyJob.Status, JobStatus::Races);
  EXPECT_EQ(TinyJob.Races.size(), 1u);

  EXPECT_EQ(R.Summary.get("jobs.timeout"), 1u);
  EXPECT_EQ(R.exitCode(), ExitError);
}

TEST(DriverTest, PreCancelledTokenStopsEveryPhase) {
  std::string Err;
  auto M = parseModule(RacyProgram, Err);
  ASSERT_TRUE(M) << Err;

  CancellationToken Cancelled;
  Cancelled.cancel();

  // PTA stops and flags its (partial) result.
  PTAOptions PTAOpts;
  PTAOpts.Cancel = &Cancelled;
  auto PTA = runPointerAnalysis(*M, PTAOpts);
  EXPECT_TRUE(PTA->cancelled());

  // The later phases each poll the token themselves.
  auto FullPTA = runPointerAnalysis(*M, PTAOptions());
  ASSERT_FALSE(FullPTA->cancelled());
  EXPECT_TRUE(runSharingAnalysis(*FullPTA, &Cancelled).cancelled());

  SHBOptions SHBOpts;
  SHBOpts.Cancel = &Cancelled;
  EXPECT_TRUE(buildSHBGraph(*FullPTA, SHBOpts).cancelled());

  RaceDetectorOptions DetOpts;
  DetOpts.Cancel = &Cancelled;
  RaceReport Report = detectRaces(*FullPTA, DetOpts);
  EXPECT_TRUE(Report.cancelled());
  EXPECT_EQ(Report.stats().get("race.cancelled"), 1u);

  // Through the facade: the pipeline dies in the first phase and the
  // phase is recorded.
  O2Config Cfg;
  Cfg.Cancel = &Cancelled;
  O2Analysis A = analyzeModule(*M, Cfg);
  EXPECT_TRUE(A.cancelled());
  EXPECT_EQ(A.CancelledIn, O2Phase::PTA);
  EXPECT_STREQ(phaseName(A.CancelledIn), "pta");
}

// Version 1: two independent races, on @a and on @b.
const char *BaselineV1 = R"(
  class T {
    method run() {
      var x: int;
      @a = x;
      @b = x;
    }
  }
  global a: int;
  global b: int;
  func main() {
    var t: T;
    var x: int;
    t = new T;
    spawn t.run();
    x = @a;
    x = @b;
  }
)";

// Version 2: unrelated code added and reordered (globals shuffled, a
// padding class and new locals inserted, statements moved), the @b race
// removed, a new race on @c introduced. The @a race is textually the
// same accesses — its fingerprint must survive all the reordering.
const char *BaselineV2 = R"(
  global c: int;
  global b: int;
  global a: int;
  class Pad { field p: int; }
  class T {
    method run() {
      var x: int;
      var y: int;
      @c = x;
      @a = x;
    }
  }
  func main() {
    var p: Pad;
    var t: T;
    var x: int;
    p = new Pad;
    x = p.p;
    t = new T;
    spawn t.run();
    x = @c;
    x = @a;
  }
)";

TEST(DriverTest, BaselineDiffWithReorderStableFingerprints) {
  BatchResult Before = runBatch({sourceSpec("m", BaselineV1)});
  ASSERT_EQ(Before.Jobs.size(), 1u);
  ASSERT_EQ(Before.Jobs[0].Races.size(), 2u);
  std::string FPA, FPB;
  for (const RaceRecord &Rc : Before.Jobs[0].Races) {
    if (Rc.Location == "@a")
      FPA = Rc.Fingerprint;
    if (Rc.Location == "@b")
      FPB = Rc.Fingerprint;
  }
  ASSERT_FALSE(FPA.empty());
  ASSERT_FALSE(FPB.empty());
  EXPECT_NE(FPA, FPB);

  Baseline Base = loadBaseline(renderJSONL(Before));
  ASSERT_EQ(Base.count("m"), 1u);
  EXPECT_EQ(Base["m"].size(), 2u);
  EXPECT_TRUE(Base["m"].count(FPA));
  EXPECT_TRUE(Base["m"].count(FPB));

  BatchResult After = runBatch({sourceSpec("m", BaselineV2)});
  ASSERT_EQ(After.Jobs.size(), 1u);
  ASSERT_EQ(After.Jobs[0].Races.size(), 2u);
  applyBaseline(After, Base);

  for (const RaceRecord &Rc : After.Jobs[0].Races) {
    if (Rc.Location == "@a") {
      // Same accesses despite all the unrelated churn: unchanged.
      EXPECT_EQ(Rc.Fingerprint, FPA);
      EXPECT_EQ(Rc.DiffStatus, "unchanged");
    } else {
      EXPECT_EQ(Rc.Location, "@c");
      EXPECT_EQ(Rc.DiffStatus, "new");
    }
  }
  ASSERT_EQ(After.Jobs[0].FixedRaces.size(), 1u);
  EXPECT_EQ(After.Jobs[0].FixedRaces[0], FPB);
  EXPECT_EQ(After.Summary.get("diff.new"), 1u);
  EXPECT_EQ(After.Summary.get("diff.unchanged"), 1u);
  EXPECT_EQ(After.Summary.get("diff.fixed"), 1u);

  // The diff annotations land in the JSONL report.
  std::string Report = renderJSONL(After);
  EXPECT_NE(Report.find("\"diff\":\"new\""), std::string::npos);
  EXPECT_NE(Report.find("\"diff\":\"unchanged\""), std::string::npos);
  EXPECT_NE(Report.find("\"fixed\":[\"" + FPB + "\"]"), std::string::npos);
}

TEST(DriverTest, ExitCodeConvention) {
  EXPECT_EQ(exitCodeFor(JobStatus::Clean), ExitClean);
  EXPECT_EQ(exitCodeFor(JobStatus::Races), ExitRacesFound);
  EXPECT_EQ(exitCodeFor(JobStatus::Timeout), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::ParseError), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::VerifyError), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::InternalError), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::Crashed), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::OOM), ExitError);

  // Aggregate: the worst job wins.
  EXPECT_EQ(runBatch({sourceSpec("c", CleanProgram)}).exitCode(), ExitClean);
  EXPECT_EQ(runBatch({sourceSpec("c", CleanProgram),
                      sourceSpec("r", RacyProgram)})
                .exitCode(),
            ExitRacesFound);
  EXPECT_EQ(runBatch({sourceSpec("c", CleanProgram),
                      sourceSpec("r", RacyProgram),
                      sourceSpec("x", "class {")})
                .exitCode(),
            ExitError);
}

std::string freshCacheDir(const char *Name) {
  std::string Dir = testing::TempDir() + "o2-drivertest-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

TEST(DriverTest, AnalysesSelectSectionsAndStayDeterministic) {
  std::vector<JobSpec> Specs = {sourceSpec("racy", RacyProgram),
                                sourceSpec("clean", CleanProgram)};

  BatchOptions Opts;
  Opts.Analyses = {O2Phase::Detect, O2Phase::Deadlock, O2Phase::OverSync,
                   O2Phase::RacerD};
  Opts.Jobs = 1;
  BatchResult Narrow = runBatch(Specs, Opts);
  std::string Golden = renderJSONL(Narrow);

  // Byte-identical across worker counts, aux sections included.
  Opts.Jobs = 8;
  EXPECT_EQ(renderJSONL(runBatch(Specs, Opts)), Golden);
  EXPECT_NE(Golden.find("\"analyses\":\"race,deadlock,oversync,racerd\""),
            std::string::npos);
  EXPECT_NE(Golden.find("\"deadlocks\":"), std::string::npos);
  EXPECT_NE(Golden.find("\"oversync\":"), std::string::npos);
  EXPECT_NE(Golden.find("\"racerd\":"), std::string::npos);

  // The aux analyses produce their counters but never change the race
  // status or the exit code.
  ASSERT_EQ(Narrow.Jobs.size(), 2u);
  EXPECT_EQ(Narrow.Jobs[1].Status, JobStatus::Races);
  EXPECT_GT(Narrow.Jobs[1].Stats.get("racerd.warnings"), 0u);
  EXPECT_EQ(Narrow.exitCode(), ExitRacesFound);

  // The default request carries no aux sections.
  std::string Default = renderJSONL(runBatch(Specs));
  EXPECT_EQ(Default.find("\"deadlocks\":"), std::string::npos);
  EXPECT_EQ(Default.find("\"racerd\":"), std::string::npos);
}

TEST(DriverTest, WarmCacheReplaysIdenticalReports) {
  std::vector<JobSpec> Specs = {sourceSpec("racy", RacyProgram),
                                sourceSpec("clean", CleanProgram)};
  BatchOptions Opts;
  Opts.Analyses = {O2Phase::OSA, O2Phase::Detect, O2Phase::Deadlock,
                   O2Phase::OverSync};
  Opts.CacheDir = freshCacheDir("warm");

  BatchResult Cold = runBatch(Specs, Opts);
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_EQ(Cold.CacheMisses, 2u);

  BatchResult Warm = runBatch(Specs, Opts);
  EXPECT_EQ(Warm.CacheHits, 2u);
  EXPECT_EQ(Warm.CacheMisses, 0u);

  // The warm run replays byte-identical records — cache telemetry is
  // deliberately kept out of the JSONL.
  EXPECT_EQ(renderJSONL(Warm), renderJSONL(Cold));
  std::string Report = renderJSONL(Warm);
  EXPECT_EQ(Report.find("cache"), std::string::npos);

  // A different config fingerprint misses: same modules, new entries.
  BatchOptions Worklist = Opts;
  Worklist.Config.PTA.Solver = SolverKind::Worklist;
  BatchResult Cross = runBatch(Specs, Worklist);
  EXPECT_EQ(Cross.CacheHits, 0u);
  EXPECT_EQ(Cross.CacheMisses, 2u);

  // Renaming a job does not invalidate its entry (the key is content).
  std::vector<JobSpec> Renamed = {sourceSpec("renamed", RacyProgram)};
  BatchResult Moved = runBatch(Renamed, Opts);
  EXPECT_EQ(Moved.CacheHits, 1u);
  ASSERT_EQ(Moved.Jobs.size(), 1u);
  EXPECT_EQ(Moved.Jobs[0].Name, "renamed");
  EXPECT_EQ(Moved.Jobs[0].Races.size(), 1u);
}

TEST(DriverTest, CorruptCacheEntriesDegradeToMisses) {
  std::vector<JobSpec> Specs = {sourceSpec("racy", RacyProgram)};
  BatchOptions Opts;
  Opts.Analyses = {O2Phase::Detect, O2Phase::Deadlock};
  Opts.CacheDir = freshCacheDir("corrupt");

  std::string Golden = renderJSONL(runBatch(Specs, Opts));

  // Truncate every entry: checksum fails, jobs re-run, report unchanged.
  for (const auto &E : std::filesystem::directory_iterator(Opts.CacheDir)) {
    std::ofstream Out(E.path(), std::ios::trunc | std::ios::binary);
    Out << "o2cache";
  }
  BatchResult Truncated = runBatch(Specs, Opts);
  EXPECT_EQ(Truncated.CacheHits, 0u);
  EXPECT_EQ(Truncated.CacheMisses, 1u);
  EXPECT_EQ(renderJSONL(Truncated), Golden);

  // Version skew: a valid-looking header from the future is a miss too.
  for (const auto &E : std::filesystem::directory_iterator(Opts.CacheDir)) {
    std::ofstream Out(E.path(), std::ios::trunc | std::ios::binary);
    Out << "o2cache 9999 0000000000000000\n";
  }
  BatchResult Skewed = runBatch(Specs, Opts);
  EXPECT_EQ(Skewed.CacheHits, 0u);
  EXPECT_EQ(renderJSONL(Skewed), Golden);

  // The re-run overwrote the damaged entries: warm again.
  BatchResult Healed = runBatch(Specs, Opts);
  EXPECT_EQ(Healed.CacheHits, 1u);
  EXPECT_EQ(renderJSONL(Healed), Golden);
}

TEST(DriverTest, TotalMsIncludesAuxAnalyses) {
  // The regression the manager fixed: totalMs used to sum only the four
  // core phases, silently dropping aux-analysis time.
  JobResult R;
  R.PTAMs = 1;
  R.OSAMs = 2;
  R.SHBMs = 4;
  R.HBIndexMs = 8;
  R.DetectMs = 16;
  R.DeadlockMs = 32;
  R.OverSyncMs = 64;
  R.RacerDMs = 128;
  R.EscapeMs = 256;
  EXPECT_DOUBLE_EQ(R.totalMs(), 511.0);

  BatchOptions Opts;
  Opts.Analyses = AnalysisSet::all();
  JobResult Live = runOneJob(sourceSpec("racy", RacyProgram), Opts);
  EXPECT_EQ(Live.Status, JobStatus::Races);
  EXPECT_DOUBLE_EQ(Live.totalMs(),
                   Live.PTAMs + Live.OSAMs + Live.SHBMs + Live.HBIndexMs +
                       Live.DetectMs + Live.DeadlockMs + Live.OverSyncMs +
                       Live.RacerDMs + Live.EscapeMs);
  EXPECT_GT(Live.totalMs(), 0.0);
}

TEST(DriverTest, DeadlineTimeoutNamesAuxPhase) {
  // RacerD has no dependencies, so with a RacerD-only request the first
  // pass the deadline can fire in is RacerD itself — the timeout record
  // must name the aux analysis, not "pta". The telegram workload keeps
  // RacerD busy for ~1s, far past the 1ms budget.
  const WorkloadProfile *Heavy = findProfile("telegram");
  ASSERT_NE(Heavy, nullptr);
  JobSpec Spec;
  Spec.Name = "heavy";
  Spec.Profile = Heavy;

  BatchOptions Opts;
  Opts.Analyses = {O2Phase::RacerD};
  Opts.DeadlineMs = 1;
  Opts.CacheDir = freshCacheDir("timeout");
  BatchResult R = runBatch({Spec}, Opts);
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Timeout);
  EXPECT_EQ(R.Jobs[0].Phase, "racerd");

  // Timeouts are never cached: the re-run misses again.
  BatchResult Again = runBatch({Spec}, Opts);
  EXPECT_EQ(Again.CacheHits, 0u);
  EXPECT_EQ(Again.Jobs[0].Status, JobStatus::Timeout);
}

//===----------------------------------------------------------------------===//
// Crash containment: process isolation, fault injection, retries, and
// sound degraded-mode fallback.
//===----------------------------------------------------------------------===//

/// Every containment test arms faults on the process-wide injector, so
/// the fixture guarantees a clean slate on both sides.
class ContainmentTest : public testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().disarm(); }
  void TearDown() override { FaultInjector::instance().disarm(); }

  void armOrDie(const std::string &Spec) {
    std::string Err;
    ASSERT_TRUE(FaultInjector::instance().armFromSpec(Spec, Err)) << Err;
  }
};

TEST_F(ContainmentTest, CrashedJobIsContainedUnderProcessIsolation) {
  // SIGKILL is uncatchable and sanitizer-proof: the worker dies mid-pass
  // with no chance to report, exactly like a real SIGSEGV in release.
  armOrDie("pass.race@boom:1:kill");

  BatchOptions Opts;
  Opts.Isolate = IsolationMode::Process;
  Opts.Jobs = 2;
  BatchResult R = runBatch(
      {sourceSpec("boom", RacyProgram), sourceSpec("ok", RacyProgram)}, Opts);
  ASSERT_EQ(R.Jobs.size(), 2u);

  const JobResult &Boom = R.Jobs[0];
  EXPECT_EQ(Boom.Name, "boom");
  EXPECT_EQ(Boom.Status, JobStatus::Crashed);
  EXPECT_EQ(Boom.Signal, "SIGKILL");
  EXPECT_EQ(Boom.Phase, "race") << "crash attributed to the dying pass";
  EXPECT_NE(Boom.Error.find("SIGKILL"), std::string::npos) << Boom.Error;

  // The sibling on the same pool is untouched.
  const JobResult &Ok = R.Jobs[1];
  EXPECT_EQ(Ok.Status, JobStatus::Races);
  EXPECT_EQ(Ok.Races.size(), 1u);

  EXPECT_EQ(R.Summary.get("jobs.crashed"), 1u);
  EXPECT_EQ(R.exitCode(), ExitError);

  std::string Report = renderJSONL(R);
  EXPECT_NE(Report.find("\"status\":\"crashed\""), std::string::npos);
  EXPECT_NE(Report.find("\"signal\":\"SIGKILL\""), std::string::npos);
  EXPECT_NE(Report.find("\"phase\":\"race\""), std::string::npos);
}

TEST_F(ContainmentTest, SignalAndSilentExitVariantsAreClassified) {
  BatchOptions Opts;
  Opts.Isolate = IsolationMode::Process;

  // A worker that vanishes without a result (exit code 13, no r: line).
  armOrDie("pass.race@gone:1:exit");
  JobResult Gone = runJobContained(sourceSpec("gone", RacyProgram), Opts);
  EXPECT_EQ(Gone.Status, JobStatus::Crashed);
  EXPECT_NE(Gone.Error.find("exited with code 13"), std::string::npos)
      << Gone.Error;
  EXPECT_TRUE(Gone.Signal.empty());

#if !O2_UNDER_ASAN
  // Real signals (ASan intercepts these with its own exit path).
  FaultInjector::instance().disarm();
  armOrDie("pass.race@sv:1:segv");
  JobResult Segv = runJobContained(sourceSpec("sv", RacyProgram), Opts);
  EXPECT_EQ(Segv.Status, JobStatus::Crashed);
  EXPECT_EQ(Segv.Signal, "SIGSEGV");
  EXPECT_EQ(Segv.Phase, "race");

  FaultInjector::instance().disarm();
  armOrDie("pass.race@ab:1:abort");
  JobResult Abort = runJobContained(sourceSpec("ab", RacyProgram), Opts);
  EXPECT_EQ(Abort.Status, JobStatus::Crashed);
  EXPECT_EQ(Abort.Signal, "SIGABRT");
#endif
}

TEST_F(ContainmentTest, ProcessIsolationMatchesInProcessReport) {
  // No faults: forked workers must reproduce the in-process report
  // byte for byte, across every status the wire format carries.
  std::vector<JobSpec> Specs = {sourceSpec("racy", RacyProgram),
                                sourceSpec("clean", CleanProgram),
                                sourceSpec("broken", "class {"),
                                sourceSpec("headless", "func helper() { }")};
  std::string Golden = renderJSONL(runBatch(Specs));

  BatchOptions Opts;
  Opts.Isolate = IsolationMode::Process;
  Opts.Jobs = 1;
  EXPECT_EQ(renderJSONL(runBatch(Specs, Opts)), Golden);
  Opts.Jobs = 4;
  EXPECT_EQ(renderJSONL(runBatch(Specs, Opts)), Golden);
}

TEST_F(ContainmentTest, CrashReportsAreDeterministicAcrossWorkerCounts) {
  // The @module scope pins the fault to one job, so the report is
  // byte-identical no matter how jobs interleave over workers.
  armOrDie("pass.race@boom:1:kill");

  std::vector<JobSpec> Specs = {
      sourceSpec("boom", RacyProgram), sourceSpec("a", RacyProgram),
      sourceSpec("b", CleanProgram), sourceSpec("c", RacyProgram)};

  BatchOptions Opts;
  Opts.Isolate = IsolationMode::Process;
  Opts.Jobs = 1;
  std::string Golden = renderJSONL(runBatch(Specs, Opts));
  EXPECT_NE(Golden.find("\"status\":\"crashed\""), std::string::npos);

  Opts.Jobs = 4;
  EXPECT_EQ(renderJSONL(runBatch(Specs, Opts)), Golden);
  EXPECT_EQ(renderJSONL(runBatch(Specs, Opts)), Golden);
}

TEST_F(ContainmentTest, HardKillContainsAStuckWorker) {
  // `hang` ignores cooperative deadlines — only the parent's SIGTERM /
  // SIGKILL escalation can reclaim the worker.
  armOrDie("pass.pta@stuck:1:hang");

  BatchOptions Opts;
  Opts.Isolate = IsolationMode::Process;
  Opts.HardKillMs = 300;
  BatchResult R = runBatch({sourceSpec("stuck", RacyProgram)}, Opts);
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Timeout);
  EXPECT_EQ(R.Jobs[0].Phase, "pta");
  EXPECT_NE(R.Jobs[0].Error.find("hard deadline"), std::string::npos)
      << R.Jobs[0].Error;
  EXPECT_EQ(R.Summary.get("jobs.timeout"), 1u);
}

TEST_F(ContainmentTest, RssCapOomYieldsOomRecordWithPartialStats) {
#if O2_UNDER_ASAN
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#endif
  // `hog` allocates until allocation genuinely fails, so with the cap in
  // place the worker takes the real bad_alloc path and still manages to
  // report over the pipe (the hog releases its hoard first).
  armOrDie("pass.shb@cap:1:hog");

  BatchOptions Opts;
  Opts.Isolate = IsolationMode::Process;
  Opts.MemLimitMB = 512;
  Opts.Jobs = 2;
  BatchResult R = runBatch(
      {sourceSpec("cap", RacyProgram), sourceSpec("ok", RacyProgram)}, Opts);
  ASSERT_EQ(R.Jobs.size(), 2u);

  const JobResult &Cap = R.Jobs[0];
  EXPECT_EQ(Cap.Status, JobStatus::OOM);
  EXPECT_EQ(Cap.Error, "out of memory");
  EXPECT_EQ(Cap.Phase, "shb");
  // The phases that finished before the blow-up kept their statistics.
  EXPECT_GT(Cap.Stats.get("pta.pointer-nodes"), 0u);

  EXPECT_EQ(R.Jobs[1].Status, JobStatus::Races);
  EXPECT_EQ(R.Summary.get("jobs.oom"), 1u);
  EXPECT_EQ(R.exitCode(), ExitError);
}

TEST_F(ContainmentTest, RetryRecoversFromTransientFaults) {
  // Nth=1 semantics make the fault transient: it fires on the first
  // attempt only, and the bounded retry turns the job around. In-process
  // the injector's counters are global, so the retry sees them advanced.
  armOrDie("pass.race@flaky:1:throw");

  BatchOptions Opts;
  Opts.Retries = 2;
  Opts.RetryBackoffMs = 1;
  BatchResult R = runBatch({sourceSpec("flaky", RacyProgram)}, Opts);
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Races);
  EXPECT_EQ(R.Jobs[0].Retries, 1u);
  EXPECT_EQ(R.Summary.get("jobs.retried"), 1u);
  EXPECT_NE(renderJSONL(R).find("\"retries\":1"), std::string::npos);

  // A deterministic failure just fails Retries more times and keeps the
  // original record (with the attempt count).
  FaultInjector::instance().disarm();
  armOrDie("pass.race@stubborn:*:throw");
  BatchResult S = runBatch({sourceSpec("stubborn", RacyProgram)}, Opts);
  EXPECT_EQ(S.Jobs[0].Status, JobStatus::InternalError);
  EXPECT_EQ(S.Jobs[0].Retries, 2u);
  EXPECT_NE(S.Jobs[0].Error.find("injected fault"), std::string::npos);
}

TEST_F(ContainmentTest, DegradedFallbackCompletesSoundly) {
  // First attempt OOMs in PTA; --degrade re-runs under the cheaper
  // (context-insensitive, still sound) configuration, which must still
  // report the race — degradation trades precision, never recall.
  armOrDie("pass.pta@deg:1:oom");

  BatchOptions Opts;
  Opts.Degrade = true;
  BatchResult R = runBatch({sourceSpec("deg", RacyProgram)}, Opts);
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Races);
  EXPECT_EQ(R.Jobs[0].Races.size(), 1u);
  EXPECT_TRUE(R.Jobs[0].Degraded);
  EXPECT_NE(R.Jobs[0].DegradedConfigFP, 0u);
  EXPECT_EQ(R.Summary.get("jobs.degraded"), 1u);
  EXPECT_EQ(R.exitCode(), ExitRacesFound);

  std::string Report = renderJSONL(R);
  EXPECT_NE(Report.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(Report.find("\"degraded-config\":\""), std::string::npos);
}

TEST_F(ContainmentTest, BadAllocIsContainedEvenInProcess) {
  // Satellite robustness: without isolation, bad_alloc still becomes a
  // structured `oom` record instead of escaping the pool thread.
  armOrDie("alloc@oomjob:1:oom");
  BatchResult R = runBatch(
      {sourceSpec("ok", RacyProgram), sourceSpec("oomjob", RacyProgram)});
  ASSERT_EQ(R.Jobs.size(), 2u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Races);
  EXPECT_EQ(R.Jobs[1].Name, "oomjob");
  EXPECT_EQ(R.Jobs[1].Status, JobStatus::OOM);
  EXPECT_EQ(R.Jobs[1].Error, "out of memory");
  // The alloc point sits between verification and the first pass.
  EXPECT_EQ(R.Jobs[1].Phase, "verify");
  EXPECT_EQ(R.exitCode(), ExitError);

  // Mid-pipeline OOM keeps the partial statistics of finished phases.
  FaultInjector::instance().disarm();
  armOrDie("pass.osa@partial:1:oom");
  JobResult P = runOneJob(sourceSpec("partial", RacyProgram), BatchOptions());
  EXPECT_EQ(P.Status, JobStatus::OOM);
  EXPECT_EQ(P.Phase, "osa");
  EXPECT_GT(P.Stats.get("pta.pointer-nodes"), 0u);

  // The parser fault point maps to a contained internal error.
  FaultInjector::instance().disarm();
  armOrDie("parse@pf:1:throw");
  JobResult F = runOneJob(sourceSpec("pf", RacyProgram), BatchOptions());
  EXPECT_EQ(F.Status, JobStatus::InternalError);
  EXPECT_EQ(F.Phase, "parse");
  EXPECT_NE(F.Error.find("injected fault"), std::string::npos);
}

TEST_F(ContainmentTest, EveryPassFaultPointIsWired) {
  // One throw per pass point: the error is contained in-process and
  // attributed to exactly that pass.
  const struct {
    const char *Point;
    const char *Phase;
  } Cases[] = {
      {"pass.pta", "pta"},           {"pass.osa", "osa"},
      {"pass.shb", "shb"},           {"pass.hbindex", "hbindex"},
      {"pass.race", "race"},         {"pass.deadlock", "deadlock"},
      {"pass.oversync", "oversync"}, {"pass.racerd", "racerd"},
      {"pass.escape", "escape"},
  };
  BatchOptions Opts;
  Opts.Analyses = AnalysisSet::all();
  for (const auto &C : Cases) {
    FaultInjector::instance().disarm();
    std::string Err;
    ASSERT_TRUE(FaultInjector::instance().armFromSpec(
        std::string(C.Point) + ":1:throw", Err))
        << Err;
    JobResult R = runOneJob(sourceSpec("m", RacyProgram), Opts);
    EXPECT_EQ(R.Status, JobStatus::InternalError) << C.Point;
    EXPECT_EQ(R.Phase, C.Phase) << C.Point;
  }
}

TEST_F(ContainmentTest, ResultCacheNeverStoresCrashedOrDegradedResults) {
  ResultCache Cache(freshCacheDir("contain"));
  JobResult Out;

  JobResult Good;
  Good.Status = JobStatus::Clean;
  Cache.store(1, 2, Good);
  EXPECT_TRUE(Cache.lookup(1, 2, Out));

  JobResult Crashed;
  Crashed.Status = JobStatus::Crashed;
  Crashed.Signal = "SIGKILL";
  Cache.store(3, 4, Crashed);
  EXPECT_FALSE(Cache.lookup(3, 4, Out));

  JobResult Oom;
  Oom.Status = JobStatus::OOM;
  Cache.store(5, 6, Oom);
  EXPECT_FALSE(Cache.lookup(5, 6, Out));

  JobResult Degraded;
  Degraded.Status = JobStatus::Races;
  Degraded.Degraded = true;
  Degraded.DegradedConfigFP = 7;
  Cache.store(7, 8, Degraded);
  EXPECT_FALSE(Cache.lookup(7, 8, Out));

  // End to end: a job that crashes every run must re-run (and re-crash)
  // on a warm directory rather than replay a poisoned entry.
  armOrDie("pass.race@boom:*:kill");
  BatchOptions Opts;
  Opts.Isolate = IsolationMode::Process;
  Opts.CacheDir = freshCacheDir("crashcache");
  BatchResult R1 = runBatch({sourceSpec("boom", RacyProgram)}, Opts);
  EXPECT_EQ(R1.Jobs[0].Status, JobStatus::Crashed);
  BatchResult R2 = runBatch({sourceSpec("boom", RacyProgram)}, Opts);
  EXPECT_EQ(R2.CacheHits, 0u);
  EXPECT_EQ(R2.Jobs[0].Status, JobStatus::Crashed);
}

TEST_F(ContainmentTest, DegradedResultsAreNeverServedFromCache) {
  armOrDie("pass.pta@deg:1:oom");
  BatchOptions Opts;
  Opts.Degrade = true;
  Opts.CacheDir = freshCacheDir("degcache");

  BatchResult R1 = runBatch({sourceSpec("deg", RacyProgram)}, Opts);
  ASSERT_EQ(R1.Jobs.size(), 1u);
  EXPECT_TRUE(R1.Jobs[0].Degraded);

  // Fault spent: the re-run must analyze under the full configuration —
  // a cache hit here would freeze the degraded result forever.
  BatchResult R2 = runBatch({sourceSpec("deg", RacyProgram)}, Opts);
  EXPECT_EQ(R2.CacheHits, 0u);
  EXPECT_FALSE(R2.Jobs[0].Degraded);
  EXPECT_EQ(R2.Jobs[0].Status, JobStatus::Races);
}

TEST_F(ContainmentTest, CacheIOFaultsDegradeToMisses) {
  std::vector<JobSpec> Specs = {sourceSpec("racy", RacyProgram)};
  BatchOptions Opts;
  Opts.CacheDir = freshCacheDir("faultio");

  // A failing store is swallowed: the run succeeds, nothing is cached.
  armOrDie("cache.write:1:throw");
  BatchResult Cold = runBatch(Specs, Opts);
  EXPECT_EQ(Cold.Jobs[0].Status, JobStatus::Races);
  EXPECT_EQ(Cold.CacheMisses, 1u);

  BatchResult Second = runBatch(Specs, Opts);
  EXPECT_EQ(Second.CacheHits, 0u) << "the faulted store wrote nothing";
  EXPECT_EQ(Second.CacheMisses, 1u);

  // A failing read degrades the warm entry to a miss; the job re-runs
  // and the report is unchanged.
  armOrDie("cache.read:1:throw");
  BatchResult Third = runBatch(Specs, Opts);
  EXPECT_EQ(Third.CacheHits, 0u);
  EXPECT_EQ(Third.CacheMisses, 1u);
  EXPECT_EQ(renderJSONL(Third), renderJSONL(Cold));

  // Faults spent: the entry (rewritten by the re-run) is served again.
  BatchResult Fourth = runBatch(Specs, Opts);
  EXPECT_EQ(Fourth.CacheHits, 1u);
}

TEST(DriverTest, LoadBaselineHandlesEscapesAndJunk) {
  Baseline B = loadBaseline(
      "not json at all\n"
      "{\"module\":\"with \\\"quotes\\\"\",\"races\":[{\"fingerprint\":"
      "\"00ff00ff00ff00ff\"}]}\n"
      "{\"aggregate\":true,\"summary\":{}}\n");
  ASSERT_EQ(B.size(), 1u);
  ASSERT_EQ(B.count("with \"quotes\""), 1u);
  EXPECT_TRUE(B["with \"quotes\""].count("00ff00ff00ff00ff"));
}

} // namespace
