//===- DriverTest.cpp - Batch-analysis driver tests ---------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Covers the batch driver: job status classification, deterministic
// reports across worker counts and runs, per-job deadline degradation,
// per-phase cancellation, baseline diffing with reorder-stable
// fingerprints, and the shared exit-code convention.
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/Driver.h"

#include "o2/IR/Parser.h"
#include "o2/Support/OutputStream.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace o2;

namespace {

const char *RacyProgram = R"(
  class T {
    method run() { var x: int; @g = x; }
  }
  global g: int;
  func main() {
    var t: T;
    var x: int;
    t = new T;
    spawn t.run();
    x = @g;
  }
)";

const char *CleanProgram = R"(
  class T { method run() { var x: int; } }
  func main() {
    var t: T;
    t = new T;
    spawn t.run();
  }
)";

JobSpec sourceSpec(std::string Name, std::string Source) {
  JobSpec S;
  S.Name = std::move(Name);
  S.Source = std::move(Source);
  return S;
}

std::string renderJSONL(const BatchResult &R) {
  std::string Buf;
  StringOutputStream OS(Buf);
  printJSONL(R, OS);
  return Buf;
}

TEST(DriverTest, StatusClassification) {
  std::vector<JobSpec> Specs = {
      sourceSpec("clean", CleanProgram),
      sourceSpec("racy", RacyProgram),
      sourceSpec("broken", "class {"),
      sourceSpec("headless", "func helper() { }"), // no main
  };
  BatchResult R = runBatch(Specs);
  ASSERT_EQ(R.Jobs.size(), 4u);
  // Sorted by name.
  EXPECT_EQ(R.Jobs[0].Name, "broken");
  EXPECT_EQ(R.Jobs[1].Name, "clean");
  EXPECT_EQ(R.Jobs[2].Name, "headless");
  EXPECT_EQ(R.Jobs[3].Name, "racy");

  EXPECT_EQ(R.Jobs[0].Status, JobStatus::ParseError);
  EXPECT_NE(R.Jobs[0].Error.find(":"), std::string::npos)
      << "parse diagnostics carry a position: " << R.Jobs[0].Error;
  EXPECT_EQ(R.Jobs[1].Status, JobStatus::Clean);
  EXPECT_TRUE(R.Jobs[1].Races.empty());
  EXPECT_EQ(R.Jobs[2].Status, JobStatus::VerifyError);
  EXPECT_NE(R.Jobs[2].Error.find("main"), std::string::npos)
      << R.Jobs[2].Error;
  EXPECT_EQ(R.Jobs[3].Status, JobStatus::Races);
  EXPECT_EQ(R.Jobs[3].Races.size(), 1u);
  EXPECT_EQ(R.Jobs[3].Races[0].Location, "@g");

  EXPECT_EQ(R.Summary.get("jobs.total"), 4u);
  EXPECT_EQ(R.Summary.get("jobs.clean"), 1u);
  EXPECT_EQ(R.Summary.get("jobs.races"), 1u);
  EXPECT_EQ(R.Summary.get("jobs.parse-error"), 1u);
  EXPECT_EQ(R.Summary.get("jobs.verify-error"), 1u);
  EXPECT_EQ(R.Summary.get("races.total"), 1u);
  EXPECT_EQ(R.exitCode(), ExitError);
}

TEST(DriverTest, DeterministicAcrossWorkerCountsAndRuns) {
  std::vector<JobSpec> Specs;
  for (int I = 0; I < 6; ++I)
    Specs.push_back(sourceSpec("racy" + std::to_string(I), RacyProgram));
  Specs.push_back(sourceSpec("clean", CleanProgram));

  BatchOptions Serial;
  Serial.Jobs = 1;
  BatchOptions Wide;
  Wide.Jobs = 4;

  std::string Golden = renderJSONL(runBatch(Specs, Serial));
  EXPECT_EQ(renderJSONL(runBatch(Specs, Wide)), Golden);
  EXPECT_EQ(renderJSONL(runBatch(Specs, Wide)), Golden);
  EXPECT_EQ(renderJSONL(runBatch(Specs, Serial)), Golden);

  // One JSONL record per job plus the aggregate.
  size_t Lines = 0;
  for (char C : Golden)
    Lines += C == '\n';
  EXPECT_EQ(Lines, Specs.size() + 1);
}

TEST(DriverTest, DeadlineTimeoutIsIsolatedPerJob) {
  // "telegram" is the heaviest generated workload (context amplifier with
  // fan-out 32): far more than a millisecond of pointer analysis, so the
  // deadline always fires in the first phase — while the tiny racy
  // module on the same pool still completes normally.
  const WorkloadProfile *Heavy = findProfile("telegram");
  ASSERT_NE(Heavy, nullptr);
  JobSpec HeavySpec;
  HeavySpec.Name = "heavy";
  HeavySpec.Profile = Heavy;
  std::vector<JobSpec> Specs = {HeavySpec, sourceSpec("tiny", RacyProgram)};

  BatchOptions Opts;
  Opts.Jobs = 2;
  Opts.DeadlineMs = 1;
  BatchResult R = runBatch(Specs, Opts);
  ASSERT_EQ(R.Jobs.size(), 2u);

  const JobResult &HeavyJob = R.Jobs[0];
  EXPECT_EQ(HeavyJob.Name, "heavy");
  EXPECT_EQ(HeavyJob.Status, JobStatus::Timeout);
  EXPECT_EQ(HeavyJob.Phase, "pta");
  // Partial statistics survive: the solver got far enough to allocate.
  EXPECT_GT(HeavyJob.Stats.get("pta.pointer-nodes"), 0u);
  EXPECT_EQ(HeavyJob.Stats.get("pta.cancelled"), 1u);

  const JobResult &TinyJob = R.Jobs[1];
  EXPECT_EQ(TinyJob.Status, JobStatus::Races);
  EXPECT_EQ(TinyJob.Races.size(), 1u);

  EXPECT_EQ(R.Summary.get("jobs.timeout"), 1u);
  EXPECT_EQ(R.exitCode(), ExitError);
}

TEST(DriverTest, PreCancelledTokenStopsEveryPhase) {
  std::string Err;
  auto M = parseModule(RacyProgram, Err);
  ASSERT_TRUE(M) << Err;

  CancellationToken Cancelled;
  Cancelled.cancel();

  // PTA stops and flags its (partial) result.
  PTAOptions PTAOpts;
  PTAOpts.Cancel = &Cancelled;
  auto PTA = runPointerAnalysis(*M, PTAOpts);
  EXPECT_TRUE(PTA->cancelled());

  // The later phases each poll the token themselves.
  auto FullPTA = runPointerAnalysis(*M, PTAOptions());
  ASSERT_FALSE(FullPTA->cancelled());
  EXPECT_TRUE(runSharingAnalysis(*FullPTA, &Cancelled).cancelled());

  SHBOptions SHBOpts;
  SHBOpts.Cancel = &Cancelled;
  EXPECT_TRUE(buildSHBGraph(*FullPTA, SHBOpts).cancelled());

  RaceDetectorOptions DetOpts;
  DetOpts.Cancel = &Cancelled;
  RaceReport Report = detectRaces(*FullPTA, DetOpts);
  EXPECT_TRUE(Report.cancelled());
  EXPECT_EQ(Report.stats().get("race.cancelled"), 1u);

  // Through the facade: the pipeline dies in the first phase and the
  // phase is recorded.
  O2Config Cfg;
  Cfg.Cancel = &Cancelled;
  O2Analysis A = analyzeModule(*M, Cfg);
  EXPECT_TRUE(A.cancelled());
  EXPECT_EQ(A.CancelledIn, O2Phase::PTA);
  EXPECT_STREQ(phaseName(A.CancelledIn), "pta");
}

// Version 1: two independent races, on @a and on @b.
const char *BaselineV1 = R"(
  class T {
    method run() {
      var x: int;
      @a = x;
      @b = x;
    }
  }
  global a: int;
  global b: int;
  func main() {
    var t: T;
    var x: int;
    t = new T;
    spawn t.run();
    x = @a;
    x = @b;
  }
)";

// Version 2: unrelated code added and reordered (globals shuffled, a
// padding class and new locals inserted, statements moved), the @b race
// removed, a new race on @c introduced. The @a race is textually the
// same accesses — its fingerprint must survive all the reordering.
const char *BaselineV2 = R"(
  global c: int;
  global b: int;
  global a: int;
  class Pad { field p: int; }
  class T {
    method run() {
      var x: int;
      var y: int;
      @c = x;
      @a = x;
    }
  }
  func main() {
    var p: Pad;
    var t: T;
    var x: int;
    p = new Pad;
    x = p.p;
    t = new T;
    spawn t.run();
    x = @c;
    x = @a;
  }
)";

TEST(DriverTest, BaselineDiffWithReorderStableFingerprints) {
  BatchResult Before = runBatch({sourceSpec("m", BaselineV1)});
  ASSERT_EQ(Before.Jobs.size(), 1u);
  ASSERT_EQ(Before.Jobs[0].Races.size(), 2u);
  std::string FPA, FPB;
  for (const RaceRecord &Rc : Before.Jobs[0].Races) {
    if (Rc.Location == "@a")
      FPA = Rc.Fingerprint;
    if (Rc.Location == "@b")
      FPB = Rc.Fingerprint;
  }
  ASSERT_FALSE(FPA.empty());
  ASSERT_FALSE(FPB.empty());
  EXPECT_NE(FPA, FPB);

  Baseline Base = loadBaseline(renderJSONL(Before));
  ASSERT_EQ(Base.count("m"), 1u);
  EXPECT_EQ(Base["m"].size(), 2u);
  EXPECT_TRUE(Base["m"].count(FPA));
  EXPECT_TRUE(Base["m"].count(FPB));

  BatchResult After = runBatch({sourceSpec("m", BaselineV2)});
  ASSERT_EQ(After.Jobs.size(), 1u);
  ASSERT_EQ(After.Jobs[0].Races.size(), 2u);
  applyBaseline(After, Base);

  for (const RaceRecord &Rc : After.Jobs[0].Races) {
    if (Rc.Location == "@a") {
      // Same accesses despite all the unrelated churn: unchanged.
      EXPECT_EQ(Rc.Fingerprint, FPA);
      EXPECT_EQ(Rc.DiffStatus, "unchanged");
    } else {
      EXPECT_EQ(Rc.Location, "@c");
      EXPECT_EQ(Rc.DiffStatus, "new");
    }
  }
  ASSERT_EQ(After.Jobs[0].FixedRaces.size(), 1u);
  EXPECT_EQ(After.Jobs[0].FixedRaces[0], FPB);
  EXPECT_EQ(After.Summary.get("diff.new"), 1u);
  EXPECT_EQ(After.Summary.get("diff.unchanged"), 1u);
  EXPECT_EQ(After.Summary.get("diff.fixed"), 1u);

  // The diff annotations land in the JSONL report.
  std::string Report = renderJSONL(After);
  EXPECT_NE(Report.find("\"diff\":\"new\""), std::string::npos);
  EXPECT_NE(Report.find("\"diff\":\"unchanged\""), std::string::npos);
  EXPECT_NE(Report.find("\"fixed\":[\"" + FPB + "\"]"), std::string::npos);
}

TEST(DriverTest, ExitCodeConvention) {
  EXPECT_EQ(exitCodeFor(JobStatus::Clean), ExitClean);
  EXPECT_EQ(exitCodeFor(JobStatus::Races), ExitRacesFound);
  EXPECT_EQ(exitCodeFor(JobStatus::Timeout), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::ParseError), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::VerifyError), ExitError);
  EXPECT_EQ(exitCodeFor(JobStatus::InternalError), ExitError);

  // Aggregate: the worst job wins.
  EXPECT_EQ(runBatch({sourceSpec("c", CleanProgram)}).exitCode(), ExitClean);
  EXPECT_EQ(runBatch({sourceSpec("c", CleanProgram),
                      sourceSpec("r", RacyProgram)})
                .exitCode(),
            ExitRacesFound);
  EXPECT_EQ(runBatch({sourceSpec("c", CleanProgram),
                      sourceSpec("r", RacyProgram),
                      sourceSpec("x", "class {")})
                .exitCode(),
            ExitError);
}

std::string freshCacheDir(const char *Name) {
  std::string Dir = testing::TempDir() + "o2-drivertest-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

TEST(DriverTest, AnalysesSelectSectionsAndStayDeterministic) {
  std::vector<JobSpec> Specs = {sourceSpec("racy", RacyProgram),
                                sourceSpec("clean", CleanProgram)};

  BatchOptions Opts;
  Opts.Analyses = {O2Phase::Detect, O2Phase::Deadlock, O2Phase::OverSync,
                   O2Phase::RacerD};
  Opts.Jobs = 1;
  BatchResult Narrow = runBatch(Specs, Opts);
  std::string Golden = renderJSONL(Narrow);

  // Byte-identical across worker counts, aux sections included.
  Opts.Jobs = 8;
  EXPECT_EQ(renderJSONL(runBatch(Specs, Opts)), Golden);
  EXPECT_NE(Golden.find("\"analyses\":\"race,deadlock,oversync,racerd\""),
            std::string::npos);
  EXPECT_NE(Golden.find("\"deadlocks\":"), std::string::npos);
  EXPECT_NE(Golden.find("\"oversync\":"), std::string::npos);
  EXPECT_NE(Golden.find("\"racerd\":"), std::string::npos);

  // The aux analyses produce their counters but never change the race
  // status or the exit code.
  ASSERT_EQ(Narrow.Jobs.size(), 2u);
  EXPECT_EQ(Narrow.Jobs[1].Status, JobStatus::Races);
  EXPECT_GT(Narrow.Jobs[1].Stats.get("racerd.warnings"), 0u);
  EXPECT_EQ(Narrow.exitCode(), ExitRacesFound);

  // The default request carries no aux sections.
  std::string Default = renderJSONL(runBatch(Specs));
  EXPECT_EQ(Default.find("\"deadlocks\":"), std::string::npos);
  EXPECT_EQ(Default.find("\"racerd\":"), std::string::npos);
}

TEST(DriverTest, WarmCacheReplaysIdenticalReports) {
  std::vector<JobSpec> Specs = {sourceSpec("racy", RacyProgram),
                                sourceSpec("clean", CleanProgram)};
  BatchOptions Opts;
  Opts.Analyses = {O2Phase::OSA, O2Phase::Detect, O2Phase::Deadlock,
                   O2Phase::OverSync};
  Opts.CacheDir = freshCacheDir("warm");

  BatchResult Cold = runBatch(Specs, Opts);
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_EQ(Cold.CacheMisses, 2u);

  BatchResult Warm = runBatch(Specs, Opts);
  EXPECT_EQ(Warm.CacheHits, 2u);
  EXPECT_EQ(Warm.CacheMisses, 0u);

  // The warm run replays byte-identical records — cache telemetry is
  // deliberately kept out of the JSONL.
  EXPECT_EQ(renderJSONL(Warm), renderJSONL(Cold));
  std::string Report = renderJSONL(Warm);
  EXPECT_EQ(Report.find("cache"), std::string::npos);

  // A different config fingerprint misses: same modules, new entries.
  BatchOptions Worklist = Opts;
  Worklist.Config.PTA.Solver = SolverKind::Worklist;
  BatchResult Cross = runBatch(Specs, Worklist);
  EXPECT_EQ(Cross.CacheHits, 0u);
  EXPECT_EQ(Cross.CacheMisses, 2u);

  // Renaming a job does not invalidate its entry (the key is content).
  std::vector<JobSpec> Renamed = {sourceSpec("renamed", RacyProgram)};
  BatchResult Moved = runBatch(Renamed, Opts);
  EXPECT_EQ(Moved.CacheHits, 1u);
  ASSERT_EQ(Moved.Jobs.size(), 1u);
  EXPECT_EQ(Moved.Jobs[0].Name, "renamed");
  EXPECT_EQ(Moved.Jobs[0].Races.size(), 1u);
}

TEST(DriverTest, CorruptCacheEntriesDegradeToMisses) {
  std::vector<JobSpec> Specs = {sourceSpec("racy", RacyProgram)};
  BatchOptions Opts;
  Opts.Analyses = {O2Phase::Detect, O2Phase::Deadlock};
  Opts.CacheDir = freshCacheDir("corrupt");

  std::string Golden = renderJSONL(runBatch(Specs, Opts));

  // Truncate every entry: checksum fails, jobs re-run, report unchanged.
  for (const auto &E : std::filesystem::directory_iterator(Opts.CacheDir)) {
    std::ofstream Out(E.path(), std::ios::trunc | std::ios::binary);
    Out << "o2cache";
  }
  BatchResult Truncated = runBatch(Specs, Opts);
  EXPECT_EQ(Truncated.CacheHits, 0u);
  EXPECT_EQ(Truncated.CacheMisses, 1u);
  EXPECT_EQ(renderJSONL(Truncated), Golden);

  // Version skew: a valid-looking header from the future is a miss too.
  for (const auto &E : std::filesystem::directory_iterator(Opts.CacheDir)) {
    std::ofstream Out(E.path(), std::ios::trunc | std::ios::binary);
    Out << "o2cache 9999 0000000000000000\n";
  }
  BatchResult Skewed = runBatch(Specs, Opts);
  EXPECT_EQ(Skewed.CacheHits, 0u);
  EXPECT_EQ(renderJSONL(Skewed), Golden);

  // The re-run overwrote the damaged entries: warm again.
  BatchResult Healed = runBatch(Specs, Opts);
  EXPECT_EQ(Healed.CacheHits, 1u);
  EXPECT_EQ(renderJSONL(Healed), Golden);
}

TEST(DriverTest, TotalMsIncludesAuxAnalyses) {
  // The regression the manager fixed: totalMs used to sum only the four
  // core phases, silently dropping aux-analysis time.
  JobResult R;
  R.PTAMs = 1;
  R.OSAMs = 2;
  R.SHBMs = 4;
  R.HBIndexMs = 8;
  R.DetectMs = 16;
  R.DeadlockMs = 32;
  R.OverSyncMs = 64;
  R.RacerDMs = 128;
  R.EscapeMs = 256;
  EXPECT_DOUBLE_EQ(R.totalMs(), 511.0);

  BatchOptions Opts;
  Opts.Analyses = AnalysisSet::all();
  JobResult Live = runOneJob(sourceSpec("racy", RacyProgram), Opts);
  EXPECT_EQ(Live.Status, JobStatus::Races);
  EXPECT_DOUBLE_EQ(Live.totalMs(),
                   Live.PTAMs + Live.OSAMs + Live.SHBMs + Live.HBIndexMs +
                       Live.DetectMs + Live.DeadlockMs + Live.OverSyncMs +
                       Live.RacerDMs + Live.EscapeMs);
  EXPECT_GT(Live.totalMs(), 0.0);
}

TEST(DriverTest, DeadlineTimeoutNamesAuxPhase) {
  // RacerD has no dependencies, so with a RacerD-only request the first
  // pass the deadline can fire in is RacerD itself — the timeout record
  // must name the aux analysis, not "pta". The telegram workload keeps
  // RacerD busy for ~1s, far past the 1ms budget.
  const WorkloadProfile *Heavy = findProfile("telegram");
  ASSERT_NE(Heavy, nullptr);
  JobSpec Spec;
  Spec.Name = "heavy";
  Spec.Profile = Heavy;

  BatchOptions Opts;
  Opts.Analyses = {O2Phase::RacerD};
  Opts.DeadlineMs = 1;
  Opts.CacheDir = freshCacheDir("timeout");
  BatchResult R = runBatch({Spec}, Opts);
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Timeout);
  EXPECT_EQ(R.Jobs[0].Phase, "racerd");

  // Timeouts are never cached: the re-run misses again.
  BatchResult Again = runBatch({Spec}, Opts);
  EXPECT_EQ(Again.CacheHits, 0u);
  EXPECT_EQ(Again.Jobs[0].Status, JobStatus::Timeout);
}

TEST(DriverTest, LoadBaselineHandlesEscapesAndJunk) {
  Baseline B = loadBaseline(
      "not json at all\n"
      "{\"module\":\"with \\\"quotes\\\"\",\"races\":[{\"fingerprint\":"
      "\"00ff00ff00ff00ff\"}]}\n"
      "{\"aggregate\":true,\"summary\":{}}\n");
  ASSERT_EQ(B.size(), 1u);
  ASSERT_EQ(B.count("with \"quotes\""), 1u);
  EXPECT_TRUE(B["with \"quotes\""].count("00ff00ff00ff00ff"));
}

} // namespace
