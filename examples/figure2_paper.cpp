//===- figure2_paper.cpp - the paper's worked example -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Walks through Figure 2 of the paper: two threads share ⟨s⟩ but carry
// different operation objects (op1/op2). Origin sensitivity resolves the
// virtual call o.act(s) to exactly one target per thread, where a
// context-insensitive analysis merges both; and OSA produces the
// Figure 2(d)-style sharing report (⟨s⟩ shared, everything else local).
//
//===----------------------------------------------------------------------===//

#include "o2/OSA/SharingAnalysis.h"
#include "o2/Support/OutputStream.h"
#include "o2/Workload/BugModels.h"

using namespace o2;

static void showDispatch(const Module &M, const PTAResult &R) {
  const Function *Run = M.findClass("T")->findMethod("run");
  const CallStmt *Act = nullptr;
  for (const auto &S : Run->body())
    if (const auto *C = dyn_cast<CallStmt>(S.get()))
      Act = C;
  outs() << "dispatch of 'o.act(s)' under " << R.options().name() << ":\n";
  for (const auto &[F, C] : R.instances()) {
    if (F != Run)
      continue;
    outs() << "  in <run, " << R.ctxToString(C) << ">: ";
    bool First = true;
    for (const CallTarget &T : R.callTargets(Act, C)) {
      if (!First)
        outs() << ", ";
      First = false;
      outs() << T.Callee->getClass()->getName()
             << "::" << T.Callee->getName();
    }
    outs() << '\n';
  }
}

int main() {
  const BugModel *Fig2 = findBugModel("figure2");
  auto M = buildBugModel(*Fig2);

  PTAOptions OPAOpts;
  OPAOpts.Kind = ContextKind::Origin;
  auto OPA = runPointerAnalysis(*M, OPAOpts);

  PTAOptions InsOpts;
  InsOpts.Kind = ContextKind::Insensitive;
  auto Insensitive = runPointerAnalysis(*M, InsOpts);

  outs() << "Figure 2: origins precisely determine the call chain\n\n";
  showDispatch(*M, *OPA);
  outs() << '\n';
  showDispatch(*M, *Insensitive);

  // Figure 2(d): the OSA output.
  outs() << "\norigin-sharing analysis (Figure 2(d) analogue):\n";
  SharingResult OSA = runSharingAnalysis(*OPA);
  outs() << "  shared locations: " << OSA.sharedLocations().size() << '\n';
  for (const MemLoc &Loc : OSA.sharedLocations()) {
    const LocAccessSets *Sets = OSA.get(Loc);
    outs() << "    " << Loc.toString(*OPA) << "  readers={";
    bool First = true;
    for (unsigned O : Sets->ReadOrigins) {
      if (!First)
        outs() << ",";
      First = false;
      outs() << "O" << O;
    }
    outs() << "} writers={";
    First = true;
    for (unsigned O : Sets->WriteOrigins) {
      if (!First)
        outs() << ",";
      First = false;
      outs() << "O" << O;
    }
    outs() << "}\n";
  }
  outs() << "  origin-shared accesses: " << OSA.numSharedAccessStmts() << '/'
         << OSA.numAccessStmts() << '\n';
  outs() << "\norigins discovered (with their attributes, Figure 2(b)):\n";
  for (const OriginInfo &O : OPA->origins().origins()) {
    outs() << "  O" << O.Id << ": "
           << (O.Kind == OriginKind::Main
                   ? "main"
                   : (O.Class ? O.Class->getName() : std::string("?")));
    std::vector<unsigned> Attrs = OPA->originAttributes(O.Id);
    if (!Attrs.empty()) {
      outs() << "  attrs={";
      bool First = true;
      for (unsigned Obj : Attrs) {
        if (!First)
          outs() << ", ";
        First = false;
        outs() << "obj" << Obj << ":"
               << OPA->object(Obj).AllocatedType->getName();
      }
      outs() << "}";
    }
    outs() << '\n';
  }
  return 0;
}
