//===- memcached_model.cpp - the Memcached thread<->event race --------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's Memcached case study (Section 5.4): the
// do_slabs_reassign event handler reads slabclass state without
// slabs_lock while worker threads mutate it under the lock. The race
// exists only across the thread/event boundary — handlers never race
// each other (they share the looper), and workers never race each other
// (they share the lock). A detector that considers only threads or only
// events misses it; O2's origins unify them.
//
//===----------------------------------------------------------------------===//

#include "o2/O2.h"
#include "o2/Race/RacerDLike.h"
#include "o2/Support/OutputStream.h"
#include "o2/Workload/BugModels.h"

using namespace o2;

int main() {
  const BugModel *Model = findBugModel("memcached_slabs");
  if (!Model) {
    errs() << "model registry is missing memcached_slabs\n";
    return 1;
  }
  outs() << "subject: " << Model->Subject << '\n';
  outs() << "bug:     " << Model->Description << "\n\n";

  auto M = buildBugModel(*Model);

  // Full O2 pipeline (OPA + OSA + SHB + optimized detector).
  O2Analysis Result = analyzeModule(*M);
  Result.printSummary(outs());
  outs() << '\n';
  Result.Races.print(outs(), *Result.PTA);

  // Show which origin kinds collide: the paper's point is the
  // thread<->event interaction.
  for (const Race &R : Result.Races.races()) {
    auto KindName = [](OriginKind K) {
      switch (K) {
      case OriginKind::Main:
        return "main";
      case OriginKind::Thread:
        return "thread";
      case OriginKind::Event:
        return "event";
      }
      return "?";
    };
    outs() << "  -> between a " << KindName(Result.SHB.thread(R.ThreadA).Kind)
           << " and an " << KindName(Result.SHB.thread(R.ThreadB).Kind)
           << " origin\n";
  }

  // Contrast with the syntactic RacerD-style baseline.
  outs() << '\n';
  RacerDReport RacerD = runRacerDLike(*M);
  RacerD.print(outs());
  outs() << "\nO2 races: " << Result.Races.numRaces()
         << ", RacerD-like potential races: " << RacerD.numPotentialRaces()
         << '\n';
  return 0;
}
