//===- o2batch.cpp - parallel batch-analysis tool -----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Runs the full O2 pipeline over a corpus of modules — OIR files,
// directories of OIR files, or generated workload profiles — one isolated
// job per module on a work-stealing thread pool, with optional per-job
// deadlines and baseline diffing. Emits one JSONL record per module plus
// an aggregate; run `o2batch --help` or see docs/DRIVER.md.
//
// Exit codes: 0 all clean, 1 races found, 2 any error or timeout.
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/Driver.h"

#include <string>
#include <vector>

int main(int Argc, char **Argv) {
  return o2::runBatchCommand(std::vector<std::string>(Argv + 1, Argv + Argc));
}
