//===- quickstart.cpp - first steps with the O2 library ---------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Builds a small concurrent program two ways — from textual OIR and with
// the IRBuilder API — runs the full O2 pipeline on it, and prints the
// race report. This is the 5-minute tour of the public API.
//
//===----------------------------------------------------------------------===//

#include "o2/IR/IRBuilder.h"
#include "o2/IR/Parser.h"
#include "o2/IR/Printer.h"
#include "o2/IR/Verifier.h"
#include "o2/O2.h"
#include "o2/Support/OutputStream.h"

using namespace o2;

/// A worker thread increments a shared counter without a lock while main
/// reads it: the classic data race.
static const char *RacyProgram = R"(
class Counter { field value: int; }
global counter: Counter;

class Worker {
  method run() {
    var c: Counter;
    var v: int;
    c = @counter;
    v = c.value;
    c.value = v;      // unsynchronized increment: races with main's read
  }
}

func main() {
  var c: Counter;
  var w1: Worker;
  var w2: Worker;
  var v: int;
  c = new Counter;
  @counter = c;
  w1 = new Worker;
  w2 = new Worker;
  spawn w1.run();
  spawn w2.run();
  v = c.value;         // concurrent with both workers
}
)";

/// The same shape, assembled programmatically.
static std::unique_ptr<Module> buildWithIRBuilder() {
  auto M = std::make_unique<Module>("quickstart-builder");
  ClassType *Counter = M->addClass("Counter");
  Field *Value = Counter->addField("value", M->getIntType());
  Global *GCounter = M->addGlobal("counter", Counter);

  ClassType *Worker = M->addClass("Worker");
  Function *Run = M->addFunction("run");
  Worker->addMethod(Run);
  Run->addParam("this", Worker);
  {
    IRBuilder B(*M, Run);
    Variable *C = Run->addLocal("c", Counter);
    Variable *V = Run->addLocal("v", M->getIntType());
    B.globalLoad(C, GCounter);
    B.fieldLoad(V, C, Value);
    B.fieldStore(C, Value, V);
  }

  Function *Main = M->addFunction("main");
  {
    IRBuilder B(*M, Main);
    Variable *C = Main->addLocal("c", Counter);
    Variable *W = Main->addLocal("w", Worker);
    Variable *V = Main->addLocal("v", M->getIntType());
    B.alloc(C, Counter);
    B.globalStore(GCounter, C);
    B.alloc(W, Worker);
    B.spawn(W, "run");
    B.fieldLoad(V, C, Value);
  }
  return M;
}

static void analyzeAndReport(const Module &M) {
  std::vector<std::string> Errors;
  if (!verifyModule(M, Errors)) {
    errs() << "verification failed: " << Errors.front() << '\n';
    return;
  }
  O2Analysis Result = analyzeModule(M); // OPA + OSA + SHB + detector
  Result.printSummary(outs());
  Result.Races.print(outs(), *Result.PTA);
  outs() << '\n';
}

int main() {
  outs() << "--- quickstart 1: analyze textual OIR ---\n";
  std::string Err;
  auto Parsed = parseModule(RacyProgram, Err, "quickstart-oir");
  if (!Parsed) {
    errs() << "parse error: " << Err << '\n';
    return 1;
  }
  analyzeAndReport(*Parsed);

  outs() << "--- quickstart 2: analyze an IRBuilder-built module ---\n";
  auto Built = buildWithIRBuilder();
  analyzeAndReport(*Built);

  outs() << "--- quickstart 3: print a module back as OIR ---\n";
  outs() << printModule(*Built);
  return 0;
}
