//===- lock_analyses.cpp - deadlock & over-synchronization demo --------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// The paper notes (Section 3) that OPA and OSA "can benefit any analysis
// that requires analyzing pointers or ownership of memory accesses,
// e.g., deadlock, over-synchronization". This example runs both bonus
// analyses over one program that exhibits an AB-BA deadlock, an
// over-synchronized region, and a data race at the same time.
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/O2.h"
#include "o2/Race/DeadlockDetector.h"
#include "o2/Race/OverSync.h"
#include "o2/Support/OutputStream.h"

using namespace o2;

static const char *Program = R"(
class Account { field balance: int; }
class Lock { }
global lockA: Lock;
global lockB: Lock;
global checking: Account;
global savings: Account;

// transfer(checking -> savings): takes lockA then lockB.
class TransferForward {
  method run() {
    var la: Lock;
    var lb: Lock;
    var from: Account;
    var to: Account;
    var amt: int;
    la = @lockA;
    lb = @lockB;
    from = @checking;
    to = @savings;
    acquire la;
    acquire lb;
    from.balance = amt;
    to.balance = amt;
    release lb;
    release la;
  }
}

// transfer(savings -> checking): takes lockB then lockA — deadlock!
class TransferBackward {
  method run() {
    var la: Lock;
    var lb: Lock;
    var from: Account;
    var to: Account;
    var amt: int;
    la = @lockA;
    lb = @lockB;
    from = @savings;
    to = @checking;
    acquire lb;
    acquire la;
    from.balance = amt;
    to.balance = amt;
    release la;
    release lb;
  }
}

// An auditor that locks around purely thread-local scratch work
// (over-synchronization) and then reads a balance unlocked (race).
class Auditor {
  method run() {
    var la: Lock;
    var scratch: Account;
    var acct: Account;
    var x: int;
    la = @lockA;
    scratch = new Account;
    acquire la;
    scratch.balance = x;
    x = scratch.balance;
    release la;
    acct = @checking;
    x = acct.balance;
  }
}

func main() {
  var a: Lock;
  var b: Lock;
  var c: Account;
  var s: Account;
  var t1: TransferForward;
  var t2: TransferBackward;
  var aud: Auditor;
  a = new Lock;
  b = new Lock;
  c = new Account;
  s = new Account;
  @lockA = a;
  @lockB = b;
  @checking = c;
  @savings = s;
  t1 = new TransferForward;
  t2 = new TransferBackward;
  aud = new Auditor;
  spawn t1.run();
  spawn t2.run();
  spawn aud.run();
}
)";

int main() {
  std::string Err;
  auto M = parseModule(Program, Err, "bank");
  if (!M) {
    errs() << "parse error: " << Err << '\n';
    return 1;
  }
  std::vector<std::string> Errors;
  if (!verifyModule(*M, Errors)) {
    errs() << "verifier: " << Errors.front() << '\n';
    return 1;
  }

  O2Analysis Result = analyzeModule(*M);
  Result.printSummary(outs());

  outs() << "\n--- data races ---\n";
  Result.Races.print(outs(), *Result.PTA);

  outs() << "\n--- lock-order deadlocks ---\n";
  DeadlockReport Deadlocks = detectDeadlocks(*Result.PTA, Result.SHB);
  Deadlocks.print(outs(), *Result.PTA);

  outs() << "\n--- over-synchronization ---\n";
  OverSyncReport OverSync =
      detectOverSynchronization(Result.Sharing, Result.SHB);
  OverSync.print(outs());
  return 0;
}
