//===- android_app.cpp - event-driven app analysis ---------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Analyzes an Android-app-shaped workload (many event-handler origins,
// a few background threads) and demonstrates the Section 4.2 treatment:
// event handlers all run on the looper thread, so O2 serializes them
// with an implicit global lock — handler/handler pairs are not reported,
// while thread/handler pairs still are. Toggling the treatment off shows
// how many false handler/handler warnings it suppresses.
//
//===----------------------------------------------------------------------===//

#include "o2/O2.h"
#include "o2/Support/OutputStream.h"
#include "o2/Workload/BugModels.h"
#include "o2/Workload/Generator.h"

using namespace o2;

static unsigned countKindPairs(const O2Analysis &A, OriginKind K1,
                               OriginKind K2) {
  unsigned N = 0;
  for (const Race &R : A.Races.races()) {
    OriginKind KA = A.SHB.thread(R.ThreadA).Kind;
    OriginKind KB = A.SHB.thread(R.ThreadB).Kind;
    if ((KA == K1 && KB == K2) || (KA == K2 && KB == K1))
      ++N;
  }
  return N;
}

int main() {
  // An app with 6 handlers and 2 background threads sharing state.
  WorkloadProfile P;
  P.Name = "android-demo";
  P.NumThreads = 2;
  P.NumEventHandlers = 6;
  P.RacyObjects = 2;
  P.UnprotectedWritesPerOrigin = 2;
  P.Seed = 2024;
  auto M = generateWorkload(P);

  outs() << "=== with the looper serialization of Section 4.2 ===\n";
  O2Config Serialized;
  O2Analysis A = analyzeModule(*M, Serialized);
  A.printSummary(outs());
  outs() << "thread/handler races:  "
         << countKindPairs(A, OriginKind::Thread, OriginKind::Event) << '\n';
  outs() << "handler/handler races: "
         << countKindPairs(A, OriginKind::Event, OriginKind::Event) << '\n';

  outs() << "\n=== treating handlers as free-running threads ===\n";
  O2Config Parallel;
  Parallel.Detector.SHB.SerializeEventHandlers = false;
  O2Analysis B = analyzeModule(*M, Parallel);
  B.printSummary(outs());
  outs() << "thread/handler races:  "
         << countKindPairs(B, OriginKind::Thread, OriginKind::Event) << '\n';
  outs() << "handler/handler races: "
         << countKindPairs(B, OriginKind::Event, OriginKind::Event) << '\n';
  outs() << "\nfalse handler/handler warnings suppressed by Section 4.2: "
         << (B.Races.numRaces() - A.Races.numRaces()) << '\n';

  // The Firefox Focus bug shows the treatment does not hide real
  // thread<->event races.
  outs() << "\n=== Firefox Focus app-context bug (Bug-1581940) ===\n";
  const BugModel *Firefox = findBugModel("firefox_appctx");
  auto FM = buildBugModel(*Firefox);
  O2Analysis F = analyzeModule(*FM);
  F.Races.print(outs(), *F.PTA);
  return 0;
}
