//===- o2cli.cpp - command-line race detector ---------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Analyzes a textual OIR program:
//
//   o2cli [options] <program.oir>
//   o2cli --bug-model <name>        analyze a built-in bug model
//   o2cli --list-bug-models
//   o2cli --batch [batch options]   run the parallel batch driver
//                                   (see o2batch --help, docs/DRIVER.md)
//
// Exit codes: 0 clean, 1 races found, 2 parse/verify/internal error.
// Only the race analysis affects the exit code; aux findings (deadlocks,
// over-sync regions, RacerD warnings) are informational.
//
// Options:
//   --ctx=<0-ctx|cfa|obj|origin>    context abstraction (default origin)
//   --k=<n>                         context depth (default 1)
//   --solver=<wave|worklist>        PTA constraint engine (default wave)
//   --analyses=<list>               comma-separated analyses to run
//                                   (race, deadlock, oversync, racerd,
//                                   escape, osa, or "all"; default
//                                   osa,race). Shared passes (PTA, SHB)
//                                   are scheduled once and reused.
//   --stats                         print per-phase timings and analysis
//                                   statistics as one JSON object line
//   --no-serialize-events           disable the Section 4.2 treatment
//   --race-engine=<parallel|serial> race-check engine (default parallel;
//                                   both produce byte-identical reports)
//   --race-hb=<index|memo|naive>    serial-engine happens-before queries
//                                   (default index; naive is the oracle)
//   --race-jobs=<n>                 parallel-engine worker threads
//                                   (default: hardware concurrency)
//   --naive                         disable all detector optimizations
//                                   (serial engine, naive HB, no caches)
//   --racerd                        shorthand: add racerd to --analyses
//   --deadlocks                     shorthand: add deadlock to --analyses
//   --oversync                      shorthand: add oversync to --analyses
//   --json                          print the race report as JSON
//   --dot-callgraph                 dump the call graph in Graphviz format
//   --dot-shb                       dump the SHB thread graph in Graphviz
//   --print-module                  echo the parsed module
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/Driver.h"
#include "o2/IR/Parser.h"
#include "o2/IR/Printer.h"
#include "o2/IR/Verifier.h"
#include "o2/O2.h"
#include "o2/PTA/CallGraph.h"
#include "o2/Support/OutputStream.h"
#include "o2/Workload/BugModels.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace o2;

namespace {

struct CliOptions {
  std::string InputFile;
  std::string BugModelName;
  bool ListBugModels = false;
  bool PrintModule = false;
  bool Naive = false;
  bool JSON = false;
  bool Stats = false;
  bool DotCallGraph = false;
  bool DotSHB = false;
  /// The --analyses= request; defaultSet() unless the flag was given.
  AnalysisSet Analyses = AnalysisSet::defaultSet();
  /// Passes added by the --racerd/--deadlocks/--oversync shorthands;
  /// merged into Analyses after parsing so the flags compose with
  /// --analyses= regardless of argument order.
  AnalysisSet Extra;
  O2Config Config;
};

bool parseArgs(int Argc, char **Argv, CliOptions &Cli) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&Arg](const char *Prefix) -> std::string {
      return Arg.substr(std::string(Prefix).size());
    };
    if (Arg == "--list-bug-models") {
      Cli.ListBugModels = true;
    } else if (Arg == "--bug-model" && I + 1 < Argc) {
      Cli.BugModelName = Argv[++I];
    } else if (Arg.rfind("--ctx=", 0) == 0) {
      std::string Kind = Value("--ctx=");
      if (Kind == "0-ctx")
        Cli.Config.PTA.Kind = ContextKind::Insensitive;
      else if (Kind == "cfa")
        Cli.Config.PTA.Kind = ContextKind::KCallsite;
      else if (Kind == "obj")
        Cli.Config.PTA.Kind = ContextKind::KObject;
      else if (Kind == "origin")
        Cli.Config.PTA.Kind = ContextKind::Origin;
      else {
        errs() << "error: unknown context kind '" << Kind << "'\n";
        return false;
      }
    } else if (Arg.rfind("--k=", 0) == 0) {
      Cli.Config.PTA.K = static_cast<unsigned>(std::stoul(Value("--k=")));
    } else if (Arg.rfind("--solver=", 0) == 0) {
      std::string Solver = Value("--solver=");
      if (Solver == "wave")
        Cli.Config.PTA.Solver = SolverKind::Wave;
      else if (Solver == "worklist")
        Cli.Config.PTA.Solver = SolverKind::Worklist;
      else {
        errs() << "error: unknown solver '" << Solver << "'\n";
        return false;
      }
    } else if (Arg.rfind("--analyses=", 0) == 0) {
      std::string Err;
      AnalysisSet Parsed;
      if (!parseAnalysisSet(Value("--analyses="), Parsed, Err)) {
        errs() << "error: " << Err << '\n';
        return false;
      }
      Cli.Analyses = Parsed;
    } else if (Arg == "--stats") {
      Cli.Stats = true;
    } else if (Arg == "--no-serialize-events") {
      Cli.Config.Detector.SHB.SerializeEventHandlers = false;
    } else if (Arg.rfind("--race-engine=", 0) == 0) {
      std::string Engine = Value("--race-engine=");
      if (Engine == "serial")
        Cli.Config.Detector.Engine = RaceEngineKind::Serial;
      else if (Engine == "parallel")
        Cli.Config.Detector.Engine = RaceEngineKind::Parallel;
      else {
        errs() << "error: unknown race engine '" << Engine << "'\n";
        return false;
      }
    } else if (Arg.rfind("--race-hb=", 0) == 0) {
      std::string HB = Value("--race-hb=");
      if (HB == "naive")
        Cli.Config.Detector.HB = RaceHBKind::Naive;
      else if (HB == "memo")
        Cli.Config.Detector.HB = RaceHBKind::Memo;
      else if (HB == "index")
        Cli.Config.Detector.HB = RaceHBKind::Index;
      else {
        errs() << "error: unknown race HB mode '" << HB << "'\n";
        return false;
      }
    } else if (Arg.rfind("--race-jobs=", 0) == 0) {
      Cli.Config.Detector.Jobs =
          static_cast<unsigned>(std::stoul(Value("--race-jobs=")));
    } else if (Arg == "--naive") {
      Cli.Naive = true;
    } else if (Arg == "--racerd") {
      Cli.Extra.insert(O2Phase::RacerD);
    } else if (Arg == "--deadlocks") {
      Cli.Extra.insert(O2Phase::Deadlock);
    } else if (Arg == "--oversync") {
      Cli.Extra.insert(O2Phase::OverSync);
    } else if (Arg == "--json") {
      Cli.JSON = true;
    } else if (Arg == "--dot-callgraph") {
      Cli.DotCallGraph = true;
    } else if (Arg == "--dot-shb") {
      Cli.DotSHB = true;
    } else if (Arg == "--print-module") {
      Cli.PrintModule = true;
    } else if (!Arg.empty() && Arg[0] != '-') {
      Cli.InputFile = Arg;
    } else {
      errs() << "error: unknown option '" << Arg << "'\n";
      return false;
    }
  }
  return true;
}

std::string readFile(const std::string &Path, bool &Ok) {
  Ok = false;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return "";
  std::string Content;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Content.append(Buf, N);
  std::fclose(File);
  Ok = true;
  return Content;
}

/// The classic human-readable pipeline summary, fed from the manager's
/// shared results. Lines for passes that were not requested print their
/// zero shape (matching the pre-manager facade, which defaulted skipped
/// results).
void printSummary(AnalysisManager &AM, OutputStream &OS) {
  const PTAResult &PTA = AM.getPTA();
  OS << "O2 analysis of '" << PTA.module().getName() << "' ("
     << PTA.options().name() << ")\n";
  OS << "  pointer analysis: " << PTA.stats().get("pta.pointer-nodes")
     << " nodes, " << PTA.stats().get("pta.objects") << " objects, "
     << PTA.stats().get("pta.copy-edges") << " edges, "
     << PTA.stats().get("pta.origins") << " origins ("
     << AM.seconds(O2Phase::PTA) << "s)\n";
  if (AM.ran(O2Phase::OSA)) {
    const SharingResult &Sharing = AM.getSharing();
    OS << "  sharing: " << Sharing.sharedLocations().size()
       << " shared locations over " << Sharing.numSharedObjects()
       << " objects, " << Sharing.numSharedAccessStmts() << "/"
       << Sharing.numAccessStmts() << " shared accesses ("
       << AM.seconds(O2Phase::OSA) << "s)\n";
  } else {
    OS << "  sharing: 0 shared locations over 0 objects, 0/0 shared "
          "accesses (0s)\n";
  }
  if (AM.ran(O2Phase::SHB)) {
    const SHBGraph &SHB = AM.getSHB();
    OS << "  SHB: " << SHB.numThreads() << " threads, "
       << SHB.numAccessEvents() << " access events ("
       << AM.seconds(O2Phase::SHB) << "s)\n";
  } else {
    OS << "  SHB: 0 threads, 0 access events (0s)\n";
  }
  if (AM.ran(O2Phase::Detect))
    OS << "  races: " << AM.getRaces().numRaces() << " ("
       << AM.seconds(O2Phase::Detect) + AM.seconds(O2Phase::HBIndex)
       << "s)\n";
}

} // namespace

int main(int Argc, char **Argv) {
  // `o2cli --batch ...` hands everything after --batch to the batch
  // driver (the same engine as the standalone o2batch tool).
  if (Argc > 1 && std::string(Argv[1]) == "--batch")
    return runBatchCommand(std::vector<std::string>(Argv + 2, Argv + Argc));

  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli))
    return ExitError;

  if (Cli.ListBugModels) {
    for (const BugModel &Model : bugModels())
      outs() << Model.Name << "  (" << Model.Subject << ", "
             << Model.ExpectedRaces << " races): " << Model.Description
             << '\n';
    return ExitClean;
  }

  std::unique_ptr<Module> M;
  if (!Cli.BugModelName.empty()) {
    const BugModel *Model = findBugModel(Cli.BugModelName);
    if (!Model) {
      errs() << "error: no bug model named '" << Cli.BugModelName << "'\n";
      return ExitError;
    }
    M = buildBugModel(*Model);
  } else if (!Cli.InputFile.empty()) {
    bool Ok = false;
    std::string Source = readFile(Cli.InputFile, Ok);
    if (!Ok) {
      errs() << "error: cannot read '" << Cli.InputFile << "'\n";
      return ExitError;
    }
    std::string Err;
    M = parseModule(Source, Err, Cli.InputFile);
    if (!M) {
      errs() << Cli.InputFile << ":" << Err << '\n';
      return ExitError;
    }
  } else {
    errs() << "usage: o2cli [options] <program.oir> | --bug-model <name> | "
              "--list-bug-models | --batch [batch options]\n";
    return ExitError;
  }

  std::vector<std::string> Errors;
  if (!verifyModule(*M, Errors)) {
    for (const std::string &E : Errors)
      errs() << "verifier: " << E << '\n';
    return ExitError;
  }

  if (Cli.PrintModule)
    outs() << printModule(*M) << '\n';

  if (Cli.Naive) {
    Cli.Config.Detector.Engine = RaceEngineKind::Serial;
    Cli.Config.Detector.HB = RaceHBKind::Naive;
    Cli.Config.Detector.CacheLocksetChecks = false;
    Cli.Config.Detector.LockRegionMerging = false;
  }

  AnalysisSet Set = Cli.Analyses;
  Set |= Cli.Extra;

  AnalysisManager AM(*M, Cli.Config);
  AM.run(Set);

  int Exit = AM.ran(O2Phase::Detect) && AM.getRaces().numRaces() != 0
                 ? ExitRacesFound
                 : ExitClean;
  if (Cli.DotCallGraph) {
    CallGraph::build(AM.getPTA()).printDot(outs(), AM.getPTA());
    return ExitClean;
  }
  if (Cli.DotSHB) {
    printSHBDot(AM.getSHB(), outs());
    return ExitClean;
  }
  if (Cli.JSON) {
    if (AM.ran(O2Phase::Detect))
      AM.getRaces().printJSON(outs(), AM.getPTA());
    if (Cli.Stats)
      AM.printStatsJSON(outs());
    return Exit;
  }
  if (Cli.Stats) {
    AM.printStatsJSON(outs());
    return Exit;
  }

  printSummary(AM, outs());
  if (AM.ran(O2Phase::Detect)) {
    outs() << '\n';
    AM.getRaces().print(outs(), AM.getPTA());
  }

  if (Set.contains(O2Phase::Deadlock)) {
    outs() << '\n';
    AM.getDeadlocks().print(outs(), AM.getPTA());
  }
  if (Set.contains(O2Phase::OverSync)) {
    outs() << '\n';
    AM.getOverSync().print(outs());
  }
  if (Set.contains(O2Phase::RacerD)) {
    outs() << '\n';
    AM.getRacerD().print(outs());
  }
  if (Set.contains(O2Phase::Escape)) {
    const EscapeResult &Esc = AM.getEscape();
    outs() << '\n'
           << "escape analysis: " << Esc.numEscapedObjects()
           << " escaped objects, " << Esc.numSharedAccessStmts() << "/"
           << Esc.numAccessStmts() << " shared accesses\n";
  }
  return Exit;
}
