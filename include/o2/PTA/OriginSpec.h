//===- o2/PTA/OriginSpec.h - Origin entry points and origin table -*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OriginSpec configures which method names are origin entry points
/// (paper Table 1) and classifies each as a thread or an event handler.
/// OriginTable assigns dense IDs to the origins discovered during
/// origin-sensitive pointer analysis (one per origin allocation instance,
/// duplicated for allocations in loops).
///
//===----------------------------------------------------------------------===//

#ifndef O2_PTA_ORIGINSPEC_H
#define O2_PTA_ORIGINSPEC_H

#include "o2/IR/Module.h"
#include "o2/Support/SmallVector.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace o2 {

/// What kind of concurrent unit an origin models. The distinction matters
/// for the Android treatment (Section 4.2): event handlers running on one
/// looper thread are mutually serialized by an implicit global lock.
enum class OriginKind : uint8_t {
  Main,   ///< The root origin starting at main().
  Thread, ///< A thread-like origin (may run in parallel with anything).
  Event,  ///< An event-handler origin.
};

/// Configures automatic origin identification.
class OriginSpec {
public:
  /// The defaults of the paper's Table 1: run/call (threads) and
  /// handleEvent/onReceive/actionPerformed/onMessageEvent (events).
  static OriginSpec standard();

  /// Registers \p EntryName as an origin entry point of kind \p Kind.
  void addEntry(const std::string &EntryName, OriginKind Kind) {
    Entries[EntryName] = Kind;
  }

  /// True if \p EntryName is a configured origin entry point.
  bool isEntry(const std::string &EntryName) const {
    return Entries.count(EntryName) != 0;
  }

  /// Kind of the entry \p EntryName (must be an entry).
  OriginKind kindOf(const std::string &EntryName) const {
    auto It = Entries.find(EntryName);
    assert(It != Entries.end() && "not an origin entry");
    return It->second;
  }

  /// True if \p C declares or inherits any configured entry method, i.e.
  /// allocations of C are origin allocations (rule ❽).
  bool isOriginClass(const ClassType *C) const {
    for (const auto &[Name, Kind] : Entries) {
      (void)Kind;
      if (C->findMethod(Name))
        return true;
    }
    return false;
  }

  /// The entry method names \p C can dispatch, in name order.
  SmallVector<std::string, 2> entriesOf(const ClassType *C) const {
    SmallVector<std::string, 2> Result;
    for (const auto &[Name, Kind] : Entries) {
      (void)Kind;
      if (C->findMethod(Name))
        Result.push_back(Name);
    }
    return Result;
  }

  const std::map<std::string, OriginKind> &entries() const { return Entries; }

private:
  std::map<std::string, OriginKind> Entries;
};

/// Everything known about one origin.
struct OriginInfo {
  /// Dense origin ID; 0 is always the main origin.
  unsigned Id = 0;

  OriginKind Kind = OriginKind::Main;

  /// The origin class allocated at the origin allocation; null for main.
  const ClassType *Class = nullptr;

  /// Allocation site that created the origin object (~0u for main).
  unsigned AllocSite = ~0u;

  /// Context (handle) the allocation executed under.
  uint32_t ParentCtx = 0;

  /// Loop-duplication index (0, or 1 for the duplicate of an in-loop
  /// allocation).
  unsigned DupIndex = 0;
};

/// Dense registry of origins discovered during the analysis.
class OriginTable {
public:
  OriginTable() {
    // Origin 0: main.
    Origins.push_back(OriginInfo());
  }

  static constexpr unsigned MainOrigin = 0;

  /// Returns the existing origin for the key, or creates it.
  unsigned getOrCreate(unsigned AllocSite, uint32_t ParentCtx,
                       unsigned DupIndex, OriginKind Kind,
                       const ClassType *Class) {
    auto Key = std::make_tuple(AllocSite, ParentCtx, DupIndex);
    auto [It, Inserted] =
        ByKey.emplace(Key, static_cast<unsigned>(Origins.size()));
    if (Inserted) {
      OriginInfo Info;
      Info.Id = It->second;
      Info.Kind = Kind;
      Info.Class = Class;
      Info.AllocSite = AllocSite;
      Info.ParentCtx = ParentCtx;
      Info.DupIndex = DupIndex;
      Origins.push_back(Info);
    }
    return It->second;
  }

  const OriginInfo &info(unsigned Id) const {
    assert(Id < Origins.size() && "invalid origin id");
    return Origins[Id];
  }

  unsigned size() const { return static_cast<unsigned>(Origins.size()); }

  const std::vector<OriginInfo> &origins() const { return Origins; }

private:
  std::vector<OriginInfo> Origins;
  std::map<std::tuple<unsigned, uint32_t, unsigned>, unsigned> ByKey;
};

} // namespace o2

#endif // O2_PTA_ORIGINSPEC_H
