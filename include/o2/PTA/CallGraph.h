//===- o2/PTA/CallGraph.h - Materialized call graph ---------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A materialized view of the context-sensitive call graph the pointer
/// analysis builds on the fly (the paper's origin-sensitive call graph of
/// Figure 2(b) when run under OPA): one node per reachable
/// ⟨function, context⟩ instance, one edge per resolved call, constructor,
/// or spawn target. Provides adjacency queries and Graphviz export.
///
//===----------------------------------------------------------------------===//

#ifndef O2_PTA_CALLGRAPH_H
#define O2_PTA_CALLGRAPH_H

#include "o2/PTA/PointerAnalysis.h"

#include <unordered_map>
#include <vector>

namespace o2 {

class OutputStream;

class CallGraph {
public:
  struct Node {
    unsigned Id = 0;
    const Function *F = nullptr;
    Ctx C = 0;
  };

  struct Edge {
    unsigned Caller = 0;
    unsigned Callee = 0;
    const Stmt *Site = nullptr; ///< CallStmt, AllocStmt (ctor), or SpawnStmt
    bool IsSpawn = false;
  };

  /// Materializes the call graph of \p PTA.
  static CallGraph build(const PTAResult &PTA);

  const std::vector<Node> &nodes() const { return Nodes; }
  const std::vector<Edge> &edges() const { return Edges; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }

  /// Node ID of ⟨F, C⟩, or ~0u if unreachable.
  unsigned nodeId(const Function *F, Ctx C) const {
    auto It = NodeIds.find(key(F, C));
    return It == NodeIds.end() ? ~0u : It->second;
  }

  /// Outgoing edge indices of \p NodeIdx.
  const std::vector<unsigned> &callees(unsigned NodeIdx) const {
    return OutEdges[NodeIdx];
  }

  /// Incoming edge indices of \p NodeIdx.
  const std::vector<unsigned> &callers(unsigned NodeIdx) const {
    return InEdges[NodeIdx];
  }

  /// Distinct functions with at least one reachable instance, in first-
  /// discovery order.
  std::vector<const Function *> reachableFunctions() const;

  /// Graphviz dump; spawn edges are bold, constructor edges dashed.
  void printDot(OutputStream &OS, const PTAResult &PTA) const;

private:
  static uint64_t key(const Function *F, Ctx C) {
    return (uint64_t(F->getId()) << 32) | C;
  }

  std::vector<Node> Nodes;
  std::vector<Edge> Edges;
  std::vector<std::vector<unsigned>> OutEdges;
  std::vector<std::vector<unsigned>> InEdges;
  std::unordered_map<uint64_t, unsigned> NodeIds;
};

} // namespace o2

#endif // O2_PTA_CALLGRAPH_H
