//===- o2/PTA/PointerAnalysis.h - Context-sensitive pointer analysis -*- C++ *-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program, flow-insensitive, field-sensitive, subset-based
/// pointer analysis with an on-the-fly call graph, parameterized by the
/// calling-context abstraction:
///
///   - Insensitive  (the paper's "0-ctx" baseline),
///   - KCallsite    (k-CFA + heap),
///   - KObject      (k-obj + heap),
///   - Origin       (the paper's OPA, Table 2 rules; k-origin for K>1).
///
/// Under Origin sensitivity, contexts are chains of origin IDs; context
/// switches happen only at origin allocations (rule ❽) and origin entry
/// invocations (rule ❾), wrapper functions are distinguished by one
/// call-site, and origins allocated in loops are duplicated.
///
//===----------------------------------------------------------------------===//

#ifndef O2_PTA_POINTERANALYSIS_H
#define O2_PTA_POINTERANALYSIS_H

#include "o2/IR/Module.h"
#include "o2/PTA/OriginSpec.h"
#include "o2/Support/BitVector.h"
#include "o2/Support/CancellationToken.h"
#include "o2/Support/InternTable.h"
#include "o2/Support/Statistic.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace o2 {

/// A calling context: a handle into the analysis's context table. Handle 0
/// is the empty (root) context.
using Ctx = uint32_t;

/// The context abstraction to run with.
enum class ContextKind : uint8_t {
  Insensitive, ///< 0-ctx.
  KCallsite,   ///< k-CFA + heap.
  KObject,     ///< k-obj + heap.
  Origin,      ///< origin-sensitive (OPA); K is the origin-chain depth.
};

/// The constraint-solving engine. Both engines compute the same least
/// fixpoint and produce bit-identical results (points-to sets, call
/// targets, origins, and downstream race reports); they differ only in
/// how propagation is scheduled.
enum class SolverKind : uint8_t {
  Worklist, ///< FIFO worklist, object-at-a-time propagation (baseline).
  Wave,     ///< SCC-collapsing waves with word-level delta propagation.
};

struct PTAOptions {
  ContextKind Kind = ContextKind::Origin;

  /// Context depth k (ignored for Insensitive).
  unsigned K = 1;

  /// Constraint-solving engine.
  SolverKind Solver = SolverKind::Wave;

  /// Origin entry-point configuration (used by Origin sensitivity and by
  /// downstream clients that classify origins).
  OriginSpec Spec = OriginSpec::standard();

  /// Hard cap on pointer nodes; the solver stops growing beyond it and
  /// flags the result, the way the paper reports ">4h" timeouts.
  uint64_t NodeBudget = 4'000'000;

  /// Optional cooperative cancellation, polled each propagation step and
  /// statement scan. On expiry the solver stops and flags the (partial)
  /// result; the batch driver reports the module as timed out in this
  /// phase. Not owned.
  const CancellationToken *Cancel = nullptr;

  /// Short human-readable configuration name ("2-cfa", "1-origin", ...).
  std::string name() const;
};

/// An abstract heap object: allocation site + heap context.
struct ObjInfo {
  unsigned Id = 0;
  unsigned Site = ~0u;         ///< Allocation-site ID.
  Ctx HeapCtx = 0;             ///< Heap context handle.
  const Type *AllocatedType = nullptr;
  const Stmt *Alloc = nullptr; ///< The AllocStmt/ArrayAllocStmt.
  unsigned DupIndex = 0;       ///< Loop-duplication index for origin objects.
};

/// One resolved callee of a call, constructor, or spawn instance.
struct CallTarget {
  const Function *Callee = nullptr;
  Ctx CalleeCtx = 0;
  /// Receiver object for virtual/ctor/spawn targets; ~0u for direct calls.
  unsigned ReceiverObj = ~0u;

  bool operator==(const CallTarget &RHS) const {
    return Callee == RHS.Callee && CalleeCtx == RHS.CalleeCtx &&
           ReceiverObj == RHS.ReceiverObj;
  }
};

/// Field key for field-sensitive points-to storage: 0 denotes the array
/// element pseudo-field "*", and FieldId+1 denotes a named field.
using FieldKey = unsigned;
inline constexpr FieldKey ArrayElemKey = 0;
inline FieldKey fieldKeyOf(const Field *F) { return F->getId() + 1; }

/// The result of a pointer-analysis run: points-to sets, abstract objects,
/// the context-sensitive call graph, and (under Origin sensitivity) the
/// origin table.
class PTAResult {
public:
  const Module &module() const { return *M; }
  const PTAOptions &options() const { return Opts; }

  /// Points-to set of ⟨V, C⟩ as a bitset of object IDs; null if the
  /// variable instance was never reached.
  const BitVector *pts(const Variable *V, Ctx C) const;

  /// Points-to set of a global; null if never reached.
  const BitVector *ptsGlobal(const Global *G) const;

  /// Points-to set of an object field (or array element); null if empty.
  const BitVector *ptsField(unsigned Obj, FieldKey FK) const;

  const std::vector<ObjInfo> &objects() const { return Objects; }
  const ObjInfo &object(unsigned Id) const { return Objects[Id]; }

  /// All reachable ⟨function, context⟩ instances in discovery order.
  const std::vector<std::pair<const Function *, Ctx>> &instances() const {
    return Instances;
  }

  /// Resolved targets of the call/ctor/spawn statement \p S under \p C.
  /// Returns an empty vector for unreached instances.
  const std::vector<CallTarget> &callTargets(const Stmt *S, Ctx C) const;

  const OriginTable &origins() const { return Origins; }

  /// Origin that allocated object \p Obj (i.e. the origin the object
  /// belongs to), or ~0u when origins are not tracked. Under Origin
  /// sensitivity every object has one.
  unsigned originOfObject(unsigned Obj) const {
    return Obj < ObjOrigin.size() ? ObjOrigin[Obj] : ~0u;
  }

  /// Context assigned to origin \p OriginId's entry/constructor.
  Ctx originCtx(unsigned OriginId) const {
    assert(OriginId < OriginCtxs.size() && "invalid origin");
    return OriginCtxs[OriginId];
  }

  /// The origin's attributes (Section 3.1): the abstract objects passed
  /// as pointer arguments to the origin allocation, resolved in the
  /// allocating context. Empty for the main origin and for origins whose
  /// constructors take no reference arguments.
  std::vector<unsigned> originAttributes(unsigned OriginId) const;

  /// The context table (contexts are interned element sequences).
  const InternTable &contexts() const { return Ctxs; }

  /// #pointer nodes / #objects / #PAG edges / #origins, etc.
  const StatisticRegistry &stats() const { return Stats; }

  /// True if the node budget was exhausted (result is partial).
  bool hitBudget() const { return HitBudget; }

  /// True if the run was cancelled via PTAOptions::Cancel (result is
  /// partial and not schedule-independent).
  bool cancelled() const { return Cancelled; }

  /// True if the module has no main() entry point. The verifier reports
  /// this as a verify-error up front; callers that skip verification get
  /// an empty (trivially sound: nothing executes) result with the
  /// "pta.no-entry" counter set instead of tripping an assert.
  bool entryMissing() const { return EntryMissing; }

  /// Renders a context for diagnostics, e.g. "[O1,O3]".
  std::string ctxToString(Ctx C) const;

  /// Executing origin of an instance context: the most recent origin in
  /// the chain, or the main origin for the root context. Only meaningful
  /// for ContextKind::Origin results.
  unsigned originOfCtx(Ctx C) const {
    assert(Opts.Kind == ContextKind::Origin && "origin-sensitive only");
    unsigned Origin = OriginTable::MainOrigin;
    for (uint32_t E : Ctxs.get(C))
      if (!(E & 0x80000000u))
        Origin = E;
    return Origin;
  }

  /// Visits every (object, field-key, points-to set) triple.
  template <typename CallbackT> void forEachFieldPts(CallbackT Callback) const {
    for (const auto &[Key, NodeId] : FieldNodes)
      Callback(static_cast<unsigned>(Key >> 32),
               static_cast<FieldKey>(Key & 0xffffffffu), NodePts[NodeId]);
  }

private:
  friend class PTASolver;

  const Module *M = nullptr;
  PTAOptions Opts;
  InternTable Ctxs;
  std::vector<ObjInfo> Objects;
  OriginTable Origins;
  std::vector<unsigned> ObjOrigin;  ///< object -> origin (~0u none)
  std::vector<Ctx> OriginCtxs;      ///< origin -> entry context
  std::vector<std::pair<const Function *, Ctx>> Instances;
  std::unordered_map<uint64_t, std::vector<CallTarget>> CallTargets;
  std::unordered_map<uint64_t, unsigned> VarNodes;  ///< varId<<32|ctx
  std::vector<int> GlobalNodes;                     ///< globalId -> node/-1
  std::unordered_map<uint64_t, unsigned> FieldNodes; ///< obj<<32|fieldKey
  std::vector<BitVector> NodePts;
  StatisticRegistry Stats;
  bool HitBudget = false;
  bool Cancelled = false;
  bool EntryMissing = false;
};

/// Runs the pointer analysis over \p M (starting at main()) with the given
/// options.
std::unique_ptr<PTAResult> runPointerAnalysis(const Module &M,
                                              const PTAOptions &Opts);

} // namespace o2

#endif // O2_PTA_POINTERANALYSIS_H
