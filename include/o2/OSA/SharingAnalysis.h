//===- o2/OSA/SharingAnalysis.h - Origin-sharing analysis ---------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OSA (paper Section 3.3, Algorithm 1): a linear scan over the reachable
/// ⟨method, origin⟩ instances that computes, for every abstract memory
/// location, the set of origins that read it and the set that write it.
/// A location is origin-shared iff at least two origins access it and at
/// least one of them writes. Compared to thread-escape analysis, OSA also
/// says *how* a location is shared (which origins, reads vs writes),
/// which the race detector consumes directly.
///
//===----------------------------------------------------------------------===//

#ifndef O2_OSA_SHARINGANALYSIS_H
#define O2_OSA_SHARINGANALYSIS_H

#include "o2/OSA/MemLoc.h"
#include "o2/PTA/PointerAnalysis.h"
#include "o2/Support/BitVector.h"

#include <unordered_map>
#include <vector>

namespace o2 {

/// Read/write origin sets of one location.
struct LocAccessSets {
  BitVector ReadOrigins;
  BitVector WriteOrigins;

  /// Origin-shared: ≥2 accessing origins, ≥1 writer.
  bool isShared() const {
    if (WriteOrigins.none())
      return false;
    BitVector All = ReadOrigins;
    All.unionWith(WriteOrigins);
    return All.count() >= 2;
  }
};

class SharingResult {
public:
  /// Access sets of \p Loc; null if the location is never accessed.
  const LocAccessSets *get(MemLoc Loc) const {
    auto It = Locs.find(Loc);
    return It == Locs.end() ? nullptr : &It->second;
  }

  bool isShared(MemLoc Loc) const {
    const LocAccessSets *S = get(Loc);
    return S && S->isShared();
  }

  /// All origin-shared locations, sorted by key (deterministic).
  const std::vector<MemLoc> &sharedLocations() const { return Shared; }

  /// Number of distinct abstract objects with at least one shared
  /// location (globals not included).
  unsigned numSharedObjects() const { return NumSharedObjects; }

  /// Number of access statements that may touch a shared location
  /// (the paper's "#S-access").
  unsigned numSharedAccessStmts() const { return NumSharedAccessStmts; }

  /// Total number of access statements scanned.
  unsigned numAccessStmts() const { return NumAccessStmts; }

  /// True if the access statement with module-wide ID \p StmtId may touch
  /// an origin-shared location.
  bool isSharedAccess(unsigned StmtId) const {
    return StmtId < SharedStmts.size() && SharedStmts.test(StmtId);
  }

  /// True if the scan was cancelled (the result covers a prefix of the
  /// reachable instances).
  bool cancelled() const { return Cancelled; }

private:
  friend class SharingAnalysis;

  bool Cancelled = false;

  std::unordered_map<MemLoc, LocAccessSets> Locs;
  std::vector<MemLoc> Shared;
  BitVector SharedStmts;
  unsigned NumSharedObjects = 0;
  unsigned NumSharedAccessStmts = 0;
  unsigned NumAccessStmts = 0;
};

/// Runs OSA over an Origin-sensitive pointer-analysis result. \p Cancel,
/// when given, is polled per scanned statement; on expiry the scan stops
/// and the partial result is flagged.
SharingResult runSharingAnalysis(const PTAResult &PTA,
                                 const CancellationToken *Cancel = nullptr);

} // namespace o2

#endif // O2_OSA_SHARINGANALYSIS_H
