//===- o2/OSA/EscapeAnalysis.h - Thread-escape baseline -----------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic thread-escape analysis in the style of the TLOA baseline the
/// paper compares OSA against (Section 5.1.2): an object escapes if it is
/// reachable from a global (static field), is an origin (thread/handler)
/// object, or is passed into an origin's constructor or entry, closed
/// under field reachability. Every access whose base may be an escaped
/// object counts as thread-shared — with none of OSA's refinements
/// (per-origin read/write sets, single-thread statics, array handling),
/// so it over-approximates OSA.
///
//===----------------------------------------------------------------------===//

#ifndef O2_OSA_ESCAPEANALYSIS_H
#define O2_OSA_ESCAPEANALYSIS_H

#include "o2/PTA/PointerAnalysis.h"
#include "o2/Support/BitVector.h"
#include "o2/Support/CancellationToken.h"

namespace o2 {

class EscapeResult {
public:
  bool isEscaped(unsigned Obj) const { return Escaped.test(Obj); }
  const BitVector &escapedObjects() const { return Escaped; }
  unsigned numEscapedObjects() const { return Escaped.count(); }

  /// Number of access statements whose target may be thread-shared.
  unsigned numSharedAccessStmts() const { return NumSharedAccessStmts; }
  unsigned numAccessStmts() const { return NumAccessStmts; }

  /// True if a cancellation token fired mid-analysis.
  bool cancelled() const { return Cancelled; }

private:
  friend class EscapeAnalysis;

  BitVector Escaped;
  unsigned NumSharedAccessStmts = 0;
  unsigned NumAccessStmts = 0;
  bool Cancelled = false;
};

/// Runs the escape analysis over any pointer-analysis result. \p Cancel
/// is polled in the field-closure worklist and access-count loops.
EscapeResult runEscapeAnalysis(const PTAResult &PTA,
                               const CancellationToken *Cancel = nullptr);

} // namespace o2

#endif // O2_OSA_ESCAPEANALYSIS_H
