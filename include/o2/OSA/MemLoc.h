//===- o2/OSA/MemLoc.h - Abstract memory locations ----------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MemLoc identifies one abstract memory location the analyses reason
/// about: a field of an abstract object, an abstract array's element
/// pseudo-field "*", or a global (static field). Encoded in one 64-bit
/// key so it can be used directly in hash maps and sorted reports.
///
//===----------------------------------------------------------------------===//

#ifndef O2_OSA_MEMLOC_H
#define O2_OSA_MEMLOC_H

#include "o2/PTA/PointerAnalysis.h"

#include <cstdint>
#include <functional>

namespace o2 {

class MemLoc {
public:
  MemLoc() = default;

  static MemLoc field(unsigned Obj, FieldKey FK) {
    return MemLoc((uint64_t(Obj) << 32) | FK);
  }

  static MemLoc global(unsigned GlobalId) {
    return MemLoc(GlobalBit | GlobalId);
  }

  bool isGlobal() const { return (Key & GlobalBit) != 0; }

  unsigned object() const {
    assert(!isGlobal() && "global location has no object");
    return static_cast<unsigned>(Key >> 32);
  }

  FieldKey fieldKey() const {
    assert(!isGlobal() && "global location has no field");
    return static_cast<FieldKey>(Key & 0xffffffffu);
  }

  unsigned globalId() const {
    assert(isGlobal() && "not a global location");
    return static_cast<unsigned>(Key & 0xffffffffu);
  }

  uint64_t key() const { return Key; }

  bool operator==(const MemLoc &RHS) const { return Key == RHS.Key; }
  bool operator<(const MemLoc &RHS) const { return Key < RHS.Key; }

  /// Renders the location for reports, e.g. "obj12.f3", "obj4[*]", "@g7".
  std::string toString(const PTAResult &PTA) const;

private:
  explicit MemLoc(uint64_t Key) : Key(Key) {}

  static constexpr uint64_t GlobalBit = uint64_t(1) << 63;

  uint64_t Key = ~uint64_t(0);
};

} // namespace o2

template <> struct std::hash<o2::MemLoc> {
  size_t operator()(const o2::MemLoc &L) const {
    return std::hash<uint64_t>()(L.key());
  }
};

#endif // O2_OSA_MEMLOC_H
