//===- o2/Driver/Driver.h - Parallel batch-analysis driver --------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch-analysis engine behind `o2batch` and `o2cli --batch`: takes a
/// corpus of modules (OIR files, in-memory sources, or generated workload
/// profiles), runs the full O2 pipeline over every module concurrently on
/// a work-stealing thread pool, and emits one structured JSONL record per
/// module plus a fleet aggregate. Each job is fully isolated — its own
/// module, its own statistics registry, its own deadline token — so one
/// malformed or pathological input degrades to a per-job `timeout` /
/// `parse-error` record instead of sinking the fleet.
///
/// Output is deterministic: job records are sorted by module name and
/// wall-clock timings are opt-in, so the same corpus produces
/// byte-identical reports regardless of worker count or interleaving.
/// See docs/DRIVER.md for the job model and the JSONL schema.
///
//===----------------------------------------------------------------------===//

#ifndef O2_DRIVER_DRIVER_H
#define O2_DRIVER_DRIVER_H

#include "o2/O2.h"
#include "o2/Workload/Generator.h"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace o2 {

class OutputStream;
class ThreadPool;

/// Terminal state of one analysis job.
enum class JobStatus : uint8_t {
  Clean,         ///< Pipeline completed, no races.
  Races,         ///< Pipeline completed, races reported.
  Timeout,       ///< Deadline fired; partial statistics, JobResult::Phase
                 ///< names the phase that was cut short.
  ParseError,    ///< Unreadable file or OIR syntax error.
  VerifyError,   ///< Parsed but failed module verification.
  InternalError, ///< The pipeline threw; JobResult::Error has the what().
  Crashed,       ///< The isolated worker died (signal, assert, protocol
                 ///< breakdown); JobResult::Signal names the signal and
                 ///< Phase the last stage the worker reported entering.
  OOM,           ///< Allocation failed (std::bad_alloc in-process, or the
                 ///< --mem-limit-mb address-space cap in a worker).
};

/// Stable lowercase name: "clean", "races", "timeout", "parse-error",
/// "verify-error", "internal-error", "crashed", "oom".
const char *jobStatusName(JobStatus S);

/// Process exit codes shared by o2cli and o2batch.
enum ExitCode : int {
  ExitClean = 0,      ///< Analysis ran, no races.
  ExitRacesFound = 1, ///< Analysis ran, races reported.
  ExitError = 2,      ///< Parse/verify/internal error or timeout.
};

/// Maps a job status onto the shared exit-code convention (Crashed and
/// OOM join the error family: exit 2).
int exitCodeFor(JobStatus S);

/// How the batch driver contains a job's failure modes.
enum class IsolationMode : uint8_t {
  InProcess, ///< Jobs run on the pool threads (fast; a crash is fatal).
  Process,   ///< Each job runs in a forked sandboxed worker: RSS cap via
             ///< setrlimit, SIGTERM→SIGKILL hard-kill escalation, and a
             ///< structured result pipe — a crash becomes a `crashed`
             ///< record instead of taking down the fleet.
};

/// One unit of batch work. Exactly one of Source / Path / Profile
/// provides the module: a non-null Profile wins, else a non-empty Source,
/// else Path is read from disk.
struct JobSpec {
  std::string Name;                         ///< Module/report name.
  std::string Path;                         ///< OIR file to read.
  std::string Source;                       ///< In-memory OIR source.
  const WorkloadProfile *Profile = nullptr; ///< Generated workload.
};

struct BatchOptions {
  /// Pipeline configuration applied to every job. The Cancel field is
  /// ignored — the driver installs a per-job deadline token.
  O2Config Config;

  /// Which analyses every job runs (`--analyses=`); infrastructure
  /// passes are scheduled implicitly. Defaults to the classic pipeline
  /// (OSA + race detection).
  AnalysisSet Analyses = AnalysisSet::defaultSet();

  /// Worker threads; 0 picks the hardware concurrency.
  unsigned Jobs = 0;

  /// Per-job analysis budget in milliseconds; 0 means unlimited. The
  /// deadline covers the analysis phases only (not parsing).
  uint64_t DeadlineMs = 0;

  /// Include wall-clock phase timings in the JSONL records. Off by
  /// default so reports are byte-identical across runs.
  bool IncludeTimings = false;

  /// Warm-cache directory (`--cache-dir=`); empty disables caching. See
  /// o2/Driver/ResultCache.h for the key and robustness contract.
  std::string CacheDir;

  /// Fault containment (`--isolate=`). Process mode forks one sandboxed
  /// worker per job; on platforms without fork it silently degrades to
  /// in-process execution.
  IsolationMode Isolate = IsolationMode::InProcess;

  /// Worker address-space cap in MiB (`--mem-limit-mb=`, process
  /// isolation only); 0 means uncapped. An allocation beyond the cap
  /// fails inside the worker and surfaces as an `oom` record.
  uint64_t MemLimitMB = 0;

  /// Hard wall-clock kill for stuck workers (`--kill-after-ms=`, process
  /// isolation only): SIGTERM at the limit, SIGKILL shortly after. 0
  /// derives a limit from DeadlineMs (2x + 10s) when one is set, else no
  /// hard kill. Unlike the cooperative deadline this works on workers
  /// that stopped polling entirely.
  uint64_t HardKillMs = 0;

  /// Bounded retry for transient failures (`--retries=N`): a job ending
  /// in Crashed / OOM / InternalError is re-attempted up to N extra
  /// times with exponential backoff before its failure is reported.
  unsigned Retries = 0;

  /// First retry backoff in milliseconds (doubles per attempt, capped at
  /// 2s). Only consulted when Retries > 0.
  uint64_t RetryBackoffMs = 50;

  /// Sound graceful degradation (`--degrade`): a job whose final outcome
  /// is Timeout or OOM is re-queued once under a cheaper, still-sound
  /// configuration (context-insensitive PTA — a strict over-
  /// approximation of origin contexts — plus extra race-pair budget
  /// slack). A degraded completion is tagged `degraded:true` with the
  /// fallback config fingerprint in the JSONL and is never cached.
  bool Degrade = false;

  /// Worker-side progress hook: called with a stage name ("setup",
  /// "parse", "verify", then each pass name) as the job enters it. The
  /// process-isolation worker uses it to stream `p:<stage>` markers to
  /// the parent so crash records can name the phase; tests may use it to
  /// observe progress. Not part of any fingerprint.
  std::function<void(const std::string &)> StageHook;
};

/// One reported race, rendered with a content-derived fingerprint that is
/// stable across reordering of unrelated statements (it hashes the
/// location's symbolic description and the statement texts, never raw
/// statement IDs).
struct RaceRecord {
  std::string Fingerprint; ///< 16 hex digits, FNV-1a.
  std::string Location;    ///< Human-readable location (obj IDs elided).
  std::string StmtA, FuncA;
  std::string StmtB, FuncB;
  bool WriteA = false, WriteB = false;
  std::string DiffStatus; ///< "" | "new" | "unchanged" (baseline mode).
};

/// One potential deadlock cycle (deadlock analysis section).
struct DeadlockRecord {
  std::string Locks; ///< The cycle's lock names, e.g. "lock3,lock7".
  std::vector<std::string> Witnesses; ///< One rendered edge per step.
};

/// One over-synchronized lock region (oversync analysis section).
struct OverSyncRecord {
  std::string Stmt;     ///< Opening acquire ("" if unknown).
  std::string Function; ///< Its function ("" if unknown).
  unsigned Thread = 0;
  unsigned NumAccesses = 0;
};

/// One RacerD-like warning (racerd analysis section).
struct RacerDRecord {
  std::string Kind; ///< "read-write" | "unprotected-write".
  std::string Location;
  std::string First;
  std::string Second; ///< "" for unprotected writes.
};

struct JobResult {
  std::string Name;
  JobStatus Status = JobStatus::Clean;
  std::string Phase;  ///< Phase the deadline fired in (timeout), or the
                      ///< last stage a crashed worker reported entering.
  std::string Error;  ///< Parse/verify/internal/crash diagnostic.
  std::string Signal; ///< Crashed only: "SIGSEGV", "SIGKILL", ...

  /// True when this result came from the degraded-fallback re-run (the
  /// original attempt timed out or OOMed); DegradedConfigFP is the
  /// fallback configuration's analysis-set fingerprint.
  bool Degraded = false;
  uint64_t DegradedConfigFP = 0;

  /// How many extra attempts the retry policy spent before this result.
  unsigned Retries = 0;

  /// Which analyses this job was asked to run; selects the JSONL
  /// sections. Overlaid from the request (never cached).
  AnalysisSet Analyses;

  /// Per-pass wall-clock, including the aux analyses and the shared
  /// HBIndex build (0 for passes that did not run).
  double PTAMs = 0, OSAMs = 0, SHBMs = 0, HBIndexMs = 0, DetectMs = 0;
  double DeadlockMs = 0, OverSyncMs = 0, RacerDMs = 0, EscapeMs = 0;

  /// Sum over every pass — aux analyses included, unlike the pre-manager
  /// driver which silently dropped everything but the four core phases.
  double totalMs() const {
    return PTAMs + OSAMs + SHBMs + HBIndexMs + DetectMs + DeadlockMs +
           OverSyncMs + RacerDMs + EscapeMs;
  }

  /// Per-job counters from every ran pass (partial on timeout).
  StatisticRegistry Stats;

  std::vector<RaceRecord> Races;
  std::vector<DeadlockRecord> Deadlocks;
  std::vector<OverSyncRecord> OverSyncs;
  std::vector<RacerDRecord> RacerDWarnings;

  /// Baseline fingerprints no longer reported (set by applyBaseline).
  std::vector<std::string> FixedRaces;

  /// Warm-cache outcome for this job (never serialized; feeds the
  /// BatchResult counters, deliberately kept out of the JSONL so cold
  /// and warm reports stay byte-identical).
  enum class CacheOutcome : uint8_t { None, Hit, Miss } Cache =
      CacheOutcome::None;
};

struct BatchResult {
  /// Per-job results sorted by name (deterministic across worker
  /// interleavings).
  std::vector<JobResult> Jobs;

  /// Fleet aggregate: per-status job counts ("jobs.*"), total races,
  /// baseline diff counts, plus every per-job counter folded in via
  /// StatisticRegistry::merge.
  StatisticRegistry Summary;

  /// Warm-cache tallies (zero when no --cache-dir). Kept out of Summary
  /// and the JSONL report: cold and warm runs must produce byte-identical
  /// reports, so cache telemetry only appears in the stderr summary.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;

  /// Worst exit code over all jobs: any error/timeout wins over races,
  /// races win over clean.
  int exitCode() const;
};

/// Runs every spec as an isolated job on a work-stealing pool and folds
/// the results into a deterministic BatchResult.
BatchResult runBatch(const std::vector<JobSpec> &Specs,
                     const BatchOptions &Opts = {});

/// Runs a single spec synchronously (what each pool worker executes).
JobResult runOneJob(const JobSpec &Spec, const BatchOptions &Opts = {});

/// Same, but lends \p SharedPool to the job's parallel race engine
/// (unless the configuration already names a pool). The engine's
/// caller-participation scheduling makes this safe from a pool worker:
/// the job never blocks waiting on unrelated pool tasks, so batch-level
/// and race-level parallelism share one set of threads instead of
/// multiplying. Results are unaffected — the race engine is
/// report-deterministic for any pool.
JobResult runOneJob(const JobSpec &Spec, const BatchOptions &Opts,
                    ThreadPool *SharedPool);

/// Runs one spec in a forked sandboxed worker (fork + result pipe): the
/// child applies the --mem-limit-mb address-space cap, streams stage
/// markers, runs runOneJob, and writes the serialized result back; the
/// parent enforces the hard-kill escalation and classifies worker death
/// (signal -> Crashed with signal name + last stage, cap overrun -> OOM,
/// silent exit -> Crashed). On platforms without fork this falls back to
/// runOneJob. Used by runBatch under IsolationMode::Process; exposed for
/// tests.
JobResult runOneJobIsolated(const JobSpec &Spec, const BatchOptions &Opts);

/// The full containment policy around one job: isolated or in-process
/// execution per Opts.Isolate, bounded retry-with-backoff for Crashed /
/// OOM / InternalError outcomes, then the sound degraded-mode fallback
/// for Timeout / OOM (one re-run, context-insensitive PTA, tagged
/// degraded + never cached). This is what each runBatch pool worker
/// executes.
JobResult runJobContained(const JobSpec &Spec, const BatchOptions &Opts,
                          ThreadPool *SharedPool = nullptr);

/// Baseline for diff mode: module name -> race fingerprints, recovered
/// from a previous JSONL report.
using Baseline = std::map<std::string, std::set<std::string>>;

/// Extracts the baseline from a prior report's content. Tolerant: it
/// scans for "module" / "fingerprint" string values per line, so reports
/// with or without timings both load.
Baseline loadBaseline(const std::string &JSONLContent);

/// Classifies every race in \p R against \p B (DiffStatus = new or
/// unchanged), records baseline fingerprints that disappeared as fixed,
/// and adds the diff.* counters to the summary.
void applyBaseline(BatchResult &R, const Baseline &B);

/// Writes the report: one JSON object per job, then one aggregate record.
void printJSONL(const BatchResult &R, OutputStream &OS,
                bool IncludeTimings = false);

/// Writes a short human-readable fleet summary.
void printBatchSummary(const BatchResult &R, OutputStream &OS);

/// The shared CLI behind `o2batch ...` and `o2cli --batch ...`: parses
/// \p Args (flags plus positional .oir files / directories), runs the
/// batch, writes the JSONL report and summary. Returns the process exit
/// code (aggregate ExitCode, or ExitError on bad usage).
int runBatchCommand(const std::vector<std::string> &Args);

} // namespace o2

#endif // O2_DRIVER_DRIVER_H
