//===- o2/Driver/ResultCache.h - Persistent batch result cache ----*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch driver's warm cache (`o2batch --cache-dir=DIR`): completed
/// job results are serialized to one file per (module content hash,
/// analysis-set config fingerprint) pair, so re-running an unchanged
/// corpus with an unchanged configuration replays byte-identical JSONL
/// records without analyzing anything.
///
/// The key is purely content-derived — the FNV-1a hash of the module
/// *text* (the raw .oir bytes for file/source jobs, the printed module
/// for generated workloads) plus analysisSetFingerprint, which already
/// folds in every result-affecting option, each pass's version, and the
/// dependency closure. Renaming a file or reordering the corpus does not
/// invalidate entries; touching the module text or any result-affecting
/// flag does.
///
/// Robustness contract: a corrupt, truncated, version-skewed, or
/// checksum-mismatched entry degrades to a cache miss, never an error —
/// the job simply runs cold and overwrites the entry. Only terminal
/// Clean/Races results from the *requested* configuration are stored:
/// timeouts, errors, crash records, and degraded-fallback results always
/// re-run (store() enforces this, lookup() re-checks it on replay).
/// Writes are atomic (temp file + rename), so concurrent fleets sharing
/// one directory at worst redo work.
///
//===----------------------------------------------------------------------===//

#ifndef O2_DRIVER_RESULTCACHE_H
#define O2_DRIVER_RESULTCACHE_H

#include "o2/Driver/Driver.h"

#include <string>

namespace o2 {

class ResultCache {
public:
  /// An empty \p Dir disables the cache (lookup always misses, store is
  /// a no-op). The directory is created on first store.
  explicit ResultCache(std::string Dir) : Dir(std::move(Dir)) {}

  bool enabled() const { return !Dir.empty(); }

  /// FNV-1a hash of the module text (the cache key's content half).
  static uint64_t contentHash(const std::string &ModuleText);

  /// Bump when the serialized JobResult layout changes.
  /// 2: shared wire format with the worker pipe — adds signal, degraded,
  ///    fallback fingerprint, and retry fields.
  static constexpr uint32_t FormatVersion = 2;

  /// Loads the entry for (ContentHash, ConfigFP) into \p Out. Returns
  /// false — and leaves \p Out untouched — on absence or any form of
  /// damage. \p Out's Name is NOT restored; the caller overlays the
  /// current spec's name (the same content may live under many names).
  bool lookup(uint64_t ContentHash, uint64_t ConfigFP, JobResult &Out) const;

  /// Serializes \p R under (ContentHash, ConfigFP). Refuses anything
  /// but an undegraded Clean/Races result. Failures (unwritable
  /// directory, full disk) are silently ignored — the cache is an
  /// optimization.
  void store(uint64_t ContentHash, uint64_t ConfigFP,
             const JobResult &R) const;

private:
  std::string entryPath(uint64_t ContentHash, uint64_t ConfigFP) const;

  std::string Dir;
};

} // namespace o2

#endif // O2_DRIVER_RESULTCACHE_H
