//===- o2/Analysis/AnalysisManager.h - Typed pass manager ---------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass manager that replaces the hardwired PTA→OSA→SHB→Detect
/// pipeline. Every analysis the repo grows — the paper's core phases plus
/// the sibling consumers (deadlock, over-synchronization, the RacerD-like
/// baseline, the thread-escape baseline) and the shared HBIndex — is a
/// registered pass with a typed result, declared dependencies, a version,
/// and a deterministic config fingerprint. The manager:
///
///  - topologically schedules the requested passes (dependencies always
///    precede dependents; the order is the enum order, which is exactly
///    the order the old facade hardwired),
///  - computes each result **once** per module and shares it with every
///    consumer (one PTA and one SHB feed race + deadlock + over-sync;
///    one HBIndex feeds both race engines),
///  - threads the per-job CancellationToken uniformly through every pass
///    and records the pass it fired in, so a timeout in *any* analysis —
///    including the aux detectors — names the real phase,
///  - exposes per-pass wall-clock seconds and invocation counters, and
///  - derives a per-pass / whole-request config fingerprint (options that
///    affect the result, pass versions, dependency fingerprints) that the
///    batch driver's warm cache keys on.
///
/// The old one-call `analyzeModule` facade (o2/O2.h) is a thin shim over
/// this class.
///
//===----------------------------------------------------------------------===//

#ifndef O2_ANALYSIS_ANALYSISMANAGER_H
#define O2_ANALYSIS_ANALYSISMANAGER_H

#include "o2/OSA/EscapeAnalysis.h"
#include "o2/OSA/SharingAnalysis.h"
#include "o2/PTA/PointerAnalysis.h"
#include "o2/Race/DeadlockDetector.h"
#include "o2/Race/OverSync.h"
#include "o2/Race/RaceDetector.h"
#include "o2/Race/RacerDLike.h"
#include "o2/SHB/HBIndex.h"
#include "o2/SHB/SHBGraph.h"

#include <functional>
#include <memory>
#include <string>

namespace o2 {

/// Every registered pass, in schedule order (a pass's dependencies always
/// have smaller values, so ascending enum order *is* a topological
/// order). `None` means "no pass" (e.g. "not cancelled"); it is not a
/// schedulable pass. The first five values predate the manager and keep
/// their old meaning: the phase an analysis was cancelled in.
enum class O2Phase : uint8_t {
  None,     ///< Not a pass ("ran to completion").
  PTA,      ///< Origin-sensitive pointer analysis (paper §3.2).
  OSA,      ///< Origin-sharing analysis (paper §3.3).
  SHB,      ///< SHB graph construction (paper §4).
  HBIndex,  ///< Precomputed per-segment reachability clocks.
  Detect,   ///< The race detector (paper §4.1); reported as "race".
  Deadlock, ///< Lock-order deadlock cycles.
  OverSync, ///< Over-synchronized (origin-local) lock regions.
  RacerD,   ///< The syntactic RacerD-like baseline (paper §5).
  Escape,   ///< The thread-escape baseline OSA is compared against.
};

/// Passes are phases: the batch driver's `"phase":` timeout field and the
/// manager's scheduling both speak O2Phase.
using AnalysisKind = O2Phase;

inline constexpr unsigned NumO2Phases = 10;

/// Short stable name of \p P: "pta", "osa", "shb", "hbindex", "race",
/// "deadlock", "oversync", "racerd", "escape" ("" for None). These are
/// also the `--analyses=` spelling of each pass.
const char *phaseName(O2Phase P);

/// A small set of passes. Requesting a pass implicitly requests its
/// dependency closure; the set only records what was asked for.
class AnalysisSet {
public:
  AnalysisSet() = default;
  AnalysisSet(std::initializer_list<O2Phase> Kinds) {
    for (O2Phase K : Kinds)
      insert(K);
  }

  void insert(O2Phase K) { Bits |= maskOf(K); }
  void erase(O2Phase K) { Bits &= ~maskOf(K); }
  bool contains(O2Phase K) const { return (Bits & maskOf(K)) != 0; }
  bool empty() const { return Bits == 0; }

  AnalysisSet &operator|=(AnalysisSet RHS) {
    Bits |= RHS.Bits;
    return *this;
  }
  bool operator==(const AnalysisSet &RHS) const { return Bits == RHS.Bits; }

  /// What `o2batch` runs when no `--analyses=` is given: OSA + the race
  /// detector (the classic pipeline).
  static AnalysisSet defaultSet() {
    return {O2Phase::OSA, O2Phase::Detect};
  }

  /// Every user-facing analysis: race, deadlock, oversync, racerd,
  /// escape, plus OSA.
  static AnalysisSet all() {
    return {O2Phase::OSA,      O2Phase::Detect, O2Phase::Deadlock,
            O2Phase::OverSync, O2Phase::RacerD, O2Phase::Escape};
  }

  /// Canonical comma-separated rendering in schedule order ("osa,race").
  std::string str() const;

private:
  static uint16_t maskOf(O2Phase K) {
    return static_cast<uint16_t>(1u << static_cast<unsigned>(K));
  }
  uint16_t Bits = 0;
};

/// Parses a comma-separated `--analyses=` list ("race,deadlock,oversync",
/// "all", or any phaseName including the infrastructure passes) into
/// \p Out. On failure returns false and names the bad token in \p Err.
bool parseAnalysisSet(const std::string &Spec, AnalysisSet &Out,
                      std::string &Err);

/// Configuration shared by every consumer of the pipeline (o2cli, the
/// batch driver, the benchmarks). Historically defined by o2/O2.h; the
/// manager owns it now and the facade re-exports it.
struct O2Config {
  /// Pointer analysis configuration; defaults to 1-origin (OPA).
  PTAOptions PTA;

  /// Detector configuration (all three optimizations on by default).
  /// Detector.SHB also configures the shared SHB pass.
  RaceDetectorOptions Detector;

  /// Legacy facade switch: run OSA as part of analyzeModule (requires
  /// origin sensitivity). Manager clients request O2Phase::OSA instead.
  bool RunOSA = true;

  /// Optional cooperative deadline/cancellation, threaded into the hot
  /// loop of every pass. When it fires, the in-flight pass stops early,
  /// later passes are skipped, and cancelledIn() records where the
  /// pipeline died. Not owned.
  const CancellationToken *Cancel = nullptr;

  /// Optional hook invoked with each pass right before its body runs.
  /// The batch driver's isolated worker streams these as progress
  /// markers so a crash mid-pass can be attributed to the pass. Excluded
  /// from config fingerprints (it never affects results).
  std::function<void(O2Phase)> OnPassStart;
};

/// Deterministic fingerprint of the configuration as seen by pass \p K:
/// a hash of the result-affecting options, the pass version, and the
/// fingerprints of its dependencies. Pure performance knobs (worker
/// counts, pools, matrix size limits) are excluded — they never change
/// a pass's result.
uint64_t passFingerprint(O2Phase K, const O2Config &Config);

/// Fingerprint of a whole request: the fold of passFingerprint over the
/// dependency closure of \p Set in schedule order. Two (module, request)
/// pairs with equal content hash and equal request fingerprints produce
/// byte-identical reports — this is the warm cache's key.
uint64_t analysisSetFingerprint(AnalysisSet Set, const O2Config &Config);

/// One module's analysis session: computes requested passes at most once
/// each and hands out the shared typed results. Not thread-safe — one
/// manager per job (the batch driver gives every job its own).
class AnalysisManager {
public:
  explicit AnalysisManager(const Module &M, const O2Config &Config = {});
  ~AnalysisManager();

  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  const Module &module() const { return M; }
  const O2Config &config() const { return Config; }

  /// Runs every pass in \p Set (plus dependencies, in schedule order)
  /// that has not run yet. Stops scheduling as soon as a pass reports
  /// cancellation. Returns true if everything requested completed.
  bool run(AnalysisSet Set);

  /// Typed accessors. Each computes the pass (and its dependency closure)
  /// on first use; afterwards it returns the shared result. After a
  /// cancellation, un-run passes return their default-constructed result
  /// — check cancelled() first when that matters.
  const PTAResult &getPTA();
  const SharingResult &getSharing();
  const SHBGraph &getSHB();
  const HBIndex &getHBIndex();
  const RaceReport &getRaces();
  const DeadlockReport &getDeadlocks();
  const OverSyncReport &getOverSync();
  const RacerDReport &getRacerD();
  const EscapeResult &getEscape();

  /// True once pass \p K has produced its result.
  bool ran(O2Phase K) const;

  /// Times pass \p K ran (0 or 1 — the whole point of the manager; the
  /// AnalysisManagerTest asserts the sharing contract through this).
  unsigned invocations(O2Phase K) const;

  /// Wall-clock seconds pass \p K took (0.0 if it never ran).
  double seconds(O2Phase K) const;

  /// Sum of every ran pass's seconds — unlike the old facade total, this
  /// includes the aux analyses and the HBIndex build.
  double totalSeconds() const;

  /// The pass the cancellation token fired in; None if no pass was cut
  /// short. Passes after the cancelled one are skipped.
  O2Phase cancelledIn() const { return CancelledIn; }
  bool cancelled() const { return CancelledIn != O2Phase::None; }

  /// Per-pass config fingerprint (see passFingerprint).
  uint64_t fingerprint(O2Phase K) const {
    return passFingerprint(K, Config);
  }

  /// Every counter the ran passes produced, merged: pta.*, osa.*,
  /// race.*, deadlock.*, oversync.*, racerd.*, escape.*.
  StatisticRegistry stats() const;

  /// One flat JSON object: "module", "config", "solver", "analyses",
  /// per-pass "time.<pass>-ms" for every ran pass, "time.total-ms", then
  /// every merged counter. The manager-era superset of the old
  /// O2Analysis::printStatsJSON — aux analyses included.
  void printStatsJSON(OutputStream &OS);

  /// Ownership transfer for the analyzeModule shim: moves the stored
  /// result out (the pass stays marked as ran; the accessor afterwards
  /// returns a moved-from/default result).
  std::unique_ptr<PTAResult> takePTA();
  SharingResult takeSharing();
  SHBGraph takeSHB();
  RaceReport takeRaces();

private:
  struct Impl;

  /// Ensures pass \p K and its dependencies have run (unless cancelled).
  void ensure(O2Phase K);
  void runPass(O2Phase K);

  const Module &M;
  O2Config Config;
  O2Phase CancelledIn = O2Phase::None;
  std::unique_ptr<Impl> P;
};

} // namespace o2

#endif // O2_ANALYSIS_ANALYSISMANAGER_H
