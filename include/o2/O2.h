//===- o2/O2.h - O2 public facade ----------------------------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call public API: run the full O2 pipeline — origin-sensitive
/// pointer analysis (OPA), origin-sharing analysis (OSA), SHB graph
/// construction, and the optimized race detector — over an OIR module.
///
/// \code
///   std::unique_ptr<Module> M = parseModule(Source, Err);
///   O2Analysis Result = analyzeModule(*M);
///   Result.Races.print(outs(), *Result.PTA);
/// \endcode
///
/// analyzeModule is a compatibility shim over the AnalysisManager
/// (o2/Analysis/AnalysisManager.h), which also owns O2Config, O2Phase
/// and phaseName — they are re-exported from here unchanged. Clients
/// that want the aux detectors (deadlock, over-sync, RacerD-like,
/// escape), result sharing across detectors, or per-pass fingerprints
/// use the manager directly.
///
//===----------------------------------------------------------------------===//

#ifndef O2_O2_H
#define O2_O2_H

#include "o2/Analysis/AnalysisManager.h"

#include <memory>

namespace o2 {

class OutputStream;

/// Everything one O2 run produces, with per-phase wall-clock times the
/// way the paper's tables report them.
struct O2Analysis {
  std::unique_ptr<PTAResult> PTA;
  SharingResult Sharing;
  SHBGraph SHB;
  RaceReport Races;

  double PTASeconds = 0;
  double OSASeconds = 0;
  double SHBSeconds = 0;
  double DetectSeconds = 0;

  /// Phase the cancellation token fired in; None if the pipeline ran to
  /// completion. Phases after the cancelled one are default-constructed.
  O2Phase CancelledIn = O2Phase::None;

  bool cancelled() const { return CancelledIn != O2Phase::None; }

  double totalSeconds() const {
    return PTASeconds + OSASeconds + SHBSeconds + DetectSeconds;
  }

  /// One-paragraph summary: phases, sizes, race count.
  void printSummary(OutputStream &OS) const;

  /// One flat JSON object with per-phase wall-clock times in
  /// milliseconds ("time.pta-ms", "time.osa-ms", "time.shb-ms",
  /// "time.race-ms", "time.total-ms") followed by every PTA and race
  /// statistic, for machine consumption (o2cli --stats, BENCH_*.json).
  void printStatsJSON(OutputStream &OS) const;
};

/// Runs the configured pipeline over \p M (which must verify).
O2Analysis analyzeModule(const Module &M, const O2Config &Config = {});

} // namespace o2

#endif // O2_O2_H
