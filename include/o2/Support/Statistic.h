//===- o2/Support/Statistic.h - Analysis statistics ------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters collected during an analysis run, printable as a uniform
/// report (the analogue of llvm::Statistic, but instance-based so that
/// concurrent/independent analysis runs do not share mutable globals).
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_STATISTIC_H
#define O2_SUPPORT_STATISTIC_H

#include <cstdint>
#include <map>
#include <string>

namespace o2 {

class OutputStream;

/// A set of named monotone counters. Keys iterate in sorted order so the
/// report is deterministic.
class StatisticRegistry {
public:
  /// Adds \p Delta to the counter named \p Name (creating it at zero).
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Sets the counter named \p Name to \p Value.
  void set(const std::string &Name, uint64_t Value) { Counters[Name] = Value; }

  /// Returns the value of \p Name, or 0 if never touched.
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Adds every counter of \p Other into this registry. The batch driver
  /// uses this to fold per-job registries into a fleet aggregate: each
  /// concurrent job owns its registry (no process-global mutable state),
  /// and merging happens after the job finished.
  void merge(const StatisticRegistry &Other) {
    for (const auto &[Name, Value] : Other.Counters)
      Counters[Name] += Value;
  }

  bool empty() const { return Counters.empty(); }

  /// Prints "value  name" lines, sorted by name.
  void print(OutputStream &OS) const;

  const std::map<std::string, uint64_t> &counters() const { return Counters; }

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace o2

#endif // O2_SUPPORT_STATISTIC_H
