//===- o2/Support/InternTable.h - Sequence interning ------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns small sequences of 32-bit IDs into dense handles. This is the
/// backbone of two paper mechanisms: calling contexts (k-CFA strings,
/// k-obj strings, origin chains) and canonical lockset IDs (Section 4.1's
/// "compact representation of locksets").
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_INTERNTABLE_H
#define O2_SUPPORT_INTERNTABLE_H

#include "o2/Support/ArrayRef.h"
#include "o2/Support/Compiler.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace o2 {

/// Maps sequences of uint32_t to dense uint32_t handles. Handle 0 is always
/// the empty sequence. Lookup of a handle's elements is O(1).
class InternTable {
public:
  using Handle = uint32_t;

  InternTable() {
    // Pre-intern the empty sequence as handle 0.
    Offsets.push_back(0);
    Lengths.push_back(0);
    Map.emplace(hashOf({}), std::vector<Handle>{0});
  }

  /// Interns \p Elems, returning its dense handle.
  Handle intern(ArrayRef<uint32_t> Elems) {
    uint64_t H = hashOf(Elems);
    auto It = Map.find(H);
    if (It != Map.end()) {
      for (Handle Cand : It->second)
        if (get(Cand) == Elems)
          return Cand;
    }
    Handle NewHandle = static_cast<Handle>(Lengths.size());
    Offsets.push_back(static_cast<uint32_t>(Pool.size()));
    Lengths.push_back(static_cast<uint32_t>(Elems.size()));
    Pool.insert(Pool.end(), Elems.begin(), Elems.end());
    Map[H].push_back(NewHandle);
    return NewHandle;
  }

  /// Returns the elements of \p H. The view is invalidated by intern().
  ArrayRef<uint32_t> get(Handle H) const {
    assert(H < Lengths.size() && "invalid intern handle");
    return ArrayRef<uint32_t>(Pool.data() + Offsets[H], Lengths[H]);
  }

  size_t size() const { return Lengths.size(); }

  static constexpr Handle Empty = 0;

private:
  static uint64_t hashOf(ArrayRef<uint32_t> Elems) {
    uint64_t H = 0xcbf29ce484222325ULL;
    for (uint32_t E : Elems) {
      H ^= E;
      H *= 0x100000001b3ULL;
    }
    return H;
  }

  std::vector<uint32_t> Pool;
  std::vector<uint32_t> Offsets;
  std::vector<uint32_t> Lengths;
  std::unordered_map<uint64_t, std::vector<Handle>> Map;
};

} // namespace o2

#endif // O2_SUPPORT_INTERNTABLE_H
