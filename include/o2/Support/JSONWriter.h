//===- o2/Support/JSONWriter.h - Streaming JSON output ------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used to emit machine-readable analysis
/// reports (race reports, statistics) without pulling in a JSON library.
/// The writer tracks nesting and inserts commas; the caller is
/// responsible for well-formed begin/end pairing (checked by asserts).
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_JSONWRITER_H
#define O2_SUPPORT_JSONWRITER_H

#include "o2/Support/OutputStream.h"

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

namespace o2 {

class JSONWriter {
public:
  explicit JSONWriter(OutputStream &OS) : OS(OS) {}

  ~JSONWriter() { assert(Stack.empty() && "unbalanced JSON nesting"); }

  void beginObject() {
    prepareValue();
    OS << '{';
    Stack.push_back({/*IsObject=*/true, /*Count=*/0});
  }

  void endObject() {
    assert(!Stack.empty() && Stack.back().IsObject && "not in an object");
    Stack.pop_back();
    OS << '}';
  }

  void beginArray() {
    prepareValue();
    OS << '[';
    Stack.push_back({/*IsObject=*/false, /*Count=*/0});
  }

  void endArray() {
    assert(!Stack.empty() && !Stack.back().IsObject && "not in an array");
    Stack.pop_back();
    OS << ']';
  }

  /// Emits an object key; the next emitted value belongs to it.
  void key(std::string_view Name) {
    assert(!Stack.empty() && Stack.back().IsObject && "key outside object");
    if (Stack.back().Count++)
      OS << ',';
    writeString(Name);
    OS << ':';
    PendingKey = true;
  }

  void value(std::string_view S) {
    prepareValue();
    writeString(S);
  }
  void value(const char *S) { value(std::string_view(S)); }
  void value(int64_t N) {
    prepareValue();
    OS << N;
  }
  void value(uint64_t N) {
    prepareValue();
    OS << N;
  }
  void value(int N) { value(int64_t(N)); }
  void value(unsigned N) { value(uint64_t(N)); }
  void value(bool B) {
    prepareValue();
    OS << (B ? "true" : "false");
  }
  void value(double D) {
    prepareValue();
    OS << D;
  }
  void nullValue() {
    prepareValue();
    OS << "null";
  }

  /// key(...) followed by value(...).
  template <typename T> void attribute(std::string_view Name, T Val) {
    key(Name);
    value(Val);
  }

private:
  struct Frame {
    bool IsObject;
    unsigned Count;
  };

  void prepareValue() {
    if (PendingKey) {
      PendingKey = false;
      return;
    }
    if (!Stack.empty()) {
      assert(!Stack.back().IsObject &&
             "object members need a key before the value");
      if (Stack.back().Count++)
        OS << ',';
    }
  }

  void writeString(std::string_view S) {
    OS << '"';
    for (char C : S) {
      switch (C) {
      case '"':
        OS << "\\\"";
        break;
      case '\\':
        OS << "\\\\";
        break;
      case '\n':
        OS << "\\n";
        break;
      case '\t':
        OS << "\\t";
        break;
      case '\r':
        OS << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          const char *Hex = "0123456789abcdef";
          char Buf[7] = {'\\', 'u', '0', '0',
                         Hex[(C >> 4) & 0xf], Hex[C & 0xf], 0};
          OS << Buf;
        } else {
          OS << C;
        }
      }
    }
    OS << '"';
  }

  OutputStream &OS;
  std::vector<Frame> Stack;
  bool PendingKey = false;
};

} // namespace o2

#endif // O2_SUPPORT_JSONWRITER_H
