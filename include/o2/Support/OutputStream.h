//===- o2/Support/OutputStream.h - Lightweight output streams --*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal raw_ostream replacement: library code never includes
/// <iostream> (which injects static constructors). outs()/errs() wrap
/// stdout/stderr; StringOutputStream renders into a std::string.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_OUTPUTSTREAM_H
#define O2_SUPPORT_OUTPUTSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace o2 {

/// Abstract byte sink with formatting operators for the types O2 prints.
class OutputStream {
public:
  virtual ~OutputStream();

  OutputStream &operator<<(std::string_view S) {
    write(S.data(), S.size());
    return *this;
  }

  OutputStream &operator<<(const char *S) {
    return *this << std::string_view(S);
  }

  OutputStream &operator<<(const std::string &S) {
    return *this << std::string_view(S);
  }

  OutputStream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }

  OutputStream &operator<<(uint64_t N);
  OutputStream &operator<<(int64_t N);
  OutputStream &operator<<(uint32_t N) { return *this << uint64_t(N); }
  OutputStream &operator<<(int32_t N) { return *this << int64_t(N); }
  OutputStream &operator<<(double D);
  OutputStream &operator<<(bool B) { return *this << (B ? "true" : "false"); }

  /// Writes \p Size bytes starting at \p Data.
  virtual void write(const char *Data, size_t Size) = 0;

  /// Indents by \p NumSpaces spaces.
  OutputStream &indent(unsigned NumSpaces);
};

/// Stream that appends to a caller-owned std::string.
class StringOutputStream : public OutputStream {
public:
  explicit StringOutputStream(std::string &Buffer) : Buffer(Buffer) {}

  void write(const char *Data, size_t Size) override {
    Buffer.append(Data, Size);
  }

  const std::string &str() const { return Buffer; }

private:
  std::string &Buffer;
};

/// Stream over a C FILE*. Does not own the file.
class FileOutputStream : public OutputStream {
public:
  explicit FileOutputStream(std::FILE *File) : File(File) {}

  void write(const char *Data, size_t Size) override {
    std::fwrite(Data, 1, Size, File);
  }

private:
  std::FILE *File;
};

/// Returns a stream for standard output.
OutputStream &outs();

/// Returns a stream for standard error.
OutputStream &errs();

} // namespace o2

#endif // O2_SUPPORT_OUTPUTSTREAM_H
