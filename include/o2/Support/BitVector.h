//===- o2/Support/BitVector.h - Dense bit vector ---------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically sized dense set of bits with word-at-a-time set
/// operations, used for points-to sets and reachability masks.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_BITVECTOR_H
#define O2_SUPPORT_BITVECTOR_H

#include "o2/Support/Compiler.h"

#include <cstdint>
#include <vector>

namespace o2 {

class BitVector {
public:
  using Word = uint64_t;
  static constexpr unsigned WordBits = 64;

  BitVector() = default;
  explicit BitVector(unsigned NumBits, bool Value = false)
      : NumBits(NumBits),
        Words((NumBits + WordBits - 1) / WordBits,
              Value ? ~Word(0) : Word(0)) {
    clearUnusedBits();
  }

  unsigned size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  /// Grows (never shrinks) to hold at least \p N bits; new bits are zero.
  void ensureSize(unsigned N) {
    if (N <= NumBits)
      return;
    NumBits = N;
    Words.resize((NumBits + WordBits - 1) / WordBits, 0);
  }

  void resize(unsigned N, bool Value = false) {
    unsigned OldBits = NumBits;
    NumBits = N;
    Words.resize((NumBits + WordBits - 1) / WordBits, Value ? ~Word(0) : 0);
    if (Value && N > OldBits && OldBits % WordBits != 0) {
      // The partial old last word must get its upper bits set.
      Words[OldBits / WordBits] |= ~Word(0) << (OldBits % WordBits);
    }
    clearUnusedBits();
  }

  bool test(unsigned Idx) const {
    if (Idx >= NumBits)
      return false;
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  bool operator[](unsigned Idx) const { return test(Idx); }

  /// Sets bit \p Idx, growing if needed; returns true if the bit was newly
  /// set (useful for worklist algorithms).
  bool set(unsigned Idx) {
    ensureSize(Idx + 1);
    Word Mask = Word(1) << (Idx % WordBits);
    Word &W = Words[Idx / WordBits];
    if (W & Mask)
      return false;
    W |= Mask;
    return true;
  }

  void reset(unsigned Idx) {
    if (Idx >= NumBits)
      return;
    Words[Idx / WordBits] &= ~(Word(1) << (Idx % WordBits));
  }

  void clear() {
    for (Word &W : Words)
      W = 0;
  }

  /// this |= RHS. Returns true if any bit changed.
  bool unionWith(const BitVector &RHS) { return unionWithChanged(RHS); }

  /// this |= RHS, word-at-a-time; returns true if any bit was newly added.
  /// The name documents call sites that rely on the bulk word-level path
  /// (bulk points-to propagation) rather than per-bit set() loops.
  bool unionWithChanged(const BitVector &RHS) {
    ensureSize(RHS.NumBits);
    bool Changed = false;
    for (size_t I = 0, E = RHS.Words.size(); I != E; ++I) {
      Word Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// this |= RHS; the bits newly added here (RHS & ~old(this)) are also
  /// OR'd into \p NewBits. Returns true if any bit was added. Safe when
  /// &RHS == this (a self-union adds nothing); \p NewBits must be a
  /// distinct vector.
  bool unionWithDiff(const BitVector &RHS, BitVector &NewBits) {
    ensureSize(RHS.NumBits);
    NewBits.ensureSize(RHS.NumBits);
    bool Changed = false;
    for (size_t I = 0, E = RHS.Words.size(); I != E; ++I) {
      Word Added = RHS.Words[I] & ~Words[I];
      if (!Added)
        continue;
      Words[I] |= Added;
      NewBits.Words[I] |= Added;
      Changed = true;
    }
    return Changed;
  }

  /// Returns this & ~RHS (the bits only this vector has).
  BitVector diff(const BitVector &RHS) const {
    BitVector Out;
    Out.NumBits = NumBits;
    Out.Words.resize(Words.size());
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Out.Words[I] = Words[I] & ~(I < RHS.Words.size() ? RHS.Words[I] : 0);
    return Out;
  }

  /// Calls \p Callback(WordIndex, WordValue) for every nonzero word.
  template <typename CallbackT> void forEachSetWord(CallbackT Callback) const {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I])
        Callback(I, Words[I]);
  }

  /// Number of nonzero words (the unit bulk-propagation statistics count).
  unsigned numSetWords() const {
    unsigned N = 0;
    for (Word W : Words)
      N += W != 0;
    return N;
  }

  /// this &= RHS.
  void intersectWith(const BitVector &RHS) {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= I < RHS.Words.size() ? RHS.Words[I] : 0;
  }

  bool intersects(const BitVector &RHS) const {
    size_t E = std::min(Words.size(), RHS.Words.size());
    for (size_t I = 0; I != E; ++I)
      if (Words[I] & RHS.Words[I])
        return true;
    return false;
  }

  /// Number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (Word W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  bool any() const {
    for (Word W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  /// Index of the first set bit, or -1 if none.
  int findFirst() const { return findNext(0); }

  /// Index of the first set bit at position >= \p From, or -1.
  int findNext(unsigned From) const {
    if (From >= NumBits)
      return -1;
    unsigned WordIdx = From / WordBits;
    Word W = Words[WordIdx] & (~Word(0) << (From % WordBits));
    while (true) {
      if (W)
        return static_cast<int>(WordIdx * WordBits +
                                static_cast<unsigned>(__builtin_ctzll(W)));
      if (++WordIdx >= Words.size())
        return -1;
      W = Words[WordIdx];
    }
  }

  bool operator==(const BitVector &RHS) const {
    size_t Common = std::min(Words.size(), RHS.Words.size());
    for (size_t I = 0; I != Common; ++I)
      if (Words[I] != RHS.Words[I])
        return false;
    for (size_t I = Common; I < Words.size(); ++I)
      if (Words[I])
        return false;
    for (size_t I = Common; I < RHS.Words.size(); ++I)
      if (RHS.Words[I])
        return false;
    return true;
  }

  /// Iterates over indices of set bits.
  class SetBitIterator {
  public:
    SetBitIterator(const BitVector &BV, int Pos) : BV(BV), Pos(Pos) {}
    unsigned operator*() const { return static_cast<unsigned>(Pos); }
    SetBitIterator &operator++() {
      Pos = BV.findNext(static_cast<unsigned>(Pos) + 1);
      return *this;
    }
    bool operator!=(const SetBitIterator &RHS) const { return Pos != RHS.Pos; }

  private:
    const BitVector &BV;
    int Pos;
  };

  SetBitIterator begin() const { return SetBitIterator(*this, findFirst()); }
  SetBitIterator end() const { return SetBitIterator(*this, -1); }

private:
  void clearUnusedBits() {
    if (NumBits % WordBits != 0 && !Words.empty())
      Words.back() &= (Word(1) << (NumBits % WordBits)) - 1;
  }

  unsigned NumBits = 0;
  std::vector<Word> Words;
};

} // namespace o2

#endif // O2_SUPPORT_BITVECTOR_H
