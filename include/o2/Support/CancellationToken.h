//===- o2/Support/CancellationToken.h - Deadlines & cancellation -*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for long-running analyses. A CancellationToken
/// carries an optional wall-clock deadline and a cancelled flag; the
/// analysis phases poll it at propagation-round / statement-scan
/// granularity and unwind with a partial, flagged result when it fires.
/// This is what lets one exploding module in a batch run degrade
/// gracefully instead of stalling the fleet.
///
/// Threading model: any thread may call cancel(); poll() may be called
/// concurrently from many threads (the parallel race engine's shard
/// workers all poll one token) — the poll counter is a relaxed atomic, so
/// the fast path stays two relaxed atomic ops and the 1-in-64 clock-read
/// sampling is approximate across pollers, which is fine for a deadline.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_CANCELLATIONTOKEN_H
#define O2_SUPPORT_CANCELLATIONTOKEN_H

#include <atomic>
#include <chrono>

namespace o2 {

class CancellationToken {
public:
  CancellationToken() = default;

  // The token is handed out by address; accidental copies would silently
  // split the cancelled flag.
  CancellationToken(const CancellationToken &) = delete;
  CancellationToken &operator=(const CancellationToken &) = delete;

  /// Arms a deadline \p Millis milliseconds from now. A zero/negative
  /// budget is already expired: the next poll() cancels.
  void setDeadlineMs(double Millis) {
    Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double, std::milli>(
                                      Millis));
    HasDeadline = true;
  }

  /// Cancels immediately (thread-safe).
  void cancel() { Cancelled.store(true, std::memory_order_relaxed); }

  /// True once cancel() was called or a poll() observed the deadline.
  bool isCancelled() const {
    return Cancelled.load(std::memory_order_relaxed);
  }

  /// Hot-loop check: one relaxed load, plus a clock read on the first and
  /// then roughly every 64th call when a deadline is armed. Latches the
  /// cancelled flag once the deadline passes. Safe to call from multiple
  /// threads (see file comment).
  bool poll() const {
    if (Cancelled.load(std::memory_order_relaxed))
      return true;
    if (!HasDeadline)
      return false;
    if (PollCount.fetch_add(1, std::memory_order_relaxed) % 64 != 0)
      return false;
    if (Clock::now() >= Deadline) {
      Cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

private:
  using Clock = std::chrono::steady_clock;

  mutable std::atomic<bool> Cancelled{false};
  mutable std::atomic<uint64_t> PollCount{0};
  Clock::time_point Deadline{};
  bool HasDeadline = false;
};

/// Null-tolerant poll, for options structs that default to no token.
inline bool pollCancelled(const CancellationToken *Token) {
  return Token && Token->poll();
}

} // namespace o2

#endif // O2_SUPPORT_CANCELLATIONTOKEN_H
