//===- o2/Support/SmallVector.h - Small-size optimized vector --*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector that stores the first N elements inline, in the spirit of
/// llvm::SmallVector. APIs that only read a sequence should accept
/// ArrayRef (see o2/Support/ArrayRef.h); APIs that append should accept
/// SmallVectorImpl<T> so the inline size does not leak into signatures.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_SMALLVECTOR_H
#define O2_SUPPORT_SMALLVECTOR_H

#include "o2/Support/Compiler.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace o2 {

/// Size-erased common base so SmallVectorImpl<T> can be used as a parameter
/// type independent of the inline element count.
template <typename T> class SmallVectorImpl {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using size_type = size_t;
  using reference = T &;
  using const_reference = const T &;

  SmallVectorImpl(const SmallVectorImpl &) = delete;

  iterator begin() { return Begin; }
  const_iterator begin() const { return Begin; }
  iterator end() { return Begin + Sz; }
  const_iterator end() const { return Begin + Sz; }

  size_t size() const { return Sz; }
  size_t capacity() const { return Cap; }
  bool empty() const { return Sz == 0; }

  T *data() { return Begin; }
  const T *data() const { return Begin; }

  reference operator[](size_t Idx) {
    assert(Idx < Sz && "SmallVector index out of range");
    return Begin[Idx];
  }
  const_reference operator[](size_t Idx) const {
    assert(Idx < Sz && "SmallVector index out of range");
    return Begin[Idx];
  }

  reference front() {
    assert(!empty() && "front() on empty SmallVector");
    return Begin[0];
  }
  const_reference front() const {
    assert(!empty() && "front() on empty SmallVector");
    return Begin[0];
  }
  reference back() {
    assert(!empty() && "back() on empty SmallVector");
    return Begin[Sz - 1];
  }
  const_reference back() const {
    assert(!empty() && "back() on empty SmallVector");
    return Begin[Sz - 1];
  }

  void push_back(const T &Elt) { emplace_back(Elt); }
  void push_back(T &&Elt) { emplace_back(std::move(Elt)); }

  template <typename... ArgTypes> reference emplace_back(ArgTypes &&...Args) {
    if (O2_UNLIKELY(Sz == Cap))
      grow(Sz + 1);
    ::new (static_cast<void *>(Begin + Sz)) T(std::forward<ArgTypes>(Args)...);
    return Begin[Sz++];
  }

  void pop_back() {
    assert(!empty() && "pop_back() on empty SmallVector");
    --Sz;
    Begin[Sz].~T();
  }

  /// Removes all elements; keeps the current allocation.
  void clear() {
    destroyRange(Begin, Begin + Sz);
    Sz = 0;
  }

  void reserve(size_t N) {
    if (N > Cap)
      grow(N);
  }

  void resize(size_t N) {
    if (N < Sz) {
      destroyRange(Begin + N, Begin + Sz);
      Sz = N;
      return;
    }
    reserve(N);
    while (Sz < N)
      ::new (static_cast<void *>(Begin + Sz++)) T();
  }

  void resize(size_t N, const T &Val) {
    if (N < Sz) {
      destroyRange(Begin + N, Begin + Sz);
      Sz = N;
      return;
    }
    reserve(N);
    while (Sz < N)
      ::new (static_cast<void *>(Begin + Sz++)) T(Val);
  }

  template <typename IterTy> void append(IterTy First, IterTy Last) {
    size_t NumInputs = static_cast<size_t>(std::distance(First, Last));
    reserve(Sz + NumInputs);
    for (; First != Last; ++First)
      ::new (static_cast<void *>(Begin + Sz++)) T(*First);
  }

  void append(std::initializer_list<T> IL) { append(IL.begin(), IL.end()); }

  void assign(std::initializer_list<T> IL) {
    clear();
    append(IL);
  }

  template <typename IterTy> void assign(IterTy First, IterTy Last) {
    clear();
    append(First, Last);
  }

  /// Erases the element at \p Pos, shifting the tail left by one.
  iterator erase(iterator Pos) {
    assert(Pos >= begin() && Pos < end() && "erase() position out of range");
    std::move(Pos + 1, end(), Pos);
    pop_back();
    return Pos;
  }

  /// Erases the range [First, Last).
  iterator erase(iterator First, iterator Last) {
    assert(First >= begin() && First <= Last && Last <= end() &&
           "erase() range out of bounds");
    iterator NewEnd = std::move(Last, end(), First);
    destroyRange(NewEnd, end());
    Sz = static_cast<size_t>(NewEnd - Begin);
    return First;
  }

  SmallVectorImpl &operator=(const SmallVectorImpl &RHS) {
    if (this != &RHS)
      assign(RHS.begin(), RHS.end());
    return *this;
  }

  SmallVectorImpl &operator=(SmallVectorImpl &&RHS) {
    if (this == &RHS)
      return *this;
    if (!RHS.isSmall()) {
      // Steal the heap allocation.
      destroyRange(Begin, Begin + Sz);
      if (!isSmall())
        ::operator delete(Begin);
      Begin = RHS.Begin;
      Sz = RHS.Sz;
      Cap = RHS.Cap;
      RHS.resetToSmall();
      return *this;
    }
    clear();
    reserve(RHS.Sz);
    for (size_t I = 0, E = RHS.Sz; I != E; ++I)
      ::new (static_cast<void *>(Begin + I)) T(std::move(RHS.Begin[I]));
    Sz = RHS.Sz;
    RHS.clear();
    return *this;
  }

  bool operator==(const SmallVectorImpl &RHS) const {
    return Sz == RHS.Sz && std::equal(begin(), end(), RHS.begin());
  }

protected:
  SmallVectorImpl(T *SmallStorage, size_t SmallCap)
      : Begin(SmallStorage), Small(SmallStorage), Cap(SmallCap) {}

  ~SmallVectorImpl() {
    destroyRange(Begin, Begin + Sz);
    if (!isSmall())
      ::operator delete(Begin);
  }

  bool isSmall() const { return Begin == Small; }

  void resetToSmall() {
    Begin = Small;
    Sz = 0;
    Cap = SmallCapValue;
  }

  void grow(size_t MinCap) {
    size_t NewCap = std::max<size_t>(MinCap, 2 * Cap + 1);
    T *NewBegin = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I != Sz; ++I) {
      ::new (static_cast<void *>(NewBegin + I)) T(std::move(Begin[I]));
      Begin[I].~T();
    }
    if (!isSmall())
      ::operator delete(Begin);
    Begin = NewBegin;
    Cap = NewCap;
  }

  static void destroyRange(T *S, T *E) {
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (; S != E; ++S)
        S->~T();
  }

  T *Begin;
  T *Small;
  size_t Sz = 0;
  size_t Cap;
  size_t SmallCapValue = Cap;
};

/// A vector with \p N elements of inline storage.
template <typename T, unsigned N = 4>
class SmallVector : public SmallVectorImpl<T> {
public:
  SmallVector() : SmallVectorImpl<T>(inlineStorage(), N) {}

  explicit SmallVector(size_t Count)
      : SmallVectorImpl<T>(inlineStorage(), N) {
    this->resize(Count);
  }

  SmallVector(size_t Count, const T &Val)
      : SmallVectorImpl<T>(inlineStorage(), N) {
    this->resize(Count, Val);
  }

  SmallVector(std::initializer_list<T> IL)
      : SmallVectorImpl<T>(inlineStorage(), N) {
    this->append(IL);
  }

  template <typename IterTy>
    requires(!std::is_integral_v<IterTy>)
  SmallVector(IterTy First, IterTy Last)
      : SmallVectorImpl<T>(inlineStorage(), N) {
    this->append(First, Last);
  }

  SmallVector(const SmallVector &RHS) : SmallVectorImpl<T>(inlineStorage(), N) {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(const SmallVectorImpl<T> &RHS)
      : SmallVectorImpl<T>(inlineStorage(), N) {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(SmallVector &&RHS) : SmallVectorImpl<T>(inlineStorage(), N) {
    SmallVectorImpl<T>::operator=(std::move(RHS));
  }

  SmallVector &operator=(const SmallVector &RHS) {
    SmallVectorImpl<T>::operator=(RHS);
    return *this;
  }

  SmallVector &operator=(SmallVector &&RHS) {
    SmallVectorImpl<T>::operator=(std::move(RHS));
    return *this;
  }

  ~SmallVector() = default;

private:
  T *inlineStorage() { return reinterpret_cast<T *>(&Storage); }

  alignas(T) std::byte Storage[sizeof(T) * N];
};

} // namespace o2

#endif // O2_SUPPORT_SMALLVECTOR_H
