//===- o2/Support/Compiler.h - Compiler/portability helpers ----*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used throughout the O2 libraries, mirroring the
/// subset of llvm/Support/Compiler.h that this project needs.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_COMPILER_H
#define O2_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace o2 {

/// Reports a fatal internal error and aborts.
///
/// Used for invariant violations that must be diagnosed even in builds with
/// assertions disabled.
[[noreturn]] inline void reportFatalInternalError(const char *Msg,
                                                  const char *File,
                                                  unsigned Line) {
  std::fprintf(stderr, "o2 fatal error: %s (%s:%u)\n", Msg, File, Line);
  std::abort();
}

} // namespace o2

/// Marks a point in control flow that must never be reached.
#define O2_UNREACHABLE(Msg)                                                    \
  ::o2::reportFatalInternalError("unreachable executed: " Msg, __FILE__,       \
                                 __LINE__)

#if defined(__GNUC__) || defined(__clang__)
#define O2_LIKELY(X) __builtin_expect(static_cast<bool>(X), true)
#define O2_UNLIKELY(X) __builtin_expect(static_cast<bool>(X), false)
#else
#define O2_LIKELY(X) (X)
#define O2_UNLIKELY(X) (X)
#endif

#endif // O2_SUPPORT_COMPILER_H
