//===- o2/Support/Allocator.h - Bump-pointer arena -------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BumpPtrAllocator: fast arena allocation for the long-lived, never-
/// individually-freed objects that dominate a whole-program analysis (IR
/// nodes, contexts, SHB events). StringSaver interns strings into it.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_ALLOCATOR_H
#define O2_SUPPORT_ALLOCATOR_H

#include "o2/Support/Compiler.h"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace o2 {

/// Allocates memory in large slabs and hands out aligned chunks by bumping
/// a pointer. Individual deallocation is not supported; destruction of the
/// allocator frees all slabs. Objects placed here must be trivially
/// destructible or have their destructors run by the owner.
class BumpPtrAllocator {
public:
  explicit BumpPtrAllocator(size_t SlabSize = 64 * 1024)
      : SlabSize(SlabSize) {}

  BumpPtrAllocator(const BumpPtrAllocator &) = delete;
  BumpPtrAllocator &operator=(const BumpPtrAllocator &) = delete;

  void *allocate(size_t Size, size_t Alignment) {
    assert(Alignment > 0 && (Alignment & (Alignment - 1)) == 0 &&
           "alignment must be a power of two");
    uintptr_t Aligned = (Cur + Alignment - 1) & ~(Alignment - 1);
    if (O2_UNLIKELY(Aligned + Size > End)) {
      startNewSlab(Size + Alignment);
      Aligned = (Cur + Alignment - 1) & ~(Alignment - 1);
    }
    Cur = Aligned + Size;
    BytesAllocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  template <typename T> T *allocate(size_t Num = 1) {
    return static_cast<T *>(allocate(Num * sizeof(T), alignof(T)));
  }

  /// Constructs a T in the arena. The destructor will NOT be run.
  template <typename T, typename... ArgTypes> T *create(ArgTypes &&...Args) {
    return ::new (allocate<T>()) T(std::forward<ArgTypes>(Args)...);
  }

  size_t bytesAllocated() const { return BytesAllocated; }
  size_t numSlabs() const { return Slabs.size(); }

private:
  void startNewSlab(size_t MinSize) {
    size_t Size = std::max(SlabSize, MinSize);
    Slabs.push_back(std::make_unique<std::byte[]>(Size));
    Cur = reinterpret_cast<uintptr_t>(Slabs.back().get());
    End = Cur + Size;
  }

  size_t SlabSize;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t BytesAllocated = 0;
  std::vector<std::unique_ptr<std::byte[]>> Slabs;
};

/// Copies strings into a BumpPtrAllocator so callers can keep cheap,
/// stable string_views without owning storage.
class StringSaver {
public:
  explicit StringSaver(BumpPtrAllocator &Alloc) : Alloc(Alloc) {}

  std::string_view save(std::string_view S) {
    char *Mem = Alloc.allocate<char>(S.size() + 1);
    std::memcpy(Mem, S.data(), S.size());
    Mem[S.size()] = '\0';
    return std::string_view(Mem, S.size());
  }

private:
  BumpPtrAllocator &Alloc;
};

} // namespace o2

#endif // O2_SUPPORT_ALLOCATOR_H
