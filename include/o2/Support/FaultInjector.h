//===- o2/Support/FaultInjector.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for testing the driver's containment
/// paths. The pipeline is instrumented with *named fault points* — cache
/// IO, allocation, the parser, and the start of every analysis pass — and
/// a fault can be armed on any of them via `o2batch --inject-fault=` or
/// the `O2_FAULT` environment variable:
///
///     point[@module]:nth[:action]
///
///  - `point` — a name from the catalogue (`parse`, `alloc`, `cache.read`,
///    `cache.write`, `pass.pta` … `pass.escape`),
///  - `@module` — optional: only hits made while analyzing the named job
///    count (the batch driver scopes every job with JobScope), which keeps
///    multi-job fleets deterministic at any `--jobs=N`,
///  - `nth` — fire on the Nth matching hit (1-based), or `*` for every
///    hit,
///  - `action` — what firing does (default `throw`):
///
/// | action  | effect                                                      |
/// |---------|-------------------------------------------------------------|
/// | `throw` | throw std::runtime_error (an internal error)                |
/// | `oom`   | throw std::bad_alloc (a simulated allocation failure)       |
/// | `hog`   | allocate-and-touch until allocation genuinely fails (pairs  |
/// |         | with `--mem-limit-mb` to exercise the real RSS-cap path)    |
/// | `segv`  | raise SIGSEGV                                               |
/// | `kill`  | SIGKILL the current process (uncatchable, sanitizer-proof)  |
/// | `abort` | std::abort()                                                |
/// | `exit`  | _Exit(13) without reporting a result                        |
/// | `hang`  | sleep in a loop (bounded), ignoring cooperative deadlines   |
///
/// Counters are per armed fault and advance only on scope-matching hits,
/// so a spec is deterministic: the same corpus and flags fire the same
/// fault at the same place every run. Under `--isolate=process` each
/// worker inherits the armed state (and counters) at fork, which makes
/// per-job specs deterministic regardless of worker count.
///
/// When nothing is armed a fault point is one relaxed atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_FAULTINJECTOR_H
#define O2_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace o2 {

enum class FaultAction : uint8_t {
  Throw, ///< throw std::runtime_error("injected fault at '<point>'")
  OOM,   ///< throw std::bad_alloc()
  Hog,   ///< allocate-and-touch chunks until allocation fails for real
  Segv,  ///< raise(SIGSEGV)
  Kill,  ///< SIGKILL self — uncatchable, survives sanitizer handlers
  Abort, ///< std::abort()
  Exit,  ///< _Exit(13): vanish without a result record
  Hang,  ///< sleep loop (bounded at 120s), deaf to cooperative deadlines
};

/// One catalogue entry: the point's name and where in the pipeline it
/// sits (for --help text, docs, and coverage tests).
struct FaultPointInfo {
  const char *Name;
  const char *Where;
};

class FaultInjector {
public:
  /// The process-wide injector (workers inherit it across fork).
  /// Construction reads `O2_FAULT` once, so environment arming works for
  /// any tool without flag plumbing.
  static FaultInjector &instance();

  /// Arms a fault from a `point[@module]:nth[:action]` spec. Unknown
  /// points, actions, or a malformed count are rejected with a message in
  /// \p Err. Several faults may be armed at once.
  bool armFromSpec(const std::string &Spec, std::string &Err);

  /// Programmatic arming. \p Nth is 1-based; 0 fires on every hit. An
  /// empty \p Scope matches every job.
  void arm(std::string Point, std::string Scope, uint64_t Nth, FaultAction A);

  /// Removes every armed fault and resets all counters.
  void disarm();

  bool anyArmed() const;

  /// Called by instrumented code at the point named \p Point. Returns
  /// normally unless an armed fault matches and fires — in which case it
  /// throws, signals, or exits per the armed action.
  static void hit(const char *Point);

  /// Every instrumented fault point.
  static const std::vector<FaultPointInfo> &catalogue();

  /// Scopes fault-point hits on this thread to the named job for the
  /// object's lifetime (`@module` filters match against it).
  class JobScope {
  public:
    explicit JobScope(const std::string &JobName);
    ~JobScope();
    JobScope(const JobScope &) = delete;
    JobScope &operator=(const JobScope &) = delete;

  private:
    const char *Prev;
    std::string Name;
  };

private:
  FaultInjector();
  struct Impl;
  Impl *P; ///< Leaked intentionally: hit() may run during shutdown.
};

} // namespace o2

#endif // O2_SUPPORT_FAULTINJECTOR_H
