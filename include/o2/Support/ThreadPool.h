//===- o2/Support/ThreadPool.h - Work-stealing thread pool -------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for coarse-grained tasks (one task =
/// one module analysis in the batch driver). Each worker owns a deque:
/// the owner pops newest-first from the back, idle workers steal
/// oldest-first from the front of a victim's deque, so long-running jobs
/// submitted early migrate to free workers instead of serializing behind
/// one queue.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_THREADPOOL_H
#define O2_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace o2 {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task; round-robins across worker deques.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  unsigned numThreads() const {
    return static_cast<unsigned>(Threads.size());
  }

private:
  struct Worker {
    std::mutex Mutex;
    std::deque<std::function<void()>> Deque;
  };

  void workerLoop(unsigned Me);
  bool popOwn(unsigned Me, std::function<void()> &Task);
  bool steal(unsigned Me, std::function<void()> &Task);

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::mutex SleepMutex;
  std::condition_variable WorkCV;  ///< Wakes idle workers.
  std::condition_variable IdleCV;  ///< Wakes wait()ers.
  size_t Outstanding = 0;          ///< Queued + running tasks.
  bool Stopping = false;
  unsigned NextWorker = 0;         ///< Round-robin submit cursor.
};

} // namespace o2

#endif // O2_SUPPORT_THREADPOOL_H
