//===- o2/Support/Casting.h - isa/cast/dyn_cast templates ------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style hand-rolled RTTI: isa<>, cast<>, dyn_cast<> and the
/// *_if_present variants. Classes opt in by providing a static
/// classof(const Base *) predicate, typically dispatching on a kind tag.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_CASTING_H
#define O2_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace o2 {

namespace detail {

template <typename To, typename From> struct IsaImpl {
  static bool doit(const From &Val) { return To::classof(&Val); }
};

/// Casting to the same (or a base) type is always valid and needs no
/// classof() on the target.
template <typename To, typename From>
  requires std::is_base_of_v<To, From>
struct IsaImpl<To, From> {
  static bool doit(const From &) { return true; }
};

} // namespace detail

/// Returns true if \p Val is an instance of (any of) the template type(s).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return detail::IsaImpl<To, From>::doit(*Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return detail::IsaImpl<To, From>::doit(Val);
}

/// Variadic form: isa<A, B, C>(V) is isa<A>(V) || isa<B>(V) || isa<C>(V).
template <typename First, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<First>(Val) || isa<Second, Rest...>(Val);
}

/// Checked cast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking cast: returns null if \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Null-tolerant variants.
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace o2

#endif // O2_SUPPORT_CASTING_H
