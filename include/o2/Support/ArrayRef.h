//===- o2/Support/ArrayRef.h - Constant reference to an array --*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-owning view over a contiguous sequence, in the spirit of
/// llvm::ArrayRef. Always pass by value; never store one beyond the
/// lifetime of the underlying storage.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_ARRAYREF_H
#define O2_SUPPORT_ARRAYREF_H

#include "o2/Support/SmallVector.h"

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace o2 {

template <typename T> class ArrayRef {
public:
  using value_type = T;
  using iterator = const T *;
  using const_iterator = const T *;

  ArrayRef() = default;
  ArrayRef(const T *Data, size_t Length) : Data(Data), Length(Length) {}
  ArrayRef(const T *First, const T *Last)
      : Data(First), Length(static_cast<size_t>(Last - First)) {}
  ArrayRef(const std::vector<T> &Vec) : Data(Vec.data()), Length(Vec.size()) {}
  ArrayRef(const SmallVectorImpl<T> &Vec)
      : Data(Vec.data()), Length(Vec.size()) {}
  /// Constructs from an initializer list. As in llvm::ArrayRef, the view
  /// is only valid for the lifetime of the initializer list expression —
  /// i.e. as a by-value function argument.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  ArrayRef(std::initializer_list<T> IL)
      : Data(IL.begin() == IL.end() ? nullptr : IL.begin()),
        Length(IL.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  template <size_t N>
  constexpr ArrayRef(const T (&Arr)[N]) : Data(Arr), Length(N) {}
  /// A single element viewed as a one-element array.
  ArrayRef(const T &OneElt) : Data(&OneElt), Length(1) {}

  iterator begin() const { return Data; }
  iterator end() const { return Data + Length; }
  size_t size() const { return Length; }
  bool empty() const { return Length == 0; }
  const T *data() const { return Data; }

  const T &operator[](size_t Idx) const {
    assert(Idx < Length && "ArrayRef index out of range");
    return Data[Idx];
  }

  const T &front() const {
    assert(!empty() && "front() on empty ArrayRef");
    return Data[0];
  }
  const T &back() const {
    assert(!empty() && "back() on empty ArrayRef");
    return Data[Length - 1];
  }

  /// Returns the sub-array [Start, Start+N).
  ArrayRef<T> slice(size_t Start, size_t N) const {
    assert(Start + N <= size() && "slice() out of range");
    return ArrayRef<T>(data() + Start, N);
  }

  ArrayRef<T> drop_front(size_t N = 1) const {
    assert(size() >= N && "drop_front() out of range");
    return slice(N, size() - N);
  }

  bool equals(ArrayRef RHS) const {
    return Length == RHS.Length && std::equal(begin(), end(), RHS.begin());
  }

private:
  const T *Data = nullptr;
  size_t Length = 0;
};

template <typename T> bool operator==(ArrayRef<T> LHS, ArrayRef<T> RHS) {
  return LHS.equals(RHS);
}

} // namespace o2

#endif // O2_SUPPORT_ARRAYREF_H
