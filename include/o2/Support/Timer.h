//===- o2/Support/Timer.h - Wall-clock timing -------------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trivial wall-clock stopwatch used by the benchmark harnesses to report
/// per-phase times the way the paper's tables do.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SUPPORT_TIMER_H
#define O2_SUPPORT_TIMER_H

#include <chrono>

namespace o2 {

class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace o2

#endif // O2_SUPPORT_TIMER_H
