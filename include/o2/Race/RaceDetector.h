//===- o2/Race/RaceDetector.h - Static race detection -------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The race detection engine of Section 4: hybrid happens-before + lockset
/// over the SHB graph. Two engines share one candidate collection and one
/// report format:
///
///  - **Serial** — the straightforward pairwise scan over every shared
///    location, kept as the equivalence oracle. Each optimization of
///    Section 4.1 can be disabled, which yields the D4-style straw-man
///    detector the paper compares against.
///
///  - **Parallel** (default) — shards the sorted candidate-location list
///    across a work-stealing thread pool and, per location, groups
///    accesses into (thread, HB segment, lockset, is-write) equivalence
///    classes so the n^2 pairwise loop becomes c^2 class-pair checks:
///    one lockset lookup and two precomputed reachability lookups decide
///    a whole class pair, and the racy subset of a class pair is a
///    prefix-rectangle found by binary search. Happens-before is answered
///    by the precomputed HBIndex (O(1) per query) and lockset
///    intersection by the precomputed LocksetMatrix when the interned
///    universe is small (shard-local caches otherwise).
///
/// The parallel engine is *report- and statistics-deterministic*: for any
/// worker count it produces byte-identical reports — and equal counters —
/// to the serial engine, because per-location results are merged in
/// canonical (sorted-location) order and every counter accounts for the
/// pairs a class pair covers rather than the lookups actually performed.
/// Two exceptions fall back to the serial path: a finite MaxPairChecks
/// budget (budget exhaustion is defined by the serial scan order), and
/// cancellation makes *which* locations complete timing-dependent in
/// either engine.
///
//===----------------------------------------------------------------------===//

#ifndef O2_RACE_RACEDETECTOR_H
#define O2_RACE_RACEDETECTOR_H

#include "o2/SHB/SHBGraph.h"
#include "o2/Support/Statistic.h"

#include <set>
#include <vector>

namespace o2 {

class HBIndex;
class OutputStream;
class ThreadPool;

namespace race_detail {
struct RaceReportAccess;
} // namespace race_detail

/// Which race-check engine runs the pairing phase.
enum class RaceEngineKind : uint8_t {
  Serial,   ///< Pairwise oracle; required for finite MaxPairChecks.
  Parallel, ///< Sharded, class-based, index-accelerated engine.
};

/// How happens-before queries are answered.
enum class RaceHBKind : uint8_t {
  Naive, ///< Per-event BFS over the SHB graph (D4-style straw man).
  Memo,  ///< SHBGraph's memoized spawn-bucket reachability (optimization
         ///< 1 as shipped before the index; serial engine only).
  Index, ///< Precomputed HBIndex, O(1) per query (default).
};

struct RaceDetectorOptions {
  /// Engine selection (`o2cli --race-engine=`). The parallel engine falls
  /// back to the serial path when MaxPairChecks is finite.
  RaceEngineKind Engine = RaceEngineKind::Parallel;

  /// Happens-before implementation (`o2cli --race-hb=`). All three are
  /// semantically identical; Naive is the correctness oracle for the
  /// index. The parallel engine always derives verdicts from the index
  /// (its class math *is* the index); the knob selects the serial
  /// engine's query path.
  RaceHBKind HB = RaceHBKind::Index;

  /// Optimization 2: canonical lockset IDs with cached intersections
  /// (and, in the parallel engine, the precomputed intersection matrix).
  bool CacheLocksetChecks = true;

  /// Optimization 3: merge same-location accesses within a lock region.
  bool LockRegionMerging = true;

  /// Treat accesses to `atomic` fields and globals as synchronization
  /// rather than data: no races are reported on them (the paper's
  /// future-work treatment of std::atomic).
  bool HandleAtomics = true;

  /// Parallel engine: worker threads (0 = hardware concurrency). The
  /// calling thread always participates, so Jobs=1 runs inline.
  unsigned Jobs = 0;

  /// Parallel engine: external pool to run shards on instead of spawning
  /// one (not owned). The caller participates in the work and never
  /// blocks on unrelated tasks, so sharing the batch driver's pool is
  /// safe even when every pool worker is busy with other modules.
  ThreadPool *Pool = nullptr;

  /// Parallel engine: below this many candidate locations the sharding
  /// overhead cannot pay off and the scan runs inline on the caller.
  unsigned MinParallelLocations = 33;

  /// Parallel engine: build the full lockset-intersection bit matrix
  /// when the interned universe has at most this many locksets
  /// (quadratic bits); larger universes use shard-local caches.
  unsigned LocksetMatrixMaxSize = 2048;

  /// Hard cap on conflicting pairs checked; exceeding it aborts the scan
  /// and sets the "race.budget-hit" statistic — benchmark harnesses use
  /// this the way the paper reports ">4h" detector runs. Forces the
  /// serial engine (the budget is defined by the serial scan order).
  uint64_t MaxPairChecks = ~uint64_t(0);

  /// Optional cooperative cancellation, polled per candidate pair
  /// (serial) or per candidate location (parallel); on expiry the scan
  /// stops and the partial report is flagged (the "race.cancelled"
  /// statistic). Not owned.
  const CancellationToken *Cancel = nullptr;

  /// Optional prebuilt HBIndex over the same SHB graph (not owned). When
  /// set, the engines use it instead of building their own — the
  /// AnalysisManager passes the shared HBIndex pass result here so one
  /// index build serves any number of detector runs. Only consulted on
  /// the paths that would have built one (parallel engine; serial with
  /// HB == Index): reports and statistics are unaffected.
  const HBIndex *Index = nullptr;

  /// Forwarded to the SHB builder when the detector builds its own graph.
  SHBOptions SHB;
};

/// One reported race: an unordered pair of conflicting statements.
struct Race {
  MemLoc Loc;                 ///< One shared location they collide on.
  const Stmt *A = nullptr;
  const Stmt *B = nullptr;
  unsigned ThreadA = 0;
  unsigned ThreadB = 0;
  bool AIsWrite = false;
  bool BIsWrite = false;
};

class RaceReport {
public:
  const std::vector<Race> &races() const { return Races; }
  unsigned numRaces() const { return static_cast<unsigned>(Races.size()); }

  /// Detector counters: pairs checked, HB queries, lockset checks,
  /// shared locations, threads, events. Counters are engine-independent
  /// (see file comment); only `race.*-cache-*` diagnostics may differ.
  const StatisticRegistry &stats() const { return Stats; }

  /// Prints a human-readable report.
  void print(OutputStream &OS, const PTAResult &PTA) const;

  /// Emits the report as JSON: {"races": [...], "stats": {...}}.
  void printJSON(OutputStream &OS, const PTAResult &PTA) const;

  /// True if the scan was cancelled (the report covers a subset of the
  /// candidate locations).
  bool cancelled() const { return Cancelled; }

private:
  friend class RaceDetector;
  friend class ParallelRaceEngine;
  friend struct race_detail::RaceReportAccess;

  bool Cancelled = false;
  std::vector<Race> Races;
  StatisticRegistry Stats;
};

/// Detects races over a prebuilt SHB graph.
RaceReport detectRaces(const PTAResult &PTA, const SHBGraph &SHB,
                       const RaceDetectorOptions &Opts = {});

/// Builds the SHB graph and detects races.
RaceReport detectRaces(const PTAResult &PTA,
                       const RaceDetectorOptions &Opts = {});

} // namespace o2

#endif // O2_RACE_RACEDETECTOR_H
