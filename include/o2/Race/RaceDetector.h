//===- o2/Race/RaceDetector.h - Static race detection -------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The race detection engine of Section 4: hybrid happens-before + lockset
/// over the SHB graph. Each optimization of Section 4.1 can be disabled,
/// which yields the D4-style straw-man detector the paper compares against
/// and the soundness oracle for the optimized configuration: both report
/// exactly the same racy locations (lock-region merging may collapse
/// several racy pairs within one region into a single representative, so
/// the optimized pair count is ≤ the naive pair count).
///
//===----------------------------------------------------------------------===//

#ifndef O2_RACE_RACEDETECTOR_H
#define O2_RACE_RACEDETECTOR_H

#include "o2/SHB/SHBGraph.h"
#include "o2/Support/Statistic.h"

#include <set>
#include <vector>

namespace o2 {

class OutputStream;

struct RaceDetectorOptions {
  /// Optimization 1: intra-origin HB as integer IDs + memoized
  /// inter-origin reachability (else: naive per-event graph search).
  bool IntegerHB = true;

  /// Optimization 2: canonical lockset IDs with cached intersections.
  bool CacheLocksetChecks = true;

  /// Optimization 3: merge same-location accesses within a lock region.
  bool LockRegionMerging = true;

  /// Treat accesses to `atomic` fields and globals as synchronization
  /// rather than data: no races are reported on them (the paper's
  /// future-work treatment of std::atomic).
  bool HandleAtomics = true;

  /// Hard cap on conflicting pairs checked; exceeding it aborts the scan
  /// and sets the "race.budget-hit" statistic — benchmark harnesses use
  /// this the way the paper reports ">4h" detector runs.
  uint64_t MaxPairChecks = ~uint64_t(0);

  /// Optional cooperative cancellation, polled per candidate pair; on
  /// expiry the scan stops and the partial report is flagged (the
  /// "race.cancelled" statistic). Not owned.
  const CancellationToken *Cancel = nullptr;

  /// Forwarded to the SHB builder when the detector builds its own graph.
  SHBOptions SHB;
};

/// One reported race: an unordered pair of conflicting statements.
struct Race {
  MemLoc Loc;                 ///< One shared location they collide on.
  const Stmt *A = nullptr;
  const Stmt *B = nullptr;
  unsigned ThreadA = 0;
  unsigned ThreadB = 0;
  bool AIsWrite = false;
  bool BIsWrite = false;
};

class RaceReport {
public:
  const std::vector<Race> &races() const { return Races; }
  unsigned numRaces() const { return static_cast<unsigned>(Races.size()); }

  /// Detector counters: pairs checked, HB queries, lockset checks,
  /// shared locations, threads, events.
  const StatisticRegistry &stats() const { return Stats; }

  /// Prints a human-readable report.
  void print(OutputStream &OS, const PTAResult &PTA) const;

  /// Emits the report as JSON: {"races": [...], "stats": {...}}.
  void printJSON(OutputStream &OS, const PTAResult &PTA) const;

  /// True if the scan was cancelled (the report covers a prefix of the
  /// candidate locations).
  bool cancelled() const { return Cancelled; }

private:
  friend class RaceDetector;

  bool Cancelled = false;
  std::vector<Race> Races;
  StatisticRegistry Stats;
};

/// Detects races over a prebuilt SHB graph.
RaceReport detectRaces(const PTAResult &PTA, const SHBGraph &SHB,
                       const RaceDetectorOptions &Opts = {});

/// Builds the SHB graph and detects races.
RaceReport detectRaces(const PTAResult &PTA,
                       const RaceDetectorOptions &Opts = {});

} // namespace o2

#endif // O2_RACE_RACEDETECTOR_H
