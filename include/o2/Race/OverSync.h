//===- o2/Race/OverSync.h - Over-synchronization analysis ---------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Over-synchronization detection: the second further application of
/// OPA/OSA that Section 3 names. A lock region whose accesses touch only
/// origin-local (non-shared) memory does not protect anything — the lock
/// can be removed (or the code is missing the accesses it was meant to
/// protect). OSA's per-origin read/write sets answer this directly, which
/// a plain thread-escape analysis cannot.
///
//===----------------------------------------------------------------------===//

#ifndef O2_RACE_OVERSYNC_H
#define O2_RACE_OVERSYNC_H

#include "o2/OSA/SharingAnalysis.h"
#include "o2/SHB/SHBGraph.h"
#include "o2/Support/CancellationToken.h"

#include <vector>

namespace o2 {

class OutputStream;

/// One unnecessary lock region.
struct OverSyncRegion {
  const Stmt *Acquire = nullptr; ///< the acquire opening the region
  unsigned Thread = 0;
  unsigned NumAccesses = 0; ///< accesses inside, all origin-local
};

class OverSyncReport {
public:
  const std::vector<OverSyncRegion> &regions() const { return Regions; }
  unsigned numRegions() const {
    return static_cast<unsigned>(Regions.size());
  }

  /// Lock regions inspected in total.
  unsigned numRegionsChecked() const { return NumRegionsChecked; }

  /// True if a cancellation token fired mid-analysis.
  bool cancelled() const { return Cancelled; }

  void print(OutputStream &OS) const;

private:
  friend OverSyncReport
  detectOverSynchronization(const SharingResult &, const SHBGraph &,
                            const CancellationToken *);

  std::vector<OverSyncRegion> Regions;
  unsigned NumRegionsChecked = 0;
  bool Cancelled = false;
};

/// Flags lock regions that guard only origin-local accesses. Empty
/// regions (no accesses at all) are not reported — they usually guard
/// control flow the IR does not model. \p Cancel is polled in the
/// per-thread event walk.
OverSyncReport
detectOverSynchronization(const SharingResult &Sharing, const SHBGraph &SHB,
                          const CancellationToken *Cancel = nullptr);

} // namespace o2

#endif // O2_RACE_OVERSYNC_H
