//===- o2/Race/RacerDLike.h - Syntactic race detector baseline ----*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A RacerD-style compositional, syntactic detector used as the
/// state-of-the-art baseline of Section 5: it reasons by field name and
/// syntactic lock variables, with no pointer analysis, no heap contexts,
/// and no happens-before. It reports (1) read/write race pairs and
/// (2) unprotected writes, exactly the two report categories the paper
/// translates into warning counts for the comparison tables.
///
//===----------------------------------------------------------------------===//

#ifndef O2_RACE_RACERDLIKE_H
#define O2_RACE_RACERDLIKE_H

#include "o2/IR/Module.h"
#include "o2/Support/CancellationToken.h"

#include <string>
#include <vector>

namespace o2 {

class OutputStream;

struct RacerDWarning {
  enum class Kind { ReadWriteRace, UnprotectedWrite };
  Kind WarningKind;
  std::string Location; ///< field/global name the warning is about
  const Stmt *A = nullptr;
  const Stmt *B = nullptr; ///< null for unprotected writes
};

class RacerDReport {
public:
  const std::vector<RacerDWarning> &warnings() const { return Warnings; }

  unsigned numWarnings() const {
    return static_cast<unsigned>(Warnings.size());
  }

  /// The paper's comparison metric: read/write race pairs plus the
  /// conflicting-pair count implied by unprotected-write reports.
  unsigned numPotentialRaces() const { return NumPotentialRaces; }

  /// True if a cancellation token fired mid-analysis.
  bool cancelled() const { return Cancelled; }

  void print(OutputStream &OS) const;

private:
  friend class RacerDLikeDetector;

  std::vector<RacerDWarning> Warnings;
  unsigned NumPotentialRaces = 0;
  bool Cancelled = false;
};

/// Runs the syntactic detector directly over the IR. \p Cancel is polled
/// in the access-collection and pairwise-warning loops.
RacerDReport runRacerDLike(const Module &M,
                           const CancellationToken *Cancel = nullptr);

} // namespace o2

#endif // O2_RACE_RACERDLIKE_H
