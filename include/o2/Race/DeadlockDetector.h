//===- o2/Race/DeadlockDetector.h - Lock-order deadlock analysis --*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic lock-order-graph deadlock detector built on the same OPA +
/// SHB substrate as the race detector — one of the further applications
/// Section 3 calls out ("OPA and OSA can benefit any analysis that
/// requires analyzing pointers or ownership of memory accesses, e.g.,
/// deadlock, over-synchronization ...").
///
/// Every nested acquire contributes lock-order edges (held → acquired);
/// a cycle contributed by at least two different threads, with no common
/// gate lock protecting its acquisitions, is a potential deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef O2_RACE_DEADLOCKDETECTOR_H
#define O2_RACE_DEADLOCKDETECTOR_H

#include "o2/SHB/SHBGraph.h"
#include "o2/Support/CancellationToken.h"

#include <vector>

namespace o2 {

class OutputStream;

/// One lock-order edge: thread T acquired Inner while holding Outer.
struct LockOrderEdge {
  uint32_t Outer = 0; ///< lock element already held
  uint32_t Inner = 0; ///< lock element being acquired
  unsigned Thread = 0;
  const Stmt *Acquire = nullptr; ///< the inner acquire statement
  LocksetId HeldBefore = 0;      ///< full lockset at the inner acquire
};

/// A potential deadlock: a cycle in the lock-order graph.
struct DeadlockCycle {
  /// The lock elements on the cycle, in order.
  SmallVector<uint32_t, 2> Locks;
  /// One witness edge per step of the cycle.
  SmallVector<LockOrderEdge, 2> Witnesses;
};

class DeadlockReport {
public:
  const std::vector<DeadlockCycle> &cycles() const { return Cycles; }
  unsigned numDeadlocks() const {
    return static_cast<unsigned>(Cycles.size());
  }
  const std::vector<LockOrderEdge> &edges() const { return Edges; }

  /// True if a cancellation token fired mid-analysis; the report then
  /// holds only the cycles found before the cut.
  bool cancelled() const { return Cancelled; }

  void print(OutputStream &OS, const PTAResult &PTA) const;

private:
  friend class DeadlockDetector;

  std::vector<LockOrderEdge> Edges;
  std::vector<DeadlockCycle> Cycles;
  bool Cancelled = false;
};

/// Detects potential deadlocks over a prebuilt SHB graph. \p Cancel is
/// polled in the edge-collection and cycle-search loops.
DeadlockReport detectDeadlocks(const PTAResult &PTA, const SHBGraph &SHB,
                               const CancellationToken *Cancel = nullptr);

} // namespace o2

#endif // O2_RACE_DEADLOCKDETECTOR_H
