//===- o2/IR/Module.h - OIR whole-program module -----------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module: the whole program — classes, globals, functions, and the dense
/// ID spaces (variables, fields, globals, allocation sites, call sites,
/// statements) that the analyses index by.
///
//===----------------------------------------------------------------------===//

#ifndef O2_IR_MODULE_H
#define O2_IR_MODULE_H

#include "o2/IR/Function.h"
#include "o2/IR/Type.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace o2 {

class Module {
public:
  explicit Module(std::string Name = "module") : Name(std::move(Name)) {}

  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &getName() const { return Name; }

  /// The unique scalar type.
  IntType *getIntType() { return &IntTy; }

  /// Creates a class; \p Super may be null. The name must be fresh.
  ClassType *addClass(const std::string &ClassName, ClassType *Super = nullptr);

  /// Returns the unique array type over \p Elem.
  ArrayType *getArrayType(Type *Elem);

  /// Creates a global variable. The name must be fresh.
  Global *addGlobal(const std::string &GlobalName, Type *Ty,
                    bool IsAtomic = false);

  /// Creates a free function or (when later attached via
  /// ClassType::addMethod) a method. \p RetTy may be null for void.
  Function *addFunction(const std::string &FuncName, Type *RetTy = nullptr);

  ClassType *findClass(const std::string &ClassName) const;
  Global *findGlobal(const std::string &GlobalName) const;

  /// Finds a free function (not a method) by name; null if absent.
  Function *findFunction(const std::string &FuncName) const;

  /// The program entry point, conventionally named "main".
  Function *getMain() const { return findFunction("main"); }

  const std::vector<std::unique_ptr<ClassType>> &classes() const {
    return Classes;
  }
  const std::vector<std::unique_ptr<Global>> &globals() const {
    return Globals;
  }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  // Dense ID space sizes (exclusive upper bounds).
  unsigned numVariables() const { return NextVarId; }
  unsigned numFields() const { return NextFieldId; }
  unsigned numGlobals() const { return static_cast<unsigned>(Globals.size()); }
  unsigned numAllocSites() const { return NextAllocSite; }
  unsigned numCallSites() const { return NextCallSite; }
  unsigned numStmts() const { return NextStmtId; }

  /// Total number of statements across all functions (program size "p").
  unsigned numProgramStmts() const;

  // ID allocation, used by IR construction code (IRBuilder, Parser).
  unsigned takeVarId() { return NextVarId++; }
  unsigned takeFieldId() { return NextFieldId++; }
  unsigned takeAllocSite() { return NextAllocSite++; }
  unsigned takeCallSite() { return NextCallSite++; }
  unsigned takeStmtId() { return NextStmtId++; }

private:
  std::string Name;
  IntType IntTy;
  std::vector<std::unique_ptr<ClassType>> Classes;
  std::vector<std::unique_ptr<Global>> Globals;
  std::vector<std::unique_ptr<Function>> Functions;
  std::map<Type *, std::unique_ptr<ArrayType>> ArrayTypes;
  std::map<std::string, ClassType *> ClassByName;
  std::map<std::string, Global *> GlobalByName;

  unsigned NextVarId = 0;
  unsigned NextFieldId = 0;
  unsigned NextAllocSite = 0;
  unsigned NextCallSite = 0;
  unsigned NextStmtId = 0;
  unsigned NextFuncId = 0;
};

} // namespace o2

#endif // O2_IR_MODULE_H
