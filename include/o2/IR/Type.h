//===- o2/IR/Type.h - OIR type system ---------------------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the OIR whole-program intermediate representation: a scalar
/// int type, reference types for classes (single inheritance, fields,
/// virtual methods), and array types. This is the minimal type universe
/// over which all rules of the paper's Table 2 are expressible.
///
//===----------------------------------------------------------------------===//

#ifndef O2_IR_TYPE_H
#define O2_IR_TYPE_H

#include "o2/Support/Casting.h"
#include "o2/Support/Compiler.h"

#include <memory>
#include <string>
#include <vector>

namespace o2 {

class ClassType;
class Function;
class Module;

/// Root of the OIR type hierarchy. Uses LLVM-style tagged RTTI.
class Type {
public:
  enum TypeKind : uint8_t {
    TK_Int,   ///< Scalar value; carries no points-to information.
    TK_Class, ///< Reference to a heap object of a class.
    TK_Array, ///< Reference to a heap array.
  };

  TypeKind getKind() const { return Kind; }

  /// True for types whose variables can point to heap objects.
  bool isReference() const { return Kind != TK_Int; }

  /// Returns a short printable name ("int", class name, "T[]").
  const std::string &getName() const { return Name; }

  virtual ~Type() = default;

protected:
  Type(TypeKind Kind, std::string Name) : Kind(Kind), Name(std::move(Name)) {}

private:
  const TypeKind Kind;
  std::string Name;
};

/// The single scalar type. One instance per Module.
class IntType : public Type {
public:
  IntType() : Type(TK_Int, "int") {}

  static bool classof(const Type *T) { return T->getKind() == TK_Int; }
};

/// A named field declared by a class. Field identity is the declaring
/// (class, slot); subclasses inherit fields and may not redeclare them.
class Field {
public:
  Field(std::string Name, Type *Ty, ClassType *Parent, unsigned Id,
        bool IsAtomic = false)
      : Name(std::move(Name)), Ty(Ty), Parent(Parent), Id(Id),
        IsAtomic(IsAtomic) {}

  const std::string &getName() const { return Name; }
  Type *getType() const { return Ty; }
  ClassType *getParent() const { return Parent; }

  /// Module-wide dense ID, used to key abstract memory locations.
  unsigned getId() const { return Id; }

  /// Atomic fields (std::atomic / volatile-style) are synchronization,
  /// not data: the detector does not report races on them (the paper's
  /// future-work atomics treatment).
  bool isAtomic() const { return IsAtomic; }

private:
  std::string Name;
  Type *Ty;
  ClassType *Parent;
  unsigned Id;
  bool IsAtomic;
};

/// A class: optional superclass, fields, and methods. Methods dispatch
/// virtually by name through the superclass chain (Java-style).
class ClassType : public Type {
public:
  ClassType(std::string Name, ClassType *Super, Module &Parent)
      : Type(TK_Class, std::move(Name)), Super(Super), ParentModule(Parent) {}

  static bool classof(const Type *T) { return T->getKind() == TK_Class; }

  ClassType *getSuper() const { return Super; }
  Module &getModule() const { return ParentModule; }

  /// Late-binds the superclass. Only the textual parser uses this (its
  /// first pass registers all class names before supers are resolvable);
  /// it must be called before any fields or methods are added.
  void setSuperForParser(ClassType *NewSuper) {
    assert(!Super && "superclass already set");
    assert(Fields.empty() && Methods.empty() &&
           "super must be set before members");
    Super = NewSuper;
  }

  /// Declares a new field on this class. The name must be fresh along the
  /// whole superclass chain.
  Field *addField(const std::string &FieldName, Type *Ty,
                  bool IsAtomic = false);

  /// Registers \p Method (already created in the Module) as a method of
  /// this class; overrides any same-named superclass method.
  void addMethod(Function *Method);

  /// Finds a field by name along the superclass chain; null if absent.
  Field *findField(const std::string &FieldName) const;

  /// Virtual dispatch: finds the method implementation for \p MethodName
  /// starting from this (dynamic) class; null if absent.
  Function *findMethod(const std::string &MethodName) const;

  /// True if this class equals \p Other or derives from it.
  bool isSubclassOf(const ClassType *Other) const;

  const std::vector<std::unique_ptr<Field>> &fields() const { return Fields; }
  const std::vector<Function *> &methods() const { return Methods; }

private:
  ClassType *Super;
  Module &ParentModule;
  std::vector<std::unique_ptr<Field>> Fields;
  std::vector<Function *> Methods;
};

/// An array of a fixed element type. Element accesses are index-insensitive
/// (the paper models all elements as one field "*").
class ArrayType : public Type {
public:
  explicit ArrayType(Type *Elem)
      : Type(TK_Array, Elem->getName() + "[]"), Elem(Elem) {}

  static bool classof(const Type *T) { return T->getKind() == TK_Array; }

  Type *getElementType() const { return Elem; }

private:
  Type *Elem;
};

} // namespace o2

#endif // O2_IR_TYPE_H
