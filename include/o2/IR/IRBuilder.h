//===- o2/IR/IRBuilder.h - Convenience IR construction -----------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder appends statements to a function, allocating the dense site
/// and statement IDs from the module and tracking `loop { }` nesting so
/// allocations and spawns inside loops get their in-loop flag (which makes
/// OPA duplicate the corresponding origins).
///
//===----------------------------------------------------------------------===//

#ifndef O2_IR_IRBUILDER_H
#define O2_IR_IRBUILDER_H

#include "o2/IR/Module.h"
#include "o2/Support/ArrayRef.h"

namespace o2 {

class IRBuilder {
public:
  explicit IRBuilder(Module &M, Function *F = nullptr) : M(M), F(F) {}

  Module &getModule() const { return M; }
  Function *getFunction() const { return F; }

  /// Retargets the builder; resets loop nesting.
  void setFunction(Function *NewF) {
    F = NewF;
    LoopDepth = 0;
  }

  /// Enters / leaves a syntactic loop region (affects only the in-loop
  /// flag of allocations and spawns).
  void beginLoop() { ++LoopDepth; }
  void endLoop() {
    assert(LoopDepth > 0 && "endLoop() without beginLoop()");
    --LoopDepth;
  }

  AllocStmt *alloc(Variable *Target, ClassType *C,
                   ArrayRef<Variable *> Args = {});
  ArrayAllocStmt *allocArray(Variable *Target, ArrayType *Ty);
  AssignStmt *assign(Variable *Target, Variable *Source);
  FieldLoadStmt *fieldLoad(Variable *Target, Variable *Base,
                           const std::string &FieldName);
  FieldLoadStmt *fieldLoad(Variable *Target, Variable *Base, Field *Fld);
  FieldStoreStmt *fieldStore(Variable *Base, const std::string &FieldName,
                             Variable *Source);
  FieldStoreStmt *fieldStore(Variable *Base, Field *Fld, Variable *Source);
  ArrayLoadStmt *arrayLoad(Variable *Target, Variable *Base);
  ArrayStoreStmt *arrayStore(Variable *Base, Variable *Source);
  GlobalLoadStmt *globalLoad(Variable *Target, Global *G);
  GlobalStoreStmt *globalStore(Global *G, Variable *Source);

  /// Virtual call x = recv.m(args).
  CallStmt *call(Variable *Target, Variable *Receiver,
                 const std::string &MethodName, ArrayRef<Variable *> Args = {});
  /// Direct call x = f(args).
  CallStmt *callDirect(Variable *Target, Function *Callee,
                       ArrayRef<Variable *> Args = {});

  SpawnStmt *spawn(Variable *Receiver, const std::string &EntryName,
                   ArrayRef<Variable *> Args = {});
  JoinStmt *join(Variable *Receiver);
  AcquireStmt *acquire(Variable *Lock);
  ReleaseStmt *release(Variable *Lock);
  ReturnStmt *ret(Variable *Value = nullptr);

private:
  bool inLoop() const { return LoopDepth > 0; }
  unsigned nextIndex() const { return static_cast<unsigned>(F->size()); }

  Module &M;
  Function *F;
  unsigned LoopDepth = 0;
};

} // namespace o2

#endif // O2_IR_IRBUILDER_H
