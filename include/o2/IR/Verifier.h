//===- o2/IR/Verifier.h - OIR structural checks -------------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the structural invariants the analyses assume: variables belong
/// to their functions, field/array accesses are well typed, assignments
/// respect the class hierarchy, calls have matching arity, lock regions
/// are well nested per function, and spawn receivers can dispatch their
/// entry method.
///
//===----------------------------------------------------------------------===//

#ifndef O2_IR_VERIFIER_H
#define O2_IR_VERIFIER_H

#include <string>
#include <vector>

namespace o2 {

class Module;

/// Verifies \p M. Appends one message per violation to \p Errors.
/// \returns true if the module is well formed.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

} // namespace o2

#endif // O2_IR_VERIFIER_H
