//===- o2/IR/Function.h - OIR variables and functions -----------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function: an ordered list of statements over locals and parameters.
/// OIR functions are single-body (no explicit CFG): the pointer analysis
/// is flow-insensitive and the SHB trace follows statement order, exactly
/// the granularity at which the paper's rules are stated.
///
//===----------------------------------------------------------------------===//

#ifndef O2_IR_FUNCTION_H
#define O2_IR_FUNCTION_H

#include "o2/IR/Stmt.h"
#include "o2/IR/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace o2 {

class Function;
class Module;

/// A local variable or parameter of a function. Carries a module-wide
/// dense ID so analyses can index variables as integers.
class Variable {
public:
  Variable(std::string Name, Type *Ty, Function *Parent, unsigned Id,
           bool IsParam)
      : Name(std::move(Name)), Ty(Ty), Parent(Parent), Id(Id),
        IsParam(IsParam) {}

  const std::string &getName() const { return Name; }
  Type *getType() const { return Ty; }
  Function *getFunction() const { return Parent; }
  unsigned getId() const { return Id; }
  bool isParam() const { return IsParam; }

private:
  std::string Name;
  Type *Ty;
  Function *Parent;
  unsigned Id;
  bool IsParam;
};

/// A global variable (Java static field / C global).
class Global {
public:
  Global(std::string Name, Type *Ty, unsigned Id, bool IsAtomic = false)
      : Name(std::move(Name)), Ty(Ty), Id(Id), IsAtomic(IsAtomic) {}

  const std::string &getName() const { return Name; }
  Type *getType() const { return Ty; }
  unsigned getId() const { return Id; }

  /// See Field::isAtomic().
  bool isAtomic() const { return IsAtomic; }

private:
  std::string Name;
  Type *Ty;
  unsigned Id;
  bool IsAtomic;
};

/// A free function or a class method. For methods, parameter 0 is the
/// implicit receiver named "this".
class Function {
public:
  Function(std::string Name, Type *RetTy, Module &Parent, unsigned Id)
      : Name(std::move(Name)), RetTy(RetTy), ParentModule(Parent), Id(Id) {}

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &getName() const { return Name; }
  Module &getModule() const { return ParentModule; }
  unsigned getId() const { return Id; }

  /// Declared return type; null for void functions.
  Type *getReturnType() const { return RetTy; }

  /// Declaring class if this is a method; null for free functions.
  ClassType *getClass() const { return Class; }
  void setClass(ClassType *C) { Class = C; }
  bool isMethod() const { return Class != nullptr; }

  /// Creates a parameter. For methods, the receiver parameter "this" must
  /// be created first.
  Variable *addParam(const std::string &ParamName, Type *Ty);

  /// Creates a local variable.
  Variable *addLocal(const std::string &LocalName, Type *Ty);

  /// Returns the variable that return statements write into, creating it
  /// lazily. Null if the function returns void.
  Variable *getReturnVar();

  /// Finds a parameter or local by name; null if absent.
  Variable *findVariable(const std::string &VarName) const;

  const std::vector<Variable *> &params() const { return Params; }
  const std::vector<std::unique_ptr<Variable>> &variables() const {
    return Vars;
  }

  const std::vector<std::unique_ptr<Stmt>> &body() const { return Body; }
  size_t size() const { return Body.size(); }
  bool empty() const { return Body.empty(); }

  /// Appends a statement; used by IRBuilder. Takes ownership.
  Stmt *append(std::unique_ptr<Stmt> S) {
    Body.push_back(std::move(S));
    return Body.back().get();
  }

private:
  std::string Name;
  Type *RetTy;
  Module &ParentModule;
  unsigned Id;
  ClassType *Class = nullptr;
  std::vector<Variable *> Params;
  std::vector<std::unique_ptr<Variable>> Vars;
  Variable *RetVar = nullptr;
  std::vector<std::unique_ptr<Stmt>> Body;
};

} // namespace o2

#endif // O2_IR_FUNCTION_H
