//===- o2/IR/Printer.h - Textual OIR printer ----------------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints a Module in the textual OIR format accepted by parseModule().
/// print/parse round-trips: parseModule(printModule(M)) yields a module
/// that prints identically.
///
//===----------------------------------------------------------------------===//

#ifndef O2_IR_PRINTER_H
#define O2_IR_PRINTER_H

#include <string>

namespace o2 {

class Module;
class OutputStream;
class Stmt;

/// Prints \p M to \p OS in textual OIR.
void printModule(const Module &M, OutputStream &OS);

/// Returns the textual OIR for \p M.
std::string printModule(const Module &M);

/// Prints one statement (no trailing newline), e.g. "x = y.f".
void printStmt(const Stmt &S, OutputStream &OS);

/// Returns the textual form of one statement.
std::string printStmt(const Stmt &S);

} // namespace o2

#endif // O2_IR_PRINTER_H
