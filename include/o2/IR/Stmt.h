//===- o2/IR/Stmt.h - OIR statements -----------------------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OIR statement hierarchy. The forms correspond 1:1 to the paper's
/// Table 2 (pointer-analysis rules) and Table 4 (SHB rules):
///
///   ❶ x = new C(b1..bn)     AllocStmt (origin allocation if C has an
///                            origin entry method — rule ❽)
///     x = newarray T         ArrayAllocStmt
///   ❷ x = y                  AssignStmt
///   ❸ x.f = y                FieldStoreStmt
///   ❹ x = y.f                FieldLoadStmt
///   ❺ x[*] = y               ArrayStoreStmt
///   ❻ x = y[*]               ArrayLoadStmt
///     @g = x / x = @g        GlobalStoreStmt / GlobalLoadStmt (statics)
///   ❼ x = y.m(a1..an)        CallStmt (virtual); also direct calls
///   ❾ spawn y.entry(c1..cn)  SpawnStmt (origin entry invocation)
///   ❿ join y                 JoinStmt
///   ⓫ acquire x / release x  AcquireStmt / ReleaseStmt (monitor locks)
///     return x               ReturnStmt
///
//===----------------------------------------------------------------------===//

#ifndef O2_IR_STMT_H
#define O2_IR_STMT_H

#include "o2/Support/Casting.h"
#include "o2/Support/SmallVector.h"

#include <cstdint>
#include <string>

namespace o2 {

class ArrayType;
class ClassType;
class Field;
class Function;
class Global;
class Variable;

/// Base class for all OIR statements. Statements are owned by their
/// Function and carry dense module-wide IDs used by the analyses.
class Stmt {
public:
  enum StmtKind : uint8_t {
    SK_Alloc,
    SK_ArrayAlloc,
    SK_Assign,
    SK_FieldLoad,
    SK_FieldStore,
    SK_ArrayLoad,
    SK_ArrayStore,
    SK_GlobalLoad,
    SK_GlobalStore,
    SK_Call,
    SK_Spawn,
    SK_Join,
    SK_Acquire,
    SK_Release,
    SK_Return,
  };

  StmtKind getKind() const { return Kind; }
  Function *getFunction() const { return Parent; }

  /// Module-wide dense statement ID.
  unsigned getId() const { return Id; }

  /// Position within the owning function body (SHB trace order).
  unsigned getIndex() const { return Index; }

  virtual ~Stmt() = default;

protected:
  Stmt(StmtKind Kind, Function *Parent, unsigned Id, unsigned Index)
      : Kind(Kind), Parent(Parent), Id(Id), Index(Index) {}

private:
  const StmtKind Kind;
  Function *Parent;
  unsigned Id;
  unsigned Index;
};

/// x = new C(args...). If C (transitively) declares an origin entry method,
/// the pointer analysis treats this as an origin allocation (rule ❽).
class AllocStmt : public Stmt {
public:
  AllocStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Target,
            ClassType *AllocType, SmallVector<Variable *, 4> Args,
            unsigned Site, bool InLoop)
      : Stmt(SK_Alloc, Parent, Id, Index), Target(Target),
        AllocType(AllocType), Args(std::move(Args)), Site(Site),
        InLoop(InLoop) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_Alloc; }

  Variable *getTarget() const { return Target; }
  ClassType *getAllocType() const { return AllocType; }
  const SmallVectorImpl<Variable *> &getArgs() const { return Args; }

  /// Module-wide dense allocation-site ID.
  unsigned getSite() const { return Site; }

  /// True if syntactically inside a `loop { }` region; origin allocations
  /// in loops are duplicated (Section 3.2, "Wrapper Functions and Loops").
  bool isInLoop() const { return InLoop; }

private:
  Variable *Target;
  ClassType *AllocType;
  SmallVector<Variable *, 4> Args;
  unsigned Site;
  bool InLoop;
};

/// x = newarray T.
class ArrayAllocStmt : public Stmt {
public:
  ArrayAllocStmt(Function *Parent, unsigned Id, unsigned Index,
                 Variable *Target, ArrayType *AllocType, unsigned Site,
                 bool InLoop)
      : Stmt(SK_ArrayAlloc, Parent, Id, Index), Target(Target),
        AllocType(AllocType), Site(Site), InLoop(InLoop) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_ArrayAlloc; }

  Variable *getTarget() const { return Target; }
  ArrayType *getAllocType() const { return AllocType; }
  unsigned getSite() const { return Site; }
  bool isInLoop() const { return InLoop; }

private:
  Variable *Target;
  ArrayType *AllocType;
  unsigned Site;
  bool InLoop;
};

/// x = y.
class AssignStmt : public Stmt {
public:
  AssignStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Target,
             Variable *Source)
      : Stmt(SK_Assign, Parent, Id, Index), Target(Target), Source(Source) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_Assign; }

  Variable *getTarget() const { return Target; }
  Variable *getSource() const { return Source; }

private:
  Variable *Target;
  Variable *Source;
};

/// x = y.f.
class FieldLoadStmt : public Stmt {
public:
  FieldLoadStmt(Function *Parent, unsigned Id, unsigned Index,
                Variable *Target, Variable *Base, Field *Fld)
      : Stmt(SK_FieldLoad, Parent, Id, Index), Target(Target), Base(Base),
        Fld(Fld) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_FieldLoad; }

  Variable *getTarget() const { return Target; }
  Variable *getBase() const { return Base; }
  Field *getField() const { return Fld; }

private:
  Variable *Target;
  Variable *Base;
  Field *Fld;
};

/// x.f = y.
class FieldStoreStmt : public Stmt {
public:
  FieldStoreStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Base,
                 Field *Fld, Variable *Source)
      : Stmt(SK_FieldStore, Parent, Id, Index), Base(Base), Fld(Fld),
        Source(Source) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_FieldStore; }

  Variable *getBase() const { return Base; }
  Field *getField() const { return Fld; }
  Variable *getSource() const { return Source; }

private:
  Variable *Base;
  Field *Fld;
  Variable *Source;
};

/// x = y[*].
class ArrayLoadStmt : public Stmt {
public:
  ArrayLoadStmt(Function *Parent, unsigned Id, unsigned Index,
                Variable *Target, Variable *Base)
      : Stmt(SK_ArrayLoad, Parent, Id, Index), Target(Target), Base(Base) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_ArrayLoad; }

  Variable *getTarget() const { return Target; }
  Variable *getBase() const { return Base; }

private:
  Variable *Target;
  Variable *Base;
};

/// x[*] = y.
class ArrayStoreStmt : public Stmt {
public:
  ArrayStoreStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Base,
                 Variable *Source)
      : Stmt(SK_ArrayStore, Parent, Id, Index), Base(Base), Source(Source) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_ArrayStore; }

  Variable *getBase() const { return Base; }
  Variable *getSource() const { return Source; }

private:
  Variable *Base;
  Variable *Source;
};

/// x = @g (static field read).
class GlobalLoadStmt : public Stmt {
public:
  GlobalLoadStmt(Function *Parent, unsigned Id, unsigned Index,
                 Variable *Target, Global *G)
      : Stmt(SK_GlobalLoad, Parent, Id, Index), Target(Target), G(G) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_GlobalLoad; }

  Variable *getTarget() const { return Target; }
  Global *getGlobal() const { return G; }

private:
  Variable *Target;
  Global *G;
};

/// @g = x (static field write).
class GlobalStoreStmt : public Stmt {
public:
  GlobalStoreStmt(Function *Parent, unsigned Id, unsigned Index, Global *G,
                  Variable *Source)
      : Stmt(SK_GlobalStore, Parent, Id, Index), G(G), Source(Source) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_GlobalStore; }

  Global *getGlobal() const { return G; }
  Variable *getSource() const { return Source; }

private:
  Global *G;
  Variable *Source;
};

/// x = y.m(a1..an) — virtual call dispatched on the dynamic type of y —
/// or x = f(a1..an) — direct call to a free function.
class CallStmt : public Stmt {
public:
  CallStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Target,
           Variable *Receiver, std::string MethodName, Function *DirectCallee,
           SmallVector<Variable *, 4> Args, unsigned Site)
      : Stmt(SK_Call, Parent, Id, Index), Target(Target), Receiver(Receiver),
        MethodName(std::move(MethodName)), DirectCallee(DirectCallee),
        Args(std::move(Args)), Site(Site) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_Call; }

  /// Destination of the return value; may be null.
  Variable *getTarget() const { return Target; }

  /// Receiver for virtual calls; null for direct calls.
  Variable *getReceiver() const { return Receiver; }
  bool isVirtual() const { return Receiver != nullptr; }

  const std::string &getMethodName() const { return MethodName; }
  Function *getDirectCallee() const { return DirectCallee; }

  const SmallVectorImpl<Variable *> &getArgs() const { return Args; }

  /// Module-wide dense call-site ID (shared space with spawn sites).
  unsigned getSite() const { return Site; }

private:
  Variable *Target;
  Variable *Receiver;
  std::string MethodName;
  Function *DirectCallee;
  SmallVector<Variable *, 4> Args;
  unsigned Site;
};

/// spawn y.entry(c1..cn) — invocation of an origin entry point (rule ❾):
/// thread start, event-handler dispatch, task submission.
class SpawnStmt : public Stmt {
public:
  SpawnStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Receiver,
            std::string EntryName, SmallVector<Variable *, 4> Args,
            unsigned Site, bool InLoop)
      : Stmt(SK_Spawn, Parent, Id, Index), Receiver(Receiver),
        EntryName(std::move(EntryName)), Args(std::move(Args)), Site(Site),
        InLoop(InLoop) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_Spawn; }

  Variable *getReceiver() const { return Receiver; }
  const std::string &getEntryName() const { return EntryName; }
  const SmallVectorImpl<Variable *> &getArgs() const { return Args; }
  unsigned getSite() const { return Site; }
  bool isInLoop() const { return InLoop; }

private:
  Variable *Receiver;
  std::string EntryName;
  SmallVector<Variable *, 4> Args;
  unsigned Site;
  bool InLoop;
};

/// join y — waits for the origins spawned from objects y points to (rule ❿).
class JoinStmt : public Stmt {
public:
  JoinStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Receiver)
      : Stmt(SK_Join, Parent, Id, Index), Receiver(Receiver) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_Join; }

  Variable *getReceiver() const { return Receiver; }

private:
  Variable *Receiver;
};

/// acquire x — enters the monitor of the object(s) x points to.
class AcquireStmt : public Stmt {
public:
  AcquireStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Lock)
      : Stmt(SK_Acquire, Parent, Id, Index), Lock(Lock) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_Acquire; }

  Variable *getLock() const { return Lock; }

private:
  Variable *Lock;
};

/// release x — exits the monitor. Must be well nested within a function.
class ReleaseStmt : public Stmt {
public:
  ReleaseStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Lock)
      : Stmt(SK_Release, Parent, Id, Index), Lock(Lock) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_Release; }

  Variable *getLock() const { return Lock; }

private:
  Variable *Lock;
};

/// return x (or bare return).
class ReturnStmt : public Stmt {
public:
  ReturnStmt(Function *Parent, unsigned Id, unsigned Index, Variable *Value)
      : Stmt(SK_Return, Parent, Id, Index), Value(Value) {}

  static bool classof(const Stmt *S) { return S->getKind() == SK_Return; }

  /// May be null for a bare return.
  Variable *getValue() const { return Value; }

private:
  Variable *Value;
};

} // namespace o2

#endif // O2_IR_STMT_H
