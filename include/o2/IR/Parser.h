//===- o2/IR/Parser.h - Textual OIR parser ------------------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual OIR format into a Module. The grammar (see
/// docs in README.md) covers classes with fields/methods and single
/// inheritance, globals, free functions, and the statement forms of the
/// paper's Table 2 plus lock/join/spawn/loop.
///
//===----------------------------------------------------------------------===//

#ifndef O2_IR_PARSER_H
#define O2_IR_PARSER_H

#include "o2/IR/Module.h"

#include <memory>
#include <string>
#include <string_view>

namespace o2 {

/// Parses \p Source into a fresh module named \p ModuleName.
///
/// \returns the module, or null on a syntax/semantic error, in which case
/// \p Error holds a "line:col: message" diagnostic.
std::unique_ptr<Module> parseModule(std::string_view Source,
                                    std::string &Error,
                                    const std::string &ModuleName = "module");

} // namespace o2

#endif // O2_IR_PARSER_H
