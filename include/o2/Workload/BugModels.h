//===- o2/Workload/BugModels.h - Models of the paper's real bugs ---*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OIR models of the real-world races reported in the paper (Table 10 and
/// Section 5.4) plus the illustrative Figures 2 and 3. Each model
/// preserves the published bug's causal structure — which origins are
/// involved, which lock is missing, whether threads and events interact —
/// so that detecting it exercises the same analysis paths as the paper's
/// case studies.
///
//===----------------------------------------------------------------------===//

#ifndef O2_WORKLOAD_BUGMODELS_H
#define O2_WORKLOAD_BUGMODELS_H

#include "o2/IR/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace o2 {

struct BugModel {
  std::string Name;        ///< e.g. "linux_vsyscall"
  std::string Subject;     ///< code base of the original bug
  std::string Description; ///< what the published race was
  /// Exact number of races O2 (1-origin, all optimizations) reports.
  unsigned ExpectedRaces;
  /// True when the race needs the thread↔event unification to be found.
  bool ThreadEventInteraction;
  /// The OIR source of the model.
  std::string Source;
};

/// All bug models, in a fixed order.
const std::vector<BugModel> &bugModels();

/// Finds a model by name; null if absent.
const BugModel *findBugModel(const std::string &Name);

/// Parses and verifies a model's source. Aborts on internal model errors
/// (models are compiled-in and must always be well formed).
std::unique_ptr<Module> buildBugModel(const BugModel &Model);

} // namespace o2

#endif // O2_WORKLOAD_BUGMODELS_H
