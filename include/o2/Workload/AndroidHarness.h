//===- o2/Workload/AndroidHarness.h - Android analysis harness ----*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Android apps have no explicit main(); the paper (Section 4.2)
/// generates an analysis harness from the app's main Activity: lifecycle
/// handlers (onCreate/onStart/onResume/...) run as ordinary method calls
/// on the looper thread, normal event handlers become origin entries,
/// and activities reachable through startActivity() get their own
/// harness. This module synthesizes that harness into the module as the
/// missing main().
///
//===----------------------------------------------------------------------===//

#ifndef O2_WORKLOAD_ANDROIDHARNESS_H
#define O2_WORKLOAD_ANDROIDHARNESS_H

#include "o2/IR/Module.h"
#include "o2/PTA/OriginSpec.h"

#include <string>
#include <vector>

namespace o2 {

struct AndroidHarnessOptions {
  /// Lifecycle handlers invoked in order as plain calls (no origins).
  std::vector<std::string> LifecycleMethods = {"onCreate", "onStart",
                                               "onResume"};

  /// Entry-point registry used to find event handlers to spawn.
  OriginSpec Spec = OriginSpec::standard();

  /// Name of the direct-call "startActivity" function; classes allocated
  /// as its argument are activities and get harnessed too.
  std::string StartActivityFunction = "startActivity";
};

/// Synthesizes main() for the app whose home screen is \p MainActivity
/// (the class named in AndroidManifest.xml). Returns the created main,
/// or null if the module already has one or the class does not exist.
///
/// The harness allocates the activity (running its constructor), calls
/// its lifecycle methods in order, and spawns each of its event-handler
/// entry methods. Activities started transitively via the
/// startActivity() convention are harnessed the same way.
Function *buildAndroidHarness(Module &M, const std::string &MainActivity,
                              const AndroidHarnessOptions &Opts = {});

} // namespace o2

#endif // O2_WORKLOAD_ANDROIDHARNESS_H
