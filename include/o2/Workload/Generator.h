//===- o2/Workload/Generator.h - Synthetic workload generator -----*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded generator of whole-program OIR workloads whose
/// analysis-relevant shape mirrors the paper's evaluation subjects:
/// number of origins (threads and event handlers), per-origin call-chain
/// depth, shared/local allocation mix with k-CFA-confusing allocation
/// wrapper chains of depths 1–3, lock density, nested thread creation,
/// loop spawns, and padding code to scale program size. Each named
/// profile in benchmarkProfiles() corresponds to one subject row of
/// Tables 5–9.
///
//===----------------------------------------------------------------------===//

#ifndef O2_WORKLOAD_GENERATOR_H
#define O2_WORKLOAD_GENERATOR_H

#include "o2/IR/Module.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace o2 {

struct WorkloadProfile {
  std::string Name = "synthetic";

  /// How many thread origins / event-handler origins main() creates.
  unsigned NumThreads = 4;
  unsigned NumEventHandlers = 0;

  /// Depth of the per-origin method chain run() -> step0 -> ... -> leaf.
  unsigned CallDepth = 3;

  /// Shared-object partition: racy objects take unprotected writes,
  /// locked objects are written only under their lock, read-only objects
  /// are written by main before any spawn.
  unsigned RacyObjects = 1;
  unsigned LockedObjects = 2;
  unsigned ReadOnlyObjects = 2;
  unsigned NumLocks = 2;

  /// Per-origin leaf workload.
  unsigned ProtectedWritesPerOrigin = 2;
  unsigned UnprotectedWritesPerOrigin = 1;
  unsigned ReadsPerOrigin = 3;

  /// Write/read repetitions inside each lock region (exercises the
  /// detector's lock-region merging, optimization 3).
  unsigned AccessesPerLockRegion = 3;

  /// Origin-local allocations through shared wrapper chains of depth 1,
  /// 2, and 3. Depth d is disambiguated by (d)-CFA but merged by
  /// (d-1)-CFA, while OPA and k-obj keep every depth apart — these drive
  /// the precision gradation of Table 8.
  unsigned LocalPatternsDepth1 = 1;
  unsigned LocalPatternsDepth2 = 1;
  unsigned LocalPatternsDepth3 = 1;

  /// Context amplifier: a layered utility library where every method
  /// allocates and calls into AmplifierFanOut next-layer receivers at
  /// distinct call sites. Reachable ⟨method, context⟩ instances grow
  /// roughly as FanOut^k for k-CFA/k-obj while staying linear for 0-ctx
  /// and OPA — this drives the performance blow-ups of Tables 5 and 6.
  /// Layers = 0 disables.
  unsigned AmplifierLayers = 0;
  unsigned AmplifierFanOut = 4;
  unsigned AmplifierStmtsPerMethod = 12;

  /// Nested thread creation depth (Redis-style); 0 disables.
  unsigned NestedSpawnDepth = 0;

  /// Spawn the thread origins from inside a loop (duplicated origins).
  bool SpawnInLoop = false;

  /// Sequential padding code to scale program size.
  unsigned PaddingFunctions = 0;
  unsigned PaddingStmtsPerFunction = 30;

  uint64_t Seed = 42;
};

/// Generates the workload. The result verifies and is fully determined
/// by the profile (including Seed).
std::unique_ptr<Module> generateWorkload(const WorkloadProfile &P);

/// Named profiles modeled after the paper's evaluation subjects
/// (DaCapo, Android apps, distributed systems, C/C++ applications).
const std::vector<WorkloadProfile> &benchmarkProfiles();

/// Finds a profile by name; null if absent.
const WorkloadProfile *findProfile(const std::string &Name);

} // namespace o2

#endif // O2_WORKLOAD_GENERATOR_H
