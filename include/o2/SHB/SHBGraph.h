//===- o2/SHB/SHBGraph.h - Static happens-before graph -----------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static happens-before (SHB) graph of Section 4 (Table 4), built
/// over any pointer-analysis result:
///
///  - One abstract thread per spawn-target instance (plus main); origins
///    map 1:1 onto abstract threads under OPA.
///  - Intra-thread happens-before is represented by monotonically
///    increasing integer positions instead of explicit edges
///    (optimization 1 of Section 4.1): checking order is an integer
///    comparison.
///  - Locksets are interned into canonical lockset IDs with a cached
///    intersection test (optimization 2).
///  - Lock regions are tracked so the detector can merge all accesses to
///    the same location within one region (optimization 3).
///  - Inter-thread edges exist only at spawns (entry ⇒ origin_first) and
///    joins (origin_last ⇒ join).
///
/// Event-handler threads can be serialized by an implicit global lock
/// (the paper's Android treatment, Section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef O2_SHB_SHBGRAPH_H
#define O2_SHB_SHBGRAPH_H

#include "o2/OSA/MemLoc.h"
#include "o2/PTA/PointerAnalysis.h"
#include "o2/Support/InternTable.h"

#include <map>
#include <unordered_map>
#include <vector>

namespace o2 {

/// Canonical lockset handle; InternTable::Empty is the empty lockset.
using LocksetId = uint32_t;

struct SHBOptions {
  /// Serialize event-handler threads with an implicit global lock
  /// (Section 4.2: all events run on the looper thread).
  bool SerializeEventHandlers = true;

  /// Model a spawn inside a loop as two parallel thread instances.
  bool DuplicateLoopSpawns = true;

  /// Caps to keep degenerate inputs bounded.
  unsigned MaxThreads = 4096;
  uint64_t MaxEventsPerThread = 1u << 22;

  /// Optional cooperative cancellation, polled per traced statement; on
  /// expiry the builder stops and flags the partial graph. Not owned.
  const CancellationToken *Cancel = nullptr;
};

/// One read or write of a set of abstract memory locations.
struct AccessEvent {
  uint32_t Pos = 0;        ///< Intra-thread position (integer HB).
  uint32_t Thread = 0;
  const Stmt *S = nullptr;
  LocksetId Lockset = 0;
  uint32_t LockRegion = 0; ///< 0 = outside any lock region.
  bool IsWrite = false;
  /// The region contained a spawn/join, so region merging is unsound for
  /// it and the detector must not collapse its accesses.
  bool RegionHasSync = false;
  SmallVector<MemLoc, 2> Locs;
};

/// One lock acquisition, with the locks already held at that point.
/// Feeds the lock-order (deadlock) analysis.
struct AcquireEvent {
  uint32_t Pos = 0;
  uint32_t Thread = 0;
  const Stmt *S = nullptr;
  /// Canonical lockset held BEFORE this acquire.
  LocksetId HeldBefore = 0;
  /// Lock elements this acquire may take (points-to of the lock var).
  SmallVector<uint32_t, 2> Acquired;
  /// The lock region this acquire opens (matches AccessEvent::LockRegion).
  uint32_t Region = 0;
};

/// One abstract thread (origin instance).
struct ThreadInfo {
  unsigned Id = 0;
  OriginKind Kind = OriginKind::Main;
  const Function *Entry = nullptr;
  Ctx EntryCtx = 0;
  const SpawnStmt *Spawn = nullptr; ///< Creating spawn; null for main.
  unsigned RecvObj = ~0u;           ///< Receiver (origin) object; ~0u main.
  unsigned Dup = 0;                 ///< Loop-duplication index.
  uint32_t NumEvents = 0;           ///< Total positions in the trace.
  bool Truncated = false;           ///< Event cap hit.

  /// Inter-thread edges. Starts: (parent thread, parent position) pairs
  /// whose spawn begins this thread. SpawnEdges: (position, child) pairs
  /// for spawns performed by this thread. Joins: (joining thread,
  /// position) pairs this thread's end is ordered before.
  std::vector<std::pair<unsigned, uint32_t>> Starts;
  std::vector<std::pair<uint32_t, unsigned>> SpawnEdges;
  std::vector<std::pair<unsigned, uint32_t>> Joins;

  std::vector<AccessEvent> Accesses;
  std::vector<AcquireEvent> Acquires;
};

class SHBGraph {
public:
  const std::vector<ThreadInfo> &threads() const { return Threads; }
  const ThreadInfo &thread(unsigned Id) const { return Threads[Id]; }
  unsigned numThreads() const { return static_cast<unsigned>(Threads.size()); }

  /// Total number of access events across all threads.
  uint64_t numAccessEvents() const;

  /// Lock elements (object IDs; may include the implicit UI-lock element)
  /// of a canonical lockset.
  ArrayRef<uint32_t> locksetElems(LocksetId L) const {
    return Locksets.get(L);
  }

  /// Number of interned canonical locksets (valid LocksetIds are
  /// [0, numLocksets()); 0 is the empty lockset).
  size_t numLocksets() const { return Locksets.size(); }

  /// True if the two locksets share a lock (optimization 2: canonical IDs
  /// with a memoized pairwise test).
  bool locksetsIntersect(LocksetId A, LocksetId B) const;

  /// Same test without canonical-ID caching (the baseline the paper's
  /// optimization is measured against).
  bool locksetsIntersectUncached(LocksetId A, LocksetId B) const;

  /// Happens-before between position \p P1 of thread \p T1 and position
  /// \p P2 of thread \p T2, via integer comparison intra-thread and a
  /// memoized fixpoint over spawn/join edges across threads.
  bool happensBefore(unsigned T1, uint32_t P1, unsigned T2,
                     uint32_t P2) const;

  /// Reference implementation: breadth-first search over individual
  /// (thread, position) nodes, the way a straw-man SHB traversal would.
  /// Semantically identical to happensBefore(); used as the soundness
  /// oracle and the D4-style baseline.
  bool happensBeforeNaive(unsigned T1, uint32_t P1, unsigned T2,
                          uint32_t P2) const;

  /// The implicit lock element serializing event handlers.
  static constexpr uint32_t UILockElem = 0xfffffffeu;

  /// True if construction was cancelled (the graph covers a prefix of the
  /// threads/events).
  bool cancelled() const { return Cancelled; }

  /// True if the module has no main() entry point: the graph is empty
  /// (no threads — nothing executes, so no races). The verifier catches
  /// this up front; the flag exists for callers that skip verification.
  bool entryMissing() const { return EntryMissing; }

private:
  friend class SHBBuilder;

  bool Cancelled = false;
  bool EntryMissing = false;
  std::vector<ThreadInfo> Threads;
  InternTable Locksets;
  mutable std::unordered_map<uint64_t, bool> IntersectCache;
  /// HB cache: (thread, spawn-bucket) -> earliest reachable position per
  /// thread. Buckets make the cache finite: reachability only changes at
  /// spawn-edge boundaries.
  mutable std::map<std::pair<unsigned, size_t>, std::vector<uint32_t>>
      ReachCache;

  const std::vector<uint32_t> &reachFrom(unsigned T, uint32_t P) const;
};

/// Builds the SHB graph from a pointer-analysis result.
SHBGraph buildSHBGraph(const PTAResult &PTA, const SHBOptions &Opts = {});

/// Graphviz dump of the thread/spawn/join structure (one node per
/// abstract thread; spawn edges solid, join edges dashed).
void printSHBDot(const SHBGraph &SHB, OutputStream &OS);

} // namespace o2

#endif // O2_SHB_SHBGRAPH_H
