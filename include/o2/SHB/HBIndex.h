//===- o2/SHB/HBIndex.h - Precomputed SHB query indexes -----------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, fully precomputed query indexes over a built SHBGraph.
///
/// `SHBGraph::happensBefore` and `SHBGraph::locksetsIntersect` answer
/// queries through mutable memoization caches, which is fine for the
/// serial detector but (a) re-runs the spawn/join fixpoint on every cache
/// miss and (b) cannot be shared across the parallel race engine's worker
/// threads. The two classes here trade one up-front construction pass for
/// O(1), lock-free, shareable lookups:
///
///  - HBIndex: per-segment reachability clocks. Each thread's trace is
///    cut into segments at its spawn-edge positions (cross-thread
///    reachability only changes when the source position crosses a spawn
///    edge — the same bucketing SHBGraph's memo cache uses); for every
///    segment the index stores the earliest reachable position of every
///    thread. A happens-before query is then one row lookup plus an
///    integer compare. Semantically identical to both
///    `SHBGraph::happensBefore` and `happensBeforeNaive`
///    (HBIndexTest asserts all three agree on every event pair).
///
///  - LocksetMatrix: the full pairwise intersection relation of the
///    interned lockset universe as one bit matrix, built with the
///    uncached merge test. The race engines consult it when the universe
///    is small (quadratic memory); otherwise the parallel engine falls
///    back to shard-local memo caches.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SHB_HBINDEX_H
#define O2_SHB_HBINDEX_H

#include "o2/SHB/SHBGraph.h"

#include <vector>

namespace o2 {

class HBIndex {
public:
  /// Builds the full index: one reachability row per (thread, segment).
  explicit HBIndex(const SHBGraph &SHB);

  /// Sentinel for "no position of that thread is reachable".
  static constexpr uint32_t Unreached = ~uint32_t(0);

  /// Segment of position \p P within thread \p T: the number of spawn
  /// edges of T strictly before P (O(log #spawns of T)).
  unsigned segmentOf(unsigned T, uint32_t P) const {
    const std::vector<uint32_t> &Pos = SpawnPos[T];
    return static_cast<unsigned>(
        std::lower_bound(Pos.begin(), Pos.end(), P) - Pos.begin());
  }

  /// Dense row id of (thread \p T, segment \p Seg), for row().
  unsigned rowOf(unsigned T, unsigned Seg) const { return RowBase[T] + Seg; }

  /// Earliest reachable positions per thread from any position in the
  /// given row's segment; entries are Unreached when no path exists.
  const uint32_t *row(unsigned Row) const {
    return Reach.data() + size_t(Row) * NumThreads;
  }

  /// Earliest position of \p T2 ordered after segment \p Row of its
  /// source thread (O(1)).
  uint32_t reach(unsigned Row, unsigned T2) const { return row(Row)[T2]; }

  /// Happens-before with the same semantics as SHBGraph::happensBefore:
  /// integer comparison intra-thread, precomputed reachability across.
  bool happensBefore(unsigned T1, uint32_t P1, unsigned T2,
                     uint32_t P2) const {
    if (T1 == T2)
      return P1 < P2;
    uint32_t R = reach(rowOf(T1, segmentOf(T1, P1)), T2);
    return R != Unreached && R <= P2;
  }

  /// Total number of (thread, segment) rows.
  size_t numSegments() const { return Reach.size() / std::max(1u, NumThreads); }

  unsigned numThreads() const { return NumThreads; }

private:
  unsigned NumThreads = 0;
  /// Per thread: positions of its spawn edges (ascending, duplicates kept
  /// so segment ids line up with SHBGraph's spawn-edge buckets).
  std::vector<std::vector<uint32_t>> SpawnPos;
  /// Per thread: first row id of its segments.
  std::vector<unsigned> RowBase;
  /// numSegments x NumThreads matrix of earliest reachable positions.
  std::vector<uint32_t> Reach;
};

/// Pairwise lockset-intersection relation as an immutable bit matrix.
class LocksetMatrix {
public:
  explicit LocksetMatrix(const SHBGraph &SHB);

  bool intersect(LocksetId A, LocksetId B) const {
    size_t Bit = size_t(A) * N + B;
    return (Bits[Bit >> 6] >> (Bit & 63)) & 1;
  }

  size_t numLocksets() const { return N; }

  /// Memory the matrix for \p NumLocksets locksets would take, in bytes.
  static size_t bytesFor(size_t NumLocksets) {
    return ((NumLocksets * NumLocksets + 63) / 64) * 8;
  }

private:
  size_t N = 0;
  std::vector<uint64_t> Bits;
};

} // namespace o2

#endif // O2_SHB_HBINDEX_H
