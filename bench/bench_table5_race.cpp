//===- bench_table5_race.cpp - Table 5 (right): race-detection times ----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Regenerates the right half of Table 5: end-to-end race detection time
// (pointer analysis + SHB + detection, as in the paper) for O2 and for
// the same engine running on 0-ctx/k-CFA/k-obj points-to results, plus
// the RacerD-like syntactic baseline. Expected shape: O2 within a small
// factor of 0-ctx, far ahead of the deep-context configurations.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "o2/Race/RacerDLike.h"

using namespace o2;
using namespace o2bench;

static void BM_RaceDetection(benchmark::State &State,
                             const std::string &ProfileName,
                             PTAOptions Opts) {
  auto M = buildProfile(ProfileName);
  for (auto _ : State) {
    auto PTA = runPointerAnalysis(*M, Opts);
    RaceDetectorOptions DetOpts;
    DetOpts.MaxPairChecks = 2'000'000; // the ">4h" analogue for detection
    RaceReport Report = detectRaces(*PTA, DetOpts);
    State.counters["races"] = Report.numRaces();
    State.counters["budget_hit"] =
        (PTA->hitBudget() || Report.stats().get("race.budget-hit")) ? 1 : 0;
    benchmark::DoNotOptimize(Report);
  }
}

static void BM_RacerD(benchmark::State &State,
                      const std::string &ProfileName) {
  auto M = buildProfile(ProfileName);
  for (auto _ : State) {
    RacerDReport Report = runRacerDLike(*M);
    State.counters["races"] = Report.numPotentialRaces();
    benchmark::DoNotOptimize(Report);
  }
}

int main(int Argc, char **Argv) {
  std::vector<std::string> Profiles;
  for (const std::string &P : dacapoProfiles())
    Profiles.push_back(P);
  for (const std::string &P : androidProfiles())
    Profiles.push_back(P);
  for (const std::string &P : distributedProfiles())
    Profiles.push_back(P);

  for (const std::string &Profile : Profiles) {
    for (const auto &[CfgName, Opts] : pointerAnalysisConfigs()) {
      std::string Label = CfgName == "1-origin" ? "O2" : CfgName;
      benchmark::RegisterBenchmark(
          ("table5_race/" + Profile + "/" + Label).c_str(), BM_RaceDetection,
          Profile, Opts)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("table5_race/" + Profile + "/racerd").c_str(), BM_RacerD, Profile)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  return runBenchmarks(
      Argc, Argv,
      "Table 5 (right): end-to-end race-detection time per benchmark and "
      "context abstraction (O2 = detection on OPA); counter: #races");
}
