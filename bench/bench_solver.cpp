//===- bench_solver.cpp - worklist vs. wave constraint-engine times -----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Head-to-head comparison of the two PTA constraint engines on the
// heaviest workloads of each table group. Both engines compute the same
// fixpoint (enforced by SolverEquivalenceTest); this measures the cost of
// getting there. Expected shape: the wave engine at least matches the
// worklist on every subject and pulls ahead where copy-edge cycles form
// (large amplifier fan-outs), because online SCC collapse turns repeated
// cyclic re-propagation into single passes over the condensation DAG.
// Counters: waves, collapsed (cycle nodes merged), prop_kwords
// (64-bit words ORed during propagation, in thousands).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace o2;
using namespace o2bench;

static void BM_Solver(benchmark::State &State, const std::string &ProfileName,
                      PTAOptions Opts) {
  auto M = buildProfile(ProfileName);
  for (auto _ : State) {
    auto R = runPointerAnalysis(*M, Opts);
    State.counters["waves"] = static_cast<double>(R->stats().get("pta.waves"));
    State.counters["collapsed"] =
        static_cast<double>(R->stats().get("pta.scc-collapsed"));
    State.counters["prop_kwords"] =
        static_cast<double>(R->stats().get("pta.propagated-words")) / 1000.0;
    State.counters["budget_hit"] = R->hitBudget() ? 1 : 0;
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  // The heaviest profile of each group plus the largest overall
  // (telegram: 134 origins, sqlite3: fan-out 44, hbase: nested spawns).
  const std::vector<std::string> Profiles = {"h2",       "telegram", "hbase",
                                             "sqlite3",  "zookeeper"};
  const std::vector<std::pair<std::string, SolverKind>> Engines = {
      {"worklist", SolverKind::Worklist},
      {"wave", SolverKind::Wave},
  };

  for (const std::string &Profile : Profiles)
    for (const auto &[CfgName, BaseOpts] : pointerAnalysisConfigs())
      for (const auto &[EngineName, Engine] : Engines) {
        PTAOptions Opts = BaseOpts;
        Opts.Solver = Engine;
        benchmark::RegisterBenchmark(
            ("solver/" + Profile + "/" + CfgName + "/" + EngineName).c_str(),
            BM_Solver, Profile, Opts)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }

  return runBenchmarks(
      Argc, Argv,
      "Constraint engines head-to-head: worklist vs. wave propagation "
      "(same fixpoint, see SolverEquivalenceTest); counters: waves, "
      "collapsed SCC nodes, propagated words (k), budget_hit");
}
