//===- bench_table10_bugs.cpp - Table 10: confirmed real-world races ------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 10 over the bug-model programs: for every modeled
// code base, the number of races O2 finds (counter "found" must equal
// "expected"), whether the bug needs the thread<->event unification
// (counter "thread_event"), and what the RacerD-like baseline reports on
// the same program. Expected shape: O2 finds every modeled bug;
// RacerD-like floods the thread<->event cases with name-level warnings
// or (without alias reasoning) misses the object-level distinction.
//
//===----------------------------------------------------------------------===//

#include "o2/O2.h"
#include "o2/Race/RacerDLike.h"
#include "o2/Workload/BugModels.h"

#include <benchmark/benchmark.h>

using namespace o2;

static void BM_BugModel(benchmark::State &State, const BugModel *Model) {
  auto M = buildBugModel(*Model);
  for (auto _ : State) {
    O2Analysis Result = analyzeModule(*M);
    State.counters["found"] = Result.Races.numRaces();
    State.counters["expected"] = Model->ExpectedRaces;
    State.counters["thread_event"] = Model->ThreadEventInteraction ? 1 : 0;
    RacerDReport RacerD = runRacerDLike(*M);
    State.counters["racerd"] = RacerD.numPotentialRaces();
    // The Section 5.4 study shape: how much of the heap is origin-local.
    State.counters["objects"] =
        static_cast<double>(Result.PTA->objects().size());
    State.counters["s_obj"] = Result.Sharing.numSharedObjects();
    State.counters["accesses"] = Result.Sharing.numAccessStmts();
    State.counters["s_access"] = Result.Sharing.numSharedAccessStmts();
    benchmark::DoNotOptimize(Result);
  }
}

int main(int Argc, char **Argv) {
  for (const BugModel &Model : bugModels())
    benchmark::RegisterBenchmark(("table10_bugs/" + Model.Name).c_str(),
                                 BM_BugModel, &Model)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);

  std::printf("# Table 10: new races found by O2 in the modeled code bases "
              "(found == expected per model; racerd = baseline warnings)\n");
  ::benchmark::Initialize(&Argc, Argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
