//===- bench_ablation_opts.cpp - Section 4.1 optimization ablation --------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Ablates the three sound optimizations of Section 4.1 on a large
// lock-heavy workload: integer-ID happens-before, canonical lockset IDs
// with caching, and lock-region merging. Counters report the detector's
// internal work (pairs checked, HB queries, lockset checks) so the
// mechanism behind each speedup is visible, and "races" shows that the
// verdicts do not degrade.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace o2;
using namespace o2bench;

static WorkloadProfile ablationProfile() {
  WorkloadProfile P;
  P.Name = "ablation";
  P.NumThreads = 16;
  P.NumEventHandlers = 8;
  P.CallDepth = 4;
  P.RacyObjects = 3;
  P.LockedObjects = 6;
  P.ReadOnlyObjects = 4;
  P.NumLocks = 4;
  P.ProtectedWritesPerOrigin = 10;
  P.UnprotectedWritesPerOrigin = 2;
  P.ReadsPerOrigin = 8;
  P.Seed = 99;
  return P;
}

static void BM_Ablation(benchmark::State &State, RaceDetectorOptions Opts) {
  auto M = generateWorkload(ablationProfile());
  PTAOptions PTAOpts;
  PTAOpts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, PTAOpts);
  SHBGraph SHB = buildSHBGraph(*PTA, Opts.SHB);
  for (auto _ : State) {
    RaceReport R = detectRaces(*PTA, SHB, Opts);
    State.counters["races"] = R.numRaces();
    State.counters["pairs"] =
        static_cast<double>(R.stats().get("race.pairs-checked"));
    State.counters["hb_queries"] =
        static_cast<double>(R.stats().get("race.hb-queries"));
    State.counters["lockset_checks"] =
        static_cast<double>(R.stats().get("race.lockset-checks"));
    State.counters["merged"] =
        static_cast<double>(R.stats().get("race.merged-accesses"));
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  auto Register = [](const char *Name, bool HB, bool Lockset, bool Merge) {
    RaceDetectorOptions Opts;
    // The serial engine with the memoized fixpoint is the configuration
    // the paper's Section 4.1 ablation describes; the parallel engine
    // and the precomputed HB index are benchmarked in bench_race_engine.
    Opts.Engine = RaceEngineKind::Serial;
    Opts.HB = HB ? RaceHBKind::Memo : RaceHBKind::Naive;
    Opts.CacheLocksetChecks = Lockset;
    Opts.LockRegionMerging = Merge;
    benchmark::RegisterBenchmark(Name, BM_Ablation, Opts)
        ->Unit(benchmark::kMillisecond);
  };
  Register("ablation/all-optimizations", true, true, true);
  Register("ablation/no-integer-hb", false, true, true);
  Register("ablation/no-lockset-cache", true, false, true);
  Register("ablation/no-region-merging", true, true, false);
  Register("ablation/none(D4-style)", false, false, false);

  return runBenchmarks(
      Argc, Argv,
      "Section 4.1 ablation: detector time and internal work with each "
      "optimization disabled (race verdicts stay equivalent)");
}
