//===- bench_android_events.cpp - Section 4.2 event treatment ablation ----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Ablates the Android treatment of Section 4.2 on the app-shaped
// profiles: with the implicit looper lock, handler/handler pairs are
// serialized and "no false positive among event handlers will be
// reported"; without it the detector floods with handler/handler
// warnings. Thread/handler races are unaffected either way — that is
// where the paper's real Android bugs live.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace o2;
using namespace o2bench;

static void BM_EventTreatment(benchmark::State &State,
                              const std::string &ProfileName,
                              bool Serialize) {
  auto M = buildProfile(ProfileName);
  PTAOptions PTAOpts;
  PTAOpts.Kind = ContextKind::Origin;
  auto PTA = runPointerAnalysis(*M, PTAOpts);
  RaceDetectorOptions Opts;
  Opts.SHB.SerializeEventHandlers = Serialize;
  SHBGraph SHB = buildSHBGraph(*PTA, Opts.SHB);
  for (auto _ : State) {
    RaceReport R = detectRaces(*PTA, SHB, Opts);
    unsigned HandlerPairs = 0, MixedPairs = 0;
    for (const Race &Rc : R.races()) {
      bool AEvent = SHB.thread(Rc.ThreadA).Kind == OriginKind::Event;
      bool BEvent = SHB.thread(Rc.ThreadB).Kind == OriginKind::Event;
      if (AEvent && BEvent)
        ++HandlerPairs;
      else if (AEvent != BEvent)
        ++MixedPairs;
    }
    State.counters["races"] = R.numRaces();
    State.counters["handler_handler"] = HandlerPairs;
    State.counters["thread_handler"] = MixedPairs;
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  for (const std::string &Profile : androidProfiles()) {
    benchmark::RegisterBenchmark(
        ("android_events/" + Profile + "/serialized").c_str(),
        BM_EventTreatment, Profile, true)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("android_events/" + Profile + "/free-running").c_str(),
        BM_EventTreatment, Profile, false)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return runBenchmarks(
      Argc, Argv,
      "Section 4.2 ablation: races with/without the implicit looper lock "
      "(handler_handler must drop to 0 when serialized; thread_handler "
      "races remain)");
}
