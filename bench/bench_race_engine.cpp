//===- bench_race_engine.cpp - serial vs parallel race-engine scaling -----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Measures the sharded, class-based race engine against the serial
// pairwise oracle on race-heavy generated workloads, and ablates its two
// index structures:
//
//   - engine/serial-*     : the serial engine, one line per HB mode
//                           (naive BFS, memoized fixpoint, precomputed
//                           index) — the HB-index speedup in isolation;
//   - engine/parallel/J   : the parallel engine at J worker threads —
//                           J=1 measures the pure class-math win, higher
//                           J the sharding scalability;
//   - engine/no-matrix/J  : parallel with the precomputed lockset matrix
//                           disabled (shard-local memo caches instead).
//
// Every line reports the race count and the schedule-independent work
// counters, so a report divergence between configurations is visible
// directly in the table (the counters must match across all of them; the
// byte-level contract is enforced by ParallelRaceEngineTest and CI).
// Pass --benchmark_format=json for machine-readable output.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace o2;
using namespace o2bench;

/// A race-heavy workload with enough shared locations for sharding to
/// bite: many threads and handlers hammering a mix of racy, locked, and
/// read-only objects. The largest profile the equivalence tests skip.
static WorkloadProfile engineProfile(unsigned Scale) {
  WorkloadProfile P;
  P.Name = "engine-x" + std::to_string(Scale);
  P.NumThreads = 8 * Scale;
  P.NumEventHandlers = 4 * Scale;
  P.CallDepth = 3;
  P.RacyObjects = 6 * Scale;
  P.LockedObjects = 6 * Scale;
  P.ReadOnlyObjects = 8;
  P.NumLocks = 8;
  P.ProtectedWritesPerOrigin = 6;
  P.UnprotectedWritesPerOrigin = 4;
  P.ReadsPerOrigin = 10;
  P.Seed = 4242;
  return P;
}

namespace {

struct Prepared {
  std::unique_ptr<Module> M;
  std::unique_ptr<PTAResult> PTA;
  SHBGraph SHB;
};

const Prepared &prepared(unsigned Scale) {
  // One analysis per scale, shared by every registered configuration so
  // the benchmark times only the detector.
  static std::map<unsigned, Prepared> Cache;
  auto It = Cache.find(Scale);
  if (It == Cache.end()) {
    Prepared P;
    P.M = generateWorkload(engineProfile(Scale));
    PTAOptions PTAOpts;
    PTAOpts.Kind = ContextKind::Origin;
    P.PTA = runPointerAnalysis(*P.M, PTAOpts);
    P.SHB = buildSHBGraph(*P.PTA);
    It = Cache.emplace(Scale, std::move(P)).first;
  }
  return It->second;
}

} // namespace

static void BM_Engine(benchmark::State &State, unsigned Scale,
                      RaceDetectorOptions Opts) {
  const Prepared &P = prepared(Scale);
  for (auto _ : State) {
    RaceReport R = detectRaces(*P.PTA, P.SHB, Opts);
    State.counters["races"] = R.numRaces();
    State.counters["pairs"] =
        static_cast<double>(R.stats().get("race.pairs-checked"));
    State.counters["hb_queries"] =
        static_cast<double>(R.stats().get("race.hb-queries"));
    State.counters["locations"] =
        static_cast<double>(R.stats().get("race.shared-locations"));
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  auto Register = [](const std::string &Name, unsigned Scale,
                     RaceDetectorOptions Opts) {
    benchmark::RegisterBenchmark(Name.c_str(), BM_Engine, Scale, Opts)
        ->Unit(benchmark::kMillisecond);
  };

  for (unsigned Scale : {1u, 4u}) {
    std::string Tag = "/x" + std::to_string(Scale);

    for (auto [HBName, HB] :
         {std::pair<const char *, RaceHBKind>{"naive", RaceHBKind::Naive},
          {"memo", RaceHBKind::Memo},
          {"index", RaceHBKind::Index}}) {
      // The naive BFS is quadratic per query; keep it off the big scale
      // so the harness stays runnable as a CI smoke test.
      if (Scale > 1 && HB == RaceHBKind::Naive)
        continue;
      RaceDetectorOptions Opts;
      Opts.Engine = RaceEngineKind::Serial;
      Opts.HB = HB;
      Register("engine/serial-" + std::string(HBName) + Tag, Scale, Opts);
    }

    for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
      RaceDetectorOptions Opts;
      Opts.Engine = RaceEngineKind::Parallel;
      Opts.Jobs = Jobs;
      Opts.MinParallelLocations = 1;
      Register("engine/parallel/" + std::to_string(Jobs) + Tag, Scale, Opts);
    }

    RaceDetectorOptions NoMatrix;
    NoMatrix.Engine = RaceEngineKind::Parallel;
    NoMatrix.Jobs = 4;
    NoMatrix.MinParallelLocations = 1;
    NoMatrix.LocksetMatrixMaxSize = 0;
    Register("engine/no-matrix/4" + Tag, Scale, NoMatrix);
  }

  return runBenchmarks(
      Argc, Argv,
      "Race-engine scaling: serial HB modes vs the sharded class-based "
      "engine at 1/2/4/8 jobs (counters must agree across every row)");
}
