//===- bench_cache.cpp - warm-cache speedup for batch re-runs ------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Measures the batch driver's persistent result cache (`--cache-dir`):
// the full benchmark corpus analyzed cold (every job misses and is
// stored) versus warm (every job replays its serialized record). The
// warm run skips PTA, SHB, and the detectors entirely — its cost is
// module generation/hashing plus deserialization — so the expected gap
// is one-to-two orders of magnitude on this corpus. Counters: races
// (identical cold and warm, by construction), cache hits and misses.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "o2/Driver/Driver.h"

#include <filesystem>

using namespace o2;
using namespace o2bench;

static std::vector<JobSpec> corpusSpecs() {
  std::vector<JobSpec> Specs;
  for (const WorkloadProfile &P : benchmarkProfiles()) {
    JobSpec S;
    S.Name = P.Name;
    S.Profile = &P;
    Specs.push_back(std::move(S));
  }
  return Specs;
}

static std::string cacheDir() {
  return (std::filesystem::temp_directory_path() / "o2-bench-cache")
      .string();
}

static void BM_Cache(benchmark::State &State, bool Warm) {
  std::vector<JobSpec> Specs = corpusSpecs();
  BatchOptions Opts;
  Opts.Jobs = 4;
  Opts.Analyses = {O2Phase::OSA, O2Phase::Detect, O2Phase::Deadlock,
                   O2Phase::OverSync};
  Opts.CacheDir = cacheDir();

  if (Warm) // ensure every entry exists before timing the replay
    runBatch(Specs, Opts);

  for (auto _ : State) {
    if (!Warm) {
      State.PauseTiming();
      std::filesystem::remove_all(Opts.CacheDir);
      State.ResumeTiming();
    }
    BatchResult R = runBatch(Specs, Opts);
    State.counters["races"] =
        static_cast<double>(R.Summary.get("races.total"));
    State.counters["hits"] = static_cast<double>(R.CacheHits);
    State.counters["misses"] = static_cast<double>(R.CacheMisses);
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  std::filesystem::remove_all(cacheDir());

  benchmark::RegisterBenchmark("cache/table5-corpus/cold", BM_Cache,
                               /*Warm=*/false)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("cache/table5-corpus/warm", BM_Cache,
                               /*Warm=*/true)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  int Rc = runBenchmarks(
      Argc, Argv,
      "Cold vs warm batch runs over the benchmark corpus with a "
      "persistent --cache-dir; counters: races, cache hits/misses");
  std::filesystem::remove_all(cacheDir());
  return Rc;
}
