//===- bench_table7_osa.cpp - Table 7: OSA vs escape analysis ------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 7 (OSA performance and #shared accesses) and the
// Section 5.1.2 comparison with the TLOA-style escape analysis. As in
// the paper, OSA times include the OPA run. Expected shape: OSA
// completes quickly and reports strictly fewer shared accesses than the
// escape analysis, which over-approximates (all statics escape, no
// per-origin read/write refinement).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "o2/OSA/EscapeAnalysis.h"

using namespace o2;
using namespace o2bench;

static void BM_OSA(benchmark::State &State, const std::string &ProfileName) {
  auto M = buildProfile(ProfileName);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  for (auto _ : State) {
    auto PTA = runPointerAnalysis(*M, Opts);
    SharingResult R = runSharingAnalysis(*PTA);
    State.counters["s_access"] = R.numSharedAccessStmts();
    State.counters["s_obj"] = R.numSharedObjects();
    State.counters["accesses"] = R.numAccessStmts();
    benchmark::DoNotOptimize(R);
  }
}

static void BM_Escape(benchmark::State &State,
                      const std::string &ProfileName) {
  auto M = buildProfile(ProfileName);
  PTAOptions Opts;
  Opts.Kind = ContextKind::Origin;
  for (auto _ : State) {
    auto PTA = runPointerAnalysis(*M, Opts);
    EscapeResult R = runEscapeAnalysis(*PTA);
    State.counters["s_access"] = R.numSharedAccessStmts();
    State.counters["escaped"] = R.numEscapedObjects();
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  for (const std::string &Profile : dacapoProfiles()) {
    benchmark::RegisterBenchmark(("table7_osa/" + Profile + "/osa").c_str(),
                                 BM_OSA, Profile)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("table7_osa/" + Profile + "/escape").c_str(), BM_Escape, Profile)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return runBenchmarks(
      Argc, Argv,
      "Table 7: OSA #shared accesses and time (incl. OPA) vs the "
      "TLOA-style escape-analysis baseline");
}
