//===- bench_table9_distributed.cpp - Table 9: distributed systems -------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 9: for the HBase/HDFS/Yarn/ZooKeeper profiles, the
// number of races reported by O2 and by the RacerD-like baseline, and
// the number of thread-shared objects (#S-obj) under 0-ctx, 1-CFA,
// 2-CFA, and O2. Expected shape: O2's #S-obj is the smallest — the
// reduced workload behind the paper's 57%–53x total-time speedups.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "o2/Race/RacerDLike.h"

using namespace o2;
using namespace o2bench;

static void BM_DistributedRaces(benchmark::State &State,
                                const std::string &ProfileName,
                                PTAOptions Opts) {
  auto M = buildProfile(ProfileName);
  for (auto _ : State) {
    auto PTA = runPointerAnalysis(*M, Opts);
    RaceReport R = detectRaces(*PTA);
    State.counters["races"] = R.numRaces();
    State.counters["s_obj"] =
        static_cast<double>(R.stats().get("race.shared-objects"));
    State.counters["budget_hit"] = PTA->hitBudget() ? 1 : 0;
    benchmark::DoNotOptimize(R);
  }
}

static void BM_DistributedRacerD(benchmark::State &State,
                                 const std::string &ProfileName) {
  auto M = buildProfile(ProfileName);
  for (auto _ : State) {
    RacerDReport R = runRacerDLike(*M);
    State.counters["races"] = R.numPotentialRaces();
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  for (const std::string &Profile : distributedProfiles()) {
    for (const auto &[CfgName, Opts] : pointerAnalysisConfigs()) {
      if (CfgName == "1-obj" || CfgName == "2-obj")
        continue; // the paper's Table 9 compares 0-ctx/1-CFA/2-CFA/O2
      std::string Label = CfgName == "1-origin" ? "O2" : CfgName;
      benchmark::RegisterBenchmark(
          ("table9_distributed/" + Profile + "/" + Label).c_str(),
          BM_DistributedRaces, Profile, Opts)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("table9_distributed/" + Profile + "/racerd").c_str(),
        BM_DistributedRacerD, Profile)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return runBenchmarks(
      Argc, Argv,
      "Table 9: distributed systems — #races (O2 vs RacerD-like) and "
      "#thread-shared objects (s_obj) per pointer analysis");
}
