//===- bench_complexity.cpp - Table 3: empirical complexity scaling -------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Table 3 of the paper is an analytical worst-case comparison; this
// harness regenerates its empirical shape: pointer-analysis time as a
// function of program size (statements p) for 0-ctx, 1-origin, 2-CFA,
// and 2-obj. Expected shape: 0-ctx and 1-origin grow at the same
// (near-linear) rate with a small constant between them; 2-CFA and
// 2-obj diverge polynomially as contexts multiply.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace o2;
using namespace o2bench;

static WorkloadProfile scaledProfile(unsigned Scale) {
  WorkloadProfile P;
  P.Name = "scale" + std::to_string(Scale);
  P.NumThreads = 4 + Scale / 4;
  P.NumEventHandlers = Scale / 4;
  P.CallDepth = 4;
  P.PaddingFunctions = 20 * Scale;
  P.ProtectedWritesPerOrigin = 4;
  P.ReadsPerOrigin = 4;
  // Grow the amplifier with the program: context-sensitive instance
  // counts then rise polynomially in program size while 0-ctx and OPA
  // stay near-linear — the contrast Table 3 formalizes.
  P.AmplifierLayers = 4;
  P.AmplifierFanOut = 4 + 3 * Scale;
  P.Seed = 5;
  return P;
}

static void BM_Scaling(benchmark::State &State, PTAOptions Opts) {
  unsigned Scale = static_cast<unsigned>(State.range(0));
  auto M = generateWorkload(scaledProfile(Scale));
  for (auto _ : State) {
    auto R = runPointerAnalysis(*M, Opts);
    State.counters["stmts"] = M->numProgramStmts();
    State.counters["nodes"] =
        static_cast<double>(R->stats().get("pta.pointer-nodes"));
    State.counters["budget_hit"] = R->hitBudget() ? 1 : 0;
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(M->numProgramStmts());
}

int main(int Argc, char **Argv) {
  for (const auto &[CfgName, Opts] : pointerAnalysisConfigs()) {
    if (CfgName == "1-cfa" || CfgName == "1-obj")
      continue; // Table 3 contrasts 0-ctx/heap vs 2-CFA/2-obj vs 1-origin
    benchmark::RegisterBenchmark(("complexity/" + CfgName).c_str(),
                                 BM_Scaling, Opts)
        ->DenseRange(1, 9, 2)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond)
        ->Complexity();
  }
  return runBenchmarks(
      Argc, Argv,
      "Table 3 (empirical): pointer-analysis time vs program size for "
      "0-ctx, 1-origin, 2-CFA, 2-obj");
}
