//===- BenchUtils.h - shared helpers for the benchmark harnesses --*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Every bench binary regenerates one table of the paper's evaluation.
// Timings run on synthetic workloads, so absolute numbers differ from
// the paper; the *shape* (orderings, blow-ups, precision ratios) is the
// reproduction target. Analyses that explode under deep contexts are
// capped by a node budget, the analogue of the paper's ">4h" entries:
// the "budget_hit" counter marks those rows.
//
//===----------------------------------------------------------------------===//

#ifndef O2_BENCH_BENCHUTILS_H
#define O2_BENCH_BENCHUTILS_H

#include "o2/O2.h"
#include "o2/Workload/Generator.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace o2bench {

/// The pointer-analysis configurations compared in Tables 5, 6, 8, 9.
inline std::vector<std::pair<std::string, o2::PTAOptions>>
pointerAnalysisConfigs(uint64_t NodeBudget = 64'000) {
  using o2::ContextKind;
  auto Mk = [NodeBudget](ContextKind Kind, unsigned K) {
    o2::PTAOptions Opts;
    Opts.Kind = Kind;
    Opts.K = K;
    Opts.NodeBudget = NodeBudget;
    return Opts;
  };
  return {
      {"0-ctx", Mk(ContextKind::Insensitive, 1)},
      {"1-origin", Mk(ContextKind::Origin, 1)},
      {"1-cfa", Mk(ContextKind::KCallsite, 1)},
      {"2-cfa", Mk(ContextKind::KCallsite, 2)},
      {"1-obj", Mk(ContextKind::KObject, 1)},
      {"2-obj", Mk(ContextKind::KObject, 2)},
  };
}

/// Profile subsets matching the paper's table groupings.
inline std::vector<std::string> dacapoProfiles() {
  return {"avrora",   "batik",    "eclipse",  "h2",        "jython",
          "luindex",  "lusearch", "pmd",      "sunflow",   "tomcat",
          "tradebeans", "tradesoap", "xalan"};
}

inline std::vector<std::string> androidProfiles() {
  return {"connectbot", "sipdroid",     "k9mail",  "tasks", "fbreader",
          "vlc",        "firefoxfocus", "telegram", "zoom",  "chrome"};
}

inline std::vector<std::string> distributedProfiles() {
  return {"hbase", "hdfs", "yarn", "zookeeper"};
}

inline std::vector<std::string> cppProfiles() {
  return {"memcached", "redis", "sqlite3"};
}

inline std::unique_ptr<o2::Module> buildProfile(const std::string &Name) {
  const o2::WorkloadProfile *P = o2::findProfile(Name);
  assert(P && "unknown benchmark profile");
  return o2::generateWorkload(*P);
}

/// Runs all registered benchmarks after printing a one-line banner.
inline int runBenchmarks(int Argc, char **Argv, const char *Banner) {
  std::printf("# %s\n", Banner);
  ::benchmark::Initialize(&Argc, Argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

} // namespace o2bench

#endif // O2_BENCH_BENCHUTILS_H
