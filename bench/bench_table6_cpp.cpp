//===- bench_table6_cpp.cpp - Table 6: C/C++ applications ----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 6: for the memcached/redis/sqlite3 profiles, the
// pointer-analysis time and graph sizes (#pointer nodes, #objects,
// #edges) of 0-ctx, O2 (1-origin), and 2-CFA. Expected shape: O2 a
// moderate constant factor over 0-ctx; 2-CFA blowing up on the larger
// profiles (the paper's OOM on sqlite3 maps to the node budget).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace o2;
using namespace o2bench;

static void BM_CppPTA(benchmark::State &State, const std::string &ProfileName,
                      PTAOptions Opts) {
  auto M = buildProfile(ProfileName);
  for (auto _ : State) {
    auto R = runPointerAnalysis(*M, Opts);
    State.counters["pointers"] =
        static_cast<double>(R->stats().get("pta.pointer-nodes"));
    State.counters["objects"] =
        static_cast<double>(R->stats().get("pta.objects"));
    State.counters["edges"] =
        static_cast<double>(R->stats().get("pta.copy-edges"));
    State.counters["origins"] =
        static_cast<double>(R->stats().get("pta.origins"));
    State.counters["budget_hit"] = R->hitBudget() ? 1 : 0;
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  std::vector<std::pair<std::string, PTAOptions>> Configs;
  for (const auto &[Name, Opts] : pointerAnalysisConfigs())
    if (Name == "0-ctx" || Name == "1-origin" || Name == "2-cfa")
      Configs.emplace_back(Name == "1-origin" ? "O2" : Name, Opts);

  for (const std::string &Profile : cppProfiles())
    for (const auto &[CfgName, Opts] : Configs)
      benchmark::RegisterBenchmark(
          ("table6_cpp/" + Profile + "/" + CfgName).c_str(), BM_CppPTA,
          Profile, Opts)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);

  return runBenchmarks(
      Argc, Argv,
      "Table 6: C/C++ profiles — pointer-analysis time and graph sizes "
      "(#pointers/#objects/#edges) for 0-ctx, O2, 2-CFA");
}
