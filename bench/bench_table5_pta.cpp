//===- bench_table5_pta.cpp - Table 5 (left): pointer-analysis times ----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Regenerates the left half of Table 5: for every JVM/Android/distributed
// profile, the pointer-analysis wall time of 0-ctx, OPA (1-origin),
// 1-CFA, 2-CFA, 1-obj, and 2-obj, plus the number of origins (#O).
// Expected shape: OPA within a small factor of 0-ctx and comparable to
// 1-CFA; 2-CFA/1-obj/2-obj orders of magnitude slower or hitting the
// budget (the ">4h" analogue).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace o2;
using namespace o2bench;

static void BM_PointerAnalysis(benchmark::State &State,
                               const std::string &ProfileName,
                               PTAOptions Opts) {
  auto M = buildProfile(ProfileName);
  for (auto _ : State) {
    auto R = runPointerAnalysis(*M, Opts);
    State.counters["origins"] =
        static_cast<double>(R->stats().get("pta.origins"));
    State.counters["nodes"] =
        static_cast<double>(R->stats().get("pta.pointer-nodes"));
    State.counters["budget_hit"] = R->hitBudget() ? 1 : 0;
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  std::vector<std::string> Profiles;
  for (const std::string &P : dacapoProfiles())
    Profiles.push_back(P);
  for (const std::string &P : androidProfiles())
    Profiles.push_back(P);
  for (const std::string &P : distributedProfiles())
    Profiles.push_back(P);

  for (const std::string &Profile : Profiles)
    for (const auto &[CfgName, Opts] : pointerAnalysisConfigs())
      benchmark::RegisterBenchmark(
          ("table5_pta/" + Profile + "/" + CfgName).c_str(),
          BM_PointerAnalysis, Profile, Opts)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);

  return runBenchmarks(
      Argc, Argv,
      "Table 5 (left): pointer-analysis time per benchmark and context "
      "abstraction; counters: #origins, #nodes, budget_hit (paper's '>4h')");
}
