//===- bench_table8_precision.cpp - Table 8: race counts per analysis ----------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 8: the number of reported races per pointer analysis
// on the DaCapo-style profiles, using race counts as the end-to-end
// precision metric, plus the RacerD-like warning counts. The reduction
// counter gives the per-row percentage relative to the 0-ctx baseline
// (the paper: O2 reduces warnings by 77% on average, 1-/2-CFA by
// 46%/60%). Expected shape: races(O2) <= races(2-cfa) <= races(1-cfa)
// <= races(0-ctx), RacerD above all of them.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "o2/Race/RacerDLike.h"

using namespace o2;
using namespace o2bench;

static unsigned racesUnder(const Module &M, PTAOptions Opts) {
  auto PTA = runPointerAnalysis(M, Opts);
  return detectRaces(*PTA).numRaces();
}

static void BM_Precision(benchmark::State &State,
                         const std::string &ProfileName, PTAOptions Opts) {
  auto M = buildProfile(ProfileName);
  PTAOptions Baseline;
  Baseline.Kind = ContextKind::Insensitive;
  unsigned BaselineRaces = racesUnder(*M, Baseline);
  for (auto _ : State) {
    unsigned Races = racesUnder(*M, Opts);
    State.counters["races"] = Races;
    State.counters["reduction_pct"] =
        BaselineRaces == 0
            ? 0.0
            : 100.0 * (1.0 - double(Races) / double(BaselineRaces));
    benchmark::DoNotOptimize(Races);
  }
}

static void BM_RacerDPrecision(benchmark::State &State,
                               const std::string &ProfileName) {
  auto M = buildProfile(ProfileName);
  for (auto _ : State) {
    RacerDReport R = runRacerDLike(*M);
    State.counters["races"] = R.numPotentialRaces();
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  for (const std::string &Profile : dacapoProfiles()) {
    for (const auto &[CfgName, Opts] : pointerAnalysisConfigs()) {
      std::string Label = CfgName == "1-origin" ? "O2" : CfgName;
      benchmark::RegisterBenchmark(
          ("table8_precision/" + Profile + "/" + Label).c_str(),
          BM_Precision, Profile, Opts)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("table8_precision/" + Profile + "/racerd").c_str(),
        BM_RacerDPrecision, Profile)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return runBenchmarks(
      Argc, Argv,
      "Table 8: #races per pointer analysis (precision; reduction_pct is "
      "relative to 0-ctx) and RacerD-like warning counts");
}
