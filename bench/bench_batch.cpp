//===- bench_batch.cpp - batch-driver scaling over the Table 5 corpus ---------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Measures the parallel batch driver end to end: the full benchmark
// corpus (every Table 5-9 profile) analyzed through runBatch at varying
// worker counts. Jobs are independent, so the expected shape is
// near-linear scaling until worker count approaches the corpus's few
// heavyweight modules (telegram, sqlite3), whose serial analysis time
// bounds the critical path. Counters: races (fleet total), timeouts.
// The deadline variant shows graceful degradation: a tight per-job
// budget converts heavyweight modules into `timeout` records without
// slowing the rest of the fleet down.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "o2/Driver/Driver.h"

using namespace o2;
using namespace o2bench;

static std::vector<JobSpec> corpusSpecs() {
  std::vector<JobSpec> Specs;
  for (const WorkloadProfile &P : benchmarkProfiles()) {
    JobSpec S;
    S.Name = P.Name;
    S.Profile = &P;
    Specs.push_back(std::move(S));
  }
  return Specs;
}

static void BM_Batch(benchmark::State &State, unsigned Jobs,
                     uint64_t DeadlineMs) {
  std::vector<JobSpec> Specs = corpusSpecs();
  BatchOptions Opts;
  Opts.Jobs = Jobs;
  Opts.DeadlineMs = DeadlineMs;
  for (auto _ : State) {
    BatchResult R = runBatch(Specs, Opts);
    State.counters["modules"] = static_cast<double>(R.Jobs.size());
    State.counters["races"] =
        static_cast<double>(R.Summary.get("races.total"));
    State.counters["timeouts"] =
        static_cast<double>(R.Summary.get("jobs.timeout"));
    benchmark::DoNotOptimize(R);
  }
}

int main(int Argc, char **Argv) {
  for (unsigned Jobs : {1u, 2u, 4u, 8u})
    benchmark::RegisterBenchmark(
        ("batch/table5-corpus/jobs=" + std::to_string(Jobs)).c_str(),
        BM_Batch, Jobs, /*DeadlineMs=*/uint64_t(0))
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);

  // Graceful degradation: a 50ms per-job budget times the heavyweights
  // out while the bulk of the corpus still completes.
  benchmark::RegisterBenchmark("batch/table5-corpus/jobs=4/deadline=50ms",
                               BM_Batch, 4u, /*DeadlineMs=*/uint64_t(50))
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  return runBenchmarks(
      Argc, Argv,
      "Parallel batch driver over the full benchmark corpus at varying "
      "worker counts; counters: modules, races (fleet total), timeouts");
}
