//===- AnalysisManager.cpp - Typed pass manager -------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Analysis/AnalysisManager.h"

#include "o2/Support/FaultInjector.h"
#include "o2/Support/JSONWriter.h"
#include "o2/Support/OutputStream.h"
#include "o2/Support/Timer.h"

#include <array>

using namespace o2;

const char *o2::phaseName(O2Phase P) {
  switch (P) {
  case O2Phase::None:
    return "";
  case O2Phase::PTA:
    return "pta";
  case O2Phase::OSA:
    return "osa";
  case O2Phase::SHB:
    return "shb";
  case O2Phase::HBIndex:
    return "hbindex";
  case O2Phase::Detect:
    return "race";
  case O2Phase::Deadlock:
    return "deadlock";
  case O2Phase::OverSync:
    return "oversync";
  case O2Phase::RacerD:
    return "racerd";
  case O2Phase::Escape:
    return "escape";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// Pass registry: dependencies and versions
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned idx(O2Phase K) { return static_cast<unsigned>(K); }

/// Bump a pass's version whenever its result or serialized report format
/// changes; the warm cache folds versions into its key, so a bump turns
/// stale entries into misses instead of wrong replays.
constexpr std::array<uint32_t, NumO2Phases> PassVersion = {
    /*None=*/0,     /*PTA=*/1,      /*OSA=*/1,    /*SHB=*/1, /*HBIndex=*/1,
    /*Detect=*/1,   /*Deadlock=*/1, /*OverSync=*/1,
    /*RacerD=*/1,   /*Escape=*/1,
};

/// Declared dependencies of pass \p K under \p Config. Every dependency
/// has a smaller enum value, so ascending enum order is a topological
/// schedule. The race pass only depends on the HBIndex pass when the
/// selected engine actually consults the index — pre-building it for the
/// naive/memo ablations would distort exactly the measurements those
/// modes exist for.
SmallVector<O2Phase, 3> depsOf(O2Phase K, const O2Config &Config) {
  switch (K) {
  case O2Phase::None:
  case O2Phase::PTA:
  case O2Phase::RacerD:
    return {};
  case O2Phase::OSA:
  case O2Phase::Escape:
    return {O2Phase::PTA};
  case O2Phase::SHB:
    return {O2Phase::PTA};
  case O2Phase::HBIndex:
    return {O2Phase::PTA, O2Phase::SHB};
  case O2Phase::Detect: {
    // The parallel engine's class math is built on the index; the serial
    // engine uses it only under --race-hb=index. A finite pair budget
    // forces the serial path (see RaceDetector.h).
    bool Parallel = Config.Detector.Engine == RaceEngineKind::Parallel &&
                    Config.Detector.MaxPairChecks == ~uint64_t(0);
    if (Parallel || Config.Detector.HB == RaceHBKind::Index)
      return {O2Phase::PTA, O2Phase::SHB, O2Phase::HBIndex};
    return {O2Phase::PTA, O2Phase::SHB};
  }
  case O2Phase::Deadlock:
    return {O2Phase::PTA, O2Phase::SHB};
  case O2Phase::OverSync:
    return {O2Phase::PTA, O2Phase::OSA, O2Phase::SHB};
  }
  return {};
}

uint64_t fnv1a(const void *Data, size_t Len, uint64_t H) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= Bytes[I];
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t hashStr(const std::string &S, uint64_t H) {
  H = fnv1a(S.data(), S.size(), H);
  return fnv1a("\x1f", 1, H);
}

uint64_t hashU64(uint64_t V, uint64_t H) { return fnv1a(&V, sizeof(V), H); }

/// Fingerprint of the options pass \p K itself consumes (no deps).
uint64_t localFingerprint(O2Phase K, const O2Config &Config) {
  uint64_t H = 1469598103934665603ull;
  H = hashStr(phaseName(K), H);
  H = hashU64(PassVersion[idx(K)], H);
  switch (K) {
  case O2Phase::PTA: {
    const PTAOptions &O = Config.PTA;
    H = hashU64(static_cast<uint64_t>(O.Kind), H);
    H = hashU64(O.K, H);
    // The two solvers are bit-identical in points-to sets but report
    // different solver counters (pta.waves vs pta.worklist-*), which land
    // in reports; the solver is result-affecting for caching purposes.
    H = hashU64(static_cast<uint64_t>(O.Solver), H);
    H = hashU64(O.NodeBudget, H);
    for (const auto &[Name, Kind] : O.Spec.entries()) {
      H = hashStr(Name, H);
      H = hashU64(static_cast<uint64_t>(Kind), H);
    }
    return H;
  }
  case O2Phase::SHB: {
    const SHBOptions &O = Config.Detector.SHB;
    H = hashU64(O.SerializeEventHandlers, H);
    H = hashU64(O.DuplicateLoopSpawns, H);
    H = hashU64(O.MaxThreads, H);
    H = hashU64(O.MaxEventsPerThread, H);
    return H;
  }
  case O2Phase::Detect: {
    const RaceDetectorOptions &O = Config.Detector;
    // Engine/HB selection changes diagnostics-level counters and the
    // budget semantics; worker counts, pools and matrix thresholds are
    // pure performance knobs and deliberately excluded (the engines'
    // reports are deterministic for any of them).
    H = hashU64(static_cast<uint64_t>(O.Engine), H);
    H = hashU64(static_cast<uint64_t>(O.HB), H);
    H = hashU64(O.CacheLocksetChecks, H);
    H = hashU64(O.LockRegionMerging, H);
    H = hashU64(O.HandleAtomics, H);
    H = hashU64(O.MaxPairChecks, H);
    return H;
  }
  case O2Phase::None:
  case O2Phase::OSA:
  case O2Phase::HBIndex:
  case O2Phase::Deadlock:
  case O2Phase::OverSync:
  case O2Phase::RacerD:
  case O2Phase::Escape:
    // Result fully determined by the module and the dependencies.
    return H;
  }
  return H;
}

/// Dependency closure of \p Set as a per-pass bool mask.
std::array<bool, NumO2Phases> closureOf(AnalysisSet Set,
                                        const O2Config &Config) {
  std::array<bool, NumO2Phases> In{};
  for (unsigned K = 0; K < NumO2Phases; ++K)
    if (Set.contains(static_cast<O2Phase>(K)))
      In[K] = true;
  // Deps have smaller values: one descending sweep closes the set.
  for (unsigned K = NumO2Phases; K-- > 1;)
    if (In[K])
      for (O2Phase D : depsOf(static_cast<O2Phase>(K), Config))
        In[idx(D)] = true;
  In[idx(O2Phase::None)] = false;
  return In;
}

} // namespace

std::string AnalysisSet::str() const {
  std::string Out;
  for (unsigned K = 1; K < NumO2Phases; ++K)
    if (contains(static_cast<O2Phase>(K))) {
      if (!Out.empty())
        Out += ',';
      Out += phaseName(static_cast<O2Phase>(K));
    }
  return Out;
}

bool o2::parseAnalysisSet(const std::string &Spec, AnalysisSet &Out,
                          std::string &Err) {
  AnalysisSet Result;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Tok = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Tok.empty())
      continue;
    if (Tok == "all") {
      Result |= AnalysisSet::all();
      continue;
    }
    bool Found = false;
    for (unsigned K = 1; K < NumO2Phases; ++K)
      if (Tok == phaseName(static_cast<O2Phase>(K))) {
        Result.insert(static_cast<O2Phase>(K));
        Found = true;
        break;
      }
    if (!Found) {
      Err = "unknown analysis '" + Tok + "'";
      return false;
    }
  }
  if (Result.empty()) {
    Err = "empty analysis set";
    return false;
  }
  Out = Result;
  return true;
}

uint64_t o2::passFingerprint(O2Phase K, const O2Config &Config) {
  uint64_t H = localFingerprint(K, Config);
  for (O2Phase D : depsOf(K, Config))
    H = hashU64(passFingerprint(D, Config), H);
  return H;
}

uint64_t o2::analysisSetFingerprint(AnalysisSet Set, const O2Config &Config) {
  std::array<bool, NumO2Phases> In = closureOf(Set, Config);
  uint64_t H = 1469598103934665603ull;
  for (unsigned K = 1; K < NumO2Phases; ++K)
    if (In[K])
      H = hashU64(passFingerprint(static_cast<O2Phase>(K), Config), H);
  return H;
}

//===----------------------------------------------------------------------===//
// The manager
//===----------------------------------------------------------------------===//

struct AnalysisManager::Impl {
  std::unique_ptr<PTAResult> PTA;
  SharingResult Sharing;
  SHBGraph SHB;
  std::unique_ptr<HBIndex> Index;
  RaceReport Races;
  DeadlockReport Deadlocks;
  OverSyncReport OverSyncR;
  RacerDReport RacerDR;
  EscapeResult EscapeR;

  std::array<bool, NumO2Phases> Ran{};
  std::array<unsigned, NumO2Phases> Invocations{};
  std::array<double, NumO2Phases> Seconds{};
};

AnalysisManager::AnalysisManager(const Module &M, const O2Config &Config)
    : M(M), Config(Config), P(std::make_unique<Impl>()) {
  // A token on the config reaches every pass's hot loop through the
  // per-pass option structs (the old facade threaded only PTA/SHB/race;
  // the manager threads all nine).
  if (Config.Cancel) {
    this->Config.PTA.Cancel = Config.Cancel;
    this->Config.Detector.Cancel = Config.Cancel;
    this->Config.Detector.SHB.Cancel = Config.Cancel;
  }
}

AnalysisManager::~AnalysisManager() = default;

bool AnalysisManager::run(AnalysisSet Set) {
  std::array<bool, NumO2Phases> In = closureOf(Set, Config);
  for (unsigned K = 1; K < NumO2Phases; ++K)
    if (In[K]) {
      if (cancelled())
        return false;
      ensure(static_cast<O2Phase>(K));
    }
  return !cancelled();
}

void AnalysisManager::ensure(O2Phase K) {
  if (P->Ran[idx(K)] || cancelled())
    return;
  for (O2Phase D : depsOf(K, Config)) {
    ensure(D);
    if (cancelled())
      return;
  }
  runPass(K);
}

void AnalysisManager::runPass(O2Phase K) {
  if (K == O2Phase::None)
    return;
  // Announce the pass before anything (including an injected fault) can
  // kill it, so crash records name the right phase.
  if (Config.OnPassStart)
    Config.OnPassStart(K);
  {
    // "pass.pta" ... "pass.escape": one named fault point per pass.
    static const std::array<const char *, NumO2Phases> FaultPoint = {
        "",          "pass.pta",      "pass.osa",      "pass.shb",
        "pass.hbindex", "pass.race",  "pass.deadlock", "pass.oversync",
        "pass.racerd", "pass.escape",
    };
    FaultInjector::hit(FaultPoint[idx(K)]);
  }
  ++P->Invocations[idx(K)];
  Timer T;
  bool PassCancelled = false;
  switch (K) {
  case O2Phase::None:
    return;
  case O2Phase::PTA:
    P->PTA = runPointerAnalysis(M, Config.PTA);
    PassCancelled = P->PTA->cancelled();
    break;
  case O2Phase::OSA:
    // OSA is origin-specific; under other context abstractions the pass
    // is a definitional no-op (empty sharing result), matching what the
    // old facade's RunOSA guard did.
    if (Config.PTA.Kind == ContextKind::Origin) {
      P->Sharing = runSharingAnalysis(*P->PTA, Config.Cancel);
      PassCancelled = P->Sharing.cancelled();
    }
    break;
  case O2Phase::SHB:
    P->SHB = buildSHBGraph(*P->PTA, Config.Detector.SHB);
    PassCancelled = P->SHB.cancelled();
    break;
  case O2Phase::HBIndex:
    P->Index = std::make_unique<HBIndex>(P->SHB);
    // Construction has no poll points; the token is checked on the seam.
    PassCancelled = pollCancelled(Config.Cancel);
    break;
  case O2Phase::Detect: {
    RaceDetectorOptions Opts = Config.Detector;
    if (P->Index)
      Opts.Index = P->Index.get();
    P->Races = detectRaces(*P->PTA, P->SHB, Opts);
    PassCancelled = P->Races.cancelled();
    break;
  }
  case O2Phase::Deadlock:
    P->Deadlocks = detectDeadlocks(*P->PTA, P->SHB, Config.Cancel);
    PassCancelled = P->Deadlocks.cancelled();
    break;
  case O2Phase::OverSync:
    P->OverSyncR =
        detectOverSynchronization(P->Sharing, P->SHB, Config.Cancel);
    PassCancelled = P->OverSyncR.cancelled();
    break;
  case O2Phase::RacerD:
    P->RacerDR = runRacerDLike(M, Config.Cancel);
    PassCancelled = P->RacerDR.cancelled();
    break;
  case O2Phase::Escape:
    P->EscapeR = runEscapeAnalysis(*P->PTA, Config.Cancel);
    PassCancelled = P->EscapeR.cancelled();
    break;
  }
  P->Seconds[idx(K)] += T.seconds();
  P->Ran[idx(K)] = true;
  if (PassCancelled)
    CancelledIn = K;
}

const PTAResult &AnalysisManager::getPTA() {
  ensure(O2Phase::PTA);
  return *P->PTA;
}

const SharingResult &AnalysisManager::getSharing() {
  ensure(O2Phase::OSA);
  return P->Sharing;
}

const SHBGraph &AnalysisManager::getSHB() {
  ensure(O2Phase::SHB);
  return P->SHB;
}

const HBIndex &AnalysisManager::getHBIndex() {
  ensure(O2Phase::HBIndex);
  return *P->Index;
}

const RaceReport &AnalysisManager::getRaces() {
  ensure(O2Phase::Detect);
  return P->Races;
}

const DeadlockReport &AnalysisManager::getDeadlocks() {
  ensure(O2Phase::Deadlock);
  return P->Deadlocks;
}

const OverSyncReport &AnalysisManager::getOverSync() {
  ensure(O2Phase::OverSync);
  return P->OverSyncR;
}

const RacerDReport &AnalysisManager::getRacerD() {
  ensure(O2Phase::RacerD);
  return P->RacerDR;
}

const EscapeResult &AnalysisManager::getEscape() {
  ensure(O2Phase::Escape);
  return P->EscapeR;
}

bool AnalysisManager::ran(O2Phase K) const { return P->Ran[idx(K)]; }

unsigned AnalysisManager::invocations(O2Phase K) const {
  return P->Invocations[idx(K)];
}

double AnalysisManager::seconds(O2Phase K) const { return P->Seconds[idx(K)]; }

double AnalysisManager::totalSeconds() const {
  double Total = 0;
  for (unsigned K = 1; K < NumO2Phases; ++K)
    Total += P->Seconds[K];
  return Total;
}

StatisticRegistry AnalysisManager::stats() const {
  StatisticRegistry Stats;
  if (P->Ran[idx(O2Phase::PTA)])
    Stats.merge(P->PTA->stats());
  if (P->Ran[idx(O2Phase::OSA)]) {
    Stats.set("osa.shared-locations", P->Sharing.sharedLocations().size());
    Stats.set("osa.shared-objects", P->Sharing.numSharedObjects());
    Stats.set("osa.shared-accesses", P->Sharing.numSharedAccessStmts());
    Stats.set("osa.access-stmts", P->Sharing.numAccessStmts());
  }
  if (P->Ran[idx(O2Phase::Detect)])
    Stats.merge(P->Races.stats());
  if (P->Ran[idx(O2Phase::Deadlock)]) {
    Stats.set("deadlock.cycles", P->Deadlocks.numDeadlocks());
    Stats.set("deadlock.order-edges", P->Deadlocks.edges().size());
  }
  if (P->Ran[idx(O2Phase::OverSync)]) {
    Stats.set("oversync.regions", P->OverSyncR.numRegions());
    Stats.set("oversync.regions-checked", P->OverSyncR.numRegionsChecked());
  }
  if (P->Ran[idx(O2Phase::RacerD)]) {
    Stats.set("racerd.warnings", P->RacerDR.numWarnings());
    Stats.set("racerd.potential-races", P->RacerDR.numPotentialRaces());
  }
  if (P->Ran[idx(O2Phase::Escape)]) {
    Stats.set("escape.objects", P->EscapeR.numEscapedObjects());
    Stats.set("escape.shared-accesses", P->EscapeR.numSharedAccessStmts());
    Stats.set("escape.access-stmts", P->EscapeR.numAccessStmts());
  }
  return Stats;
}

void AnalysisManager::printStatsJSON(OutputStream &OS) {
  JSONWriter W(OS);
  W.beginObject();
  W.attribute("module", M.getName());
  W.attribute("config", Config.PTA.name());
  W.attribute("solver",
              Config.PTA.Solver == SolverKind::Wave ? "wave" : "worklist");
  AnalysisSet RanSet;
  for (unsigned K = 1; K < NumO2Phases; ++K)
    if (P->Ran[K])
      RanSet.insert(static_cast<O2Phase>(K));
  W.attribute("analyses", RanSet.str());
  if (cancelled())
    W.attribute("cancelled-in", phaseName(CancelledIn));
  for (unsigned K = 1; K < NumO2Phases; ++K)
    if (P->Ran[K])
      W.attribute(std::string("time.") + phaseName(static_cast<O2Phase>(K)) +
                      "-ms",
                  P->Seconds[K] * 1000.0);
  W.attribute("time.total-ms", totalSeconds() * 1000.0);
  StatisticRegistry Merged = stats();
  for (const auto &[Name, Value] : Merged.counters())
    W.attribute(Name, Value);
  W.endObject();
  OS << '\n';
}

std::unique_ptr<PTAResult> AnalysisManager::takePTA() {
  return std::move(P->PTA);
}

SharingResult AnalysisManager::takeSharing() { return std::move(P->Sharing); }

SHBGraph AnalysisManager::takeSHB() { return std::move(P->SHB); }

RaceReport AnalysisManager::takeRaces() { return std::move(P->Races); }
