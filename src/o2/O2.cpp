//===- O2.cpp - O2 public facade ---------------------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/O2.h"

#include "o2/Support/JSONWriter.h"
#include "o2/Support/OutputStream.h"
#include "o2/Support/Timer.h"

using namespace o2;

const char *o2::phaseName(O2Phase P) {
  switch (P) {
  case O2Phase::None:
    return "";
  case O2Phase::PTA:
    return "pta";
  case O2Phase::OSA:
    return "osa";
  case O2Phase::SHB:
    return "shb";
  case O2Phase::Detect:
    return "race";
  }
  return "";
}

O2Analysis o2::analyzeModule(const Module &M, const O2Config &Config) {
  O2Analysis Result;

  // A cancellation token on the config reaches every phase's hot loop.
  PTAOptions PTAOpts = Config.PTA;
  RaceDetectorOptions DetOpts = Config.Detector;
  if (Config.Cancel) {
    PTAOpts.Cancel = Config.Cancel;
    DetOpts.Cancel = Config.Cancel;
    DetOpts.SHB.Cancel = Config.Cancel;
  }

  Timer T;
  Result.PTA = runPointerAnalysis(M, PTAOpts);
  Result.PTASeconds = T.seconds();
  if (Result.PTA->cancelled()) {
    Result.CancelledIn = O2Phase::PTA;
    return Result;
  }

  if (Config.RunOSA && Config.PTA.Kind == ContextKind::Origin) {
    T.reset();
    Result.Sharing = runSharingAnalysis(*Result.PTA, Config.Cancel);
    Result.OSASeconds = T.seconds();
    if (Result.Sharing.cancelled()) {
      Result.CancelledIn = O2Phase::OSA;
      return Result;
    }
  }

  T.reset();
  Result.SHB = buildSHBGraph(*Result.PTA, DetOpts.SHB);
  Result.SHBSeconds = T.seconds();
  if (Result.SHB.cancelled()) {
    Result.CancelledIn = O2Phase::SHB;
    return Result;
  }

  T.reset();
  Result.Races = detectRaces(*Result.PTA, Result.SHB, DetOpts);
  Result.DetectSeconds = T.seconds();
  if (Result.Races.cancelled())
    Result.CancelledIn = O2Phase::Detect;

  return Result;
}

void O2Analysis::printSummary(OutputStream &OS) const {
  OS << "O2 analysis of '" << PTA->module().getName() << "' ("
     << PTA->options().name() << ")\n";
  OS << "  pointer analysis: " << PTA->stats().get("pta.pointer-nodes")
     << " nodes, " << PTA->stats().get("pta.objects") << " objects, "
     << PTA->stats().get("pta.copy-edges") << " edges, "
     << PTA->stats().get("pta.origins") << " origins ("
     << PTASeconds << "s)\n";
  OS << "  sharing: " << Sharing.sharedLocations().size()
     << " shared locations over " << Sharing.numSharedObjects()
     << " objects, " << Sharing.numSharedAccessStmts() << "/"
     << Sharing.numAccessStmts() << " shared accesses (" << OSASeconds
     << "s)\n";
  OS << "  SHB: " << SHB.numThreads() << " threads, "
     << SHB.numAccessEvents() << " access events (" << SHBSeconds << "s)\n";
  OS << "  races: " << Races.numRaces() << " (" << DetectSeconds << "s)\n";
}

void O2Analysis::printStatsJSON(OutputStream &OS) const {
  JSONWriter W(OS);
  W.beginObject();
  W.attribute("module", PTA->module().getName());
  W.attribute("config", PTA->options().name());
  W.attribute("solver", PTA->options().Solver == SolverKind::Wave
                            ? "wave"
                            : "worklist");
  W.attribute("time.pta-ms", PTASeconds * 1000.0);
  W.attribute("time.osa-ms", OSASeconds * 1000.0);
  W.attribute("time.shb-ms", SHBSeconds * 1000.0);
  W.attribute("time.race-ms", DetectSeconds * 1000.0);
  W.attribute("time.total-ms", totalSeconds() * 1000.0);
  for (const auto &[Name, Value] : PTA->stats().counters())
    W.attribute(Name, Value);
  for (const auto &[Name, Value] : Races.stats().counters())
    W.attribute(Name, Value);
  W.endObject();
  OS << '\n';
}
