//===- O2.cpp - O2 public facade ---------------------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/O2.h"

#include "o2/Support/OutputStream.h"
#include "o2/Support/Timer.h"

using namespace o2;

O2Analysis o2::analyzeModule(const Module &M, const O2Config &Config) {
  O2Analysis Result;

  Timer T;
  Result.PTA = runPointerAnalysis(M, Config.PTA);
  Result.PTASeconds = T.seconds();

  if (Config.RunOSA && Config.PTA.Kind == ContextKind::Origin) {
    T.reset();
    Result.Sharing = runSharingAnalysis(*Result.PTA);
    Result.OSASeconds = T.seconds();
  }

  T.reset();
  Result.SHB = buildSHBGraph(*Result.PTA, Config.Detector.SHB);
  Result.SHBSeconds = T.seconds();

  T.reset();
  Result.Races = detectRaces(*Result.PTA, Result.SHB, Config.Detector);
  Result.DetectSeconds = T.seconds();

  return Result;
}

void O2Analysis::printSummary(OutputStream &OS) const {
  OS << "O2 analysis of '" << PTA->module().getName() << "' ("
     << PTA->options().name() << ")\n";
  OS << "  pointer analysis: " << PTA->stats().get("pta.pointer-nodes")
     << " nodes, " << PTA->stats().get("pta.objects") << " objects, "
     << PTA->stats().get("pta.copy-edges") << " edges, "
     << PTA->stats().get("pta.origins") << " origins ("
     << PTASeconds << "s)\n";
  OS << "  sharing: " << Sharing.sharedLocations().size()
     << " shared locations over " << Sharing.numSharedObjects()
     << " objects, " << Sharing.numSharedAccessStmts() << "/"
     << Sharing.numAccessStmts() << " shared accesses (" << OSASeconds
     << "s)\n";
  OS << "  SHB: " << SHB.numThreads() << " threads, "
     << SHB.numAccessEvents() << " access events (" << SHBSeconds << "s)\n";
  OS << "  races: " << Races.numRaces() << " (" << DetectSeconds << "s)\n";
}
