//===- O2.cpp - O2 public facade ---------------------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/O2.h"

#include "o2/Support/JSONWriter.h"
#include "o2/Support/OutputStream.h"

using namespace o2;

O2Analysis o2::analyzeModule(const Module &M, const O2Config &Config) {
  AnalysisManager AM(M, Config);
  AnalysisSet Set{O2Phase::Detect};
  if (Config.RunOSA && Config.PTA.Kind == ContextKind::Origin)
    Set.insert(O2Phase::OSA);
  AM.run(Set);

  O2Analysis Result;
  Result.PTASeconds = AM.seconds(O2Phase::PTA);
  Result.OSASeconds = AM.seconds(O2Phase::OSA);
  Result.SHBSeconds = AM.seconds(O2Phase::SHB);
  // The facade predates the standalone HBIndex pass; its build time was
  // always part of the detector's, so fold it back in.
  Result.DetectSeconds =
      AM.seconds(O2Phase::Detect) + AM.seconds(O2Phase::HBIndex);
  Result.CancelledIn = AM.cancelledIn();
  Result.PTA = AM.takePTA();
  Result.Sharing = AM.takeSharing();
  Result.SHB = AM.takeSHB();
  Result.Races = AM.takeRaces();
  return Result;
}

void O2Analysis::printSummary(OutputStream &OS) const {
  OS << "O2 analysis of '" << PTA->module().getName() << "' ("
     << PTA->options().name() << ")\n";
  OS << "  pointer analysis: " << PTA->stats().get("pta.pointer-nodes")
     << " nodes, " << PTA->stats().get("pta.objects") << " objects, "
     << PTA->stats().get("pta.copy-edges") << " edges, "
     << PTA->stats().get("pta.origins") << " origins ("
     << PTASeconds << "s)\n";
  OS << "  sharing: " << Sharing.sharedLocations().size()
     << " shared locations over " << Sharing.numSharedObjects()
     << " objects, " << Sharing.numSharedAccessStmts() << "/"
     << Sharing.numAccessStmts() << " shared accesses (" << OSASeconds
     << "s)\n";
  OS << "  SHB: " << SHB.numThreads() << " threads, "
     << SHB.numAccessEvents() << " access events (" << SHBSeconds << "s)\n";
  OS << "  races: " << Races.numRaces() << " (" << DetectSeconds << "s)\n";
}

void O2Analysis::printStatsJSON(OutputStream &OS) const {
  JSONWriter W(OS);
  W.beginObject();
  W.attribute("module", PTA->module().getName());
  W.attribute("config", PTA->options().name());
  W.attribute("solver", PTA->options().Solver == SolverKind::Wave
                            ? "wave"
                            : "worklist");
  W.attribute("time.pta-ms", PTASeconds * 1000.0);
  W.attribute("time.osa-ms", OSASeconds * 1000.0);
  W.attribute("time.shb-ms", SHBSeconds * 1000.0);
  W.attribute("time.race-ms", DetectSeconds * 1000.0);
  W.attribute("time.total-ms", totalSeconds() * 1000.0);
  for (const auto &[Name, Value] : PTA->stats().counters())
    W.attribute(Name, Value);
  for (const auto &[Name, Value] : Races.stats().counters())
    W.attribute(Name, Value);
  W.endObject();
  OS << '\n';
}
