//===- DeadlockDetector.cpp - Lock-order deadlock analysis --------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Race/DeadlockDetector.h"

#include "o2/IR/Printer.h"
#include "o2/Support/OutputStream.h"

#include <algorithm>
#include <map>
#include <set>

using namespace o2;

namespace o2 {

class DeadlockDetector {
public:
  DeadlockDetector(const PTAResult &PTA, const SHBGraph &SHB,
                   const CancellationToken *Cancel)
      : PTA(PTA), SHB(SHB), Cancel(Cancel) {}

  DeadlockReport run() {
    collectEdges();
    if (!R.Cancelled)
      findCycles();
    return std::move(R);
  }

private:
  void collectEdges() {
    for (const ThreadInfo &T : SHB.threads()) {
      if (pollCancelled(Cancel)) {
        R.Cancelled = true;
        return;
      }
      for (const AcquireEvent &A : T.Acquires) {
        if (A.HeldBefore == InternTable::Empty)
          continue;
        for (uint32_t Outer : SHB.locksetElems(A.HeldBefore)) {
          if (Outer == SHBGraph::UILockElem)
            continue;
          for (uint32_t Inner : A.Acquired) {
            if (Inner == Outer)
              continue;
            LockOrderEdge E;
            E.Outer = Outer;
            E.Inner = Inner;
            E.Thread = T.Id;
            E.Acquire = A.S;
            E.HeldBefore = A.HeldBefore;
            R.Edges.push_back(E);
          }
        }
      }
    }
  }

  /// Enumerates simple cycles of length 2..MaxCycleLen in the lock-order
  /// graph (lock sets here are tiny: the graph has one node per abstract
  /// lock object).
  void findCycles() {
    std::map<uint32_t, std::vector<size_t>> OutEdges;
    std::set<uint32_t> Nodes;
    for (size_t I = 0; I < R.Edges.size(); ++I) {
      OutEdges[R.Edges[I].Outer].push_back(I);
      Nodes.insert(R.Edges[I].Outer);
      Nodes.insert(R.Edges[I].Inner);
    }
    SmallVector<size_t, 4> Path;
    for (uint32_t Start : Nodes) {
      if (pollCancelled(Cancel)) {
        R.Cancelled = true;
        return;
      }
      dfs(Start, Start, Path, OutEdges);
    }
  }

  static constexpr unsigned MaxCycleLen = 4;

  void dfs(uint32_t Start, uint32_t Cur, SmallVector<size_t, 4> &Path,
           const std::map<uint32_t, std::vector<size_t>> &OutEdges) {
    auto It = OutEdges.find(Cur);
    if (It == OutEdges.end())
      return;
    for (size_t EdgeIdx : It->second) {
      const LockOrderEdge &E = R.Edges[EdgeIdx];
      if (E.Inner == Start) {
        Path.push_back(EdgeIdx);
        maybeReportCycle(Path);
        Path.pop_back();
        continue;
      }
      if (Path.size() + 1 >= MaxCycleLen)
        continue;
      // Keep cycles simple and canonical: only visit nodes above Start,
      // each at most once.
      if (E.Inner < Start || onPath(E.Inner, Path))
        continue;
      Path.push_back(EdgeIdx);
      dfs(Start, E.Inner, Path, OutEdges);
      Path.pop_back();
    }
  }

  bool onPath(uint32_t Node, const SmallVector<size_t, 4> &Path) const {
    for (size_t EdgeIdx : Path)
      if (R.Edges[EdgeIdx].Inner == Node)
        return true;
    return false;
  }

  void maybeReportCycle(const SmallVector<size_t, 4> &Path) {
    // A single thread acquiring in a cycle with itself is just a
    // (re-entrancy) ordering, not a deadlock: require two threads.
    std::set<unsigned> Threads;
    for (size_t EdgeIdx : Path)
      Threads.insert(R.Edges[EdgeIdx].Thread);
    if (Threads.size() < 2)
      return;

    // Gate lock: if every step's acquisition happens under one common
    // lock (other than the cycle's own locks), the cycle is serialized.
    std::set<uint32_t> CycleLocks;
    for (size_t EdgeIdx : Path)
      CycleLocks.insert(R.Edges[EdgeIdx].Outer);
    std::map<uint32_t, unsigned> HeldCount;
    for (size_t EdgeIdx : Path)
      for (uint32_t L : SHB.locksetElems(R.Edges[EdgeIdx].HeldBefore))
        if (!CycleLocks.count(L))
          ++HeldCount[L];
    for (const auto &[Lock, Count] : HeldCount)
      if (Count == Path.size())
        return; // gate lock serializes the whole cycle

    // For two-step cycles, prune ordered (non-concurrent) acquisitions.
    if (Path.size() == 2) {
      const LockOrderEdge &A = R.Edges[Path[0]];
      const LockOrderEdge &B = R.Edges[Path[1]];
      const AcquireEvent *EA = findAcquire(A);
      const AcquireEvent *EB = findAcquire(B);
      if (EA && EB &&
          (SHB.happensBefore(EA->Thread, EA->Pos, EB->Thread, EB->Pos) ||
           SHB.happensBefore(EB->Thread, EB->Pos, EA->Thread, EA->Pos)))
        return;
    }

    DeadlockCycle Cycle;
    for (size_t EdgeIdx : Path) {
      Cycle.Locks.push_back(R.Edges[EdgeIdx].Outer);
      Cycle.Witnesses.push_back(R.Edges[EdgeIdx]);
    }
    // Deduplicate by the (rotated-to-minimum) lock sequence.
    SmallVector<uint32_t, 2> Key = Cycle.Locks;
    std::sort(Key.begin(), Key.end());
    std::vector<uint32_t> KeyVec(Key.begin(), Key.end());
    if (!SeenCycles.insert(KeyVec).second)
      return;
    R.Cycles.push_back(std::move(Cycle));
  }

  const AcquireEvent *findAcquire(const LockOrderEdge &E) const {
    for (const AcquireEvent &A : SHB.thread(E.Thread).Acquires)
      if (A.S == E.Acquire && A.HeldBefore == E.HeldBefore)
        return &A;
    return nullptr;
  }

  const PTAResult &PTA;
  const SHBGraph &SHB;
  const CancellationToken *Cancel;
  DeadlockReport R;
  std::set<std::vector<uint32_t>> SeenCycles;
};

} // namespace o2

void DeadlockReport::print(OutputStream &OS, const PTAResult &PTA) const {
  (void)PTA;
  OS << "==== " << Cycles.size() << " potential deadlock(s) ====\n";
  for (const DeadlockCycle &C : Cycles) {
    OS << "lock cycle:";
    for (uint32_t L : C.Locks)
      OS << " lock" << L;
    OS << '\n';
    for (const LockOrderEdge &E : C.Witnesses)
      OS << "  thread " << E.Thread << " acquires lock" << E.Inner
         << " while holding lock" << E.Outer << " at '"
         << printStmt(*E.Acquire) << "'\n";
  }
}

DeadlockReport o2::detectDeadlocks(const PTAResult &PTA, const SHBGraph &SHB,
                                   const CancellationToken *Cancel) {
  return DeadlockDetector(PTA, SHB, Cancel).run();
}
