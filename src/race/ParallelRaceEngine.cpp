//===- ParallelRaceEngine.cpp - Sharded class-based race engine ------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// The parallel race engine: shards the sorted candidate-location list
// across a thread pool and, per location, replaces the serial O(n^2)
// pairwise scan with equivalence-class math over the precomputed HBIndex.
//
// ## Equivalence classes
//
// Accesses to one location are grouped by (thread, HB segment, lockset,
// is-write). Every member of a class has the same reachability row in the
// HBIndex and the same lockset, so for a pair of classes (Ci, Cj) one
// lockset lookup and two reach() lookups decide *all* |Ci|*|Cj| access
// pairs at once:
//
//   - the serial scan's first HB query hb(A, B) for A in Ci, B in Cj is
//     false exactly for the B whose position precedes
//     R12 = reach(row(Ci), thread(Cj)) — a prefix of Cj's
//     position-sorted members, found by binary search;
//   - symmetrically hb(B, A) is false exactly for the prefix of Ci
//     before R21 = reach(row(Cj), thread(Ci));
//   - the racy pairs of the class pair are the rectangle
//     prefix(Ci, cut21) x prefix(Cj, cut12).
//
// ## The determinism contract
//
// The engine reproduces the serial report byte-for-byte and the serial
// counters exactly, at any worker count:
//
//   - Counters charge what the serial scan *would have done* (|Ci|*|Cj|
//     pair checks and lockset checks; N + |Ci|*cut12 HB queries, the
//     short-circuited second query included), not the lookups actually
//     performed — so they are schedule-independent. No cache-occupancy
//     counters are emitted for the same reason.
//   - The serial engine dedups statement pairs globally in scan order and
//     the first reporting pair fixes the race payload. Candidate
//     locations are sorted, and within one location the access vector is
//     sorted by (thread, position); because classes never span threads,
//     the first racy (I, J) index pair for a statement pair inside a
//     rectangle is (first occurrence of stmt A in the Ci prefix, first
//     occurrence of stmt B in the Cj prefix). Each location therefore
//     reduces to "per statement pair, the minimum (I, J) rank and its
//     payload", computed shard-locally, and the shards are folded in
//     canonical location order through the same global dedup set the
//     serial engine uses.
//
// ## Scheduling
//
// Workers (pool tasks plus the calling thread, which always
// participates) pull one location at a time from a shared atomic cursor;
// a condition variable counts completed locations so the caller can
// return as soon as the last location finishes. Pool tasks that start
// late — possibly after the engine already returned, when sharing an
// external pool — observe an exhausted cursor and exit touching nothing
// but the shared-ptr-owned scheduler state, which is what makes sharing
// the batch driver's pool safe without a drain barrier.
//
//===----------------------------------------------------------------------===//

#include "RaceEngine.h"

#include "o2/SHB/HBIndex.h"
#include "o2/Support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

using namespace o2;
using namespace o2::race_detail;

namespace {

/// One statement pair a location wants to report: the minimum-rank racy
/// access pair with that statement pair, payload prebuilt.
struct PendingRace {
  uint64_t Rank; ///< (lower global index << 32) | higher global index.
  uint64_t Key;  ///< stmtPairKey of the two statements.
  Race Rc;
};

/// Everything one candidate location contributes, mergeable in canonical
/// order after the shards finish.
struct LocationResult {
  uint64_t PairsChecked = 0;
  uint64_t LocksetChecks = 0;
  uint64_t HBQueries = 0;
  uint64_t Merged = 0;
  std::vector<PendingRace> Pending;
};

/// One equivalence class: accesses of one thread/segment/lockset/is-write
/// at one location, in position order.
struct AccessClass {
  unsigned Thread;
  unsigned Row; ///< HBIndex row of (Thread, segment).
  LocksetId Lockset;
  bool IsWrite;
  std::vector<uint32_t> Pos;              ///< Ascending.
  std::vector<uint32_t> Idx;              ///< Global (merged-vector) index.
  std::vector<const AccessEvent *> Ev;

  /// First occurrence of each distinct statement: (member rank, event).
  /// Built on demand — only classes that land in a racy rectangle pay.
  bool StmtsBuilt = false;
  std::vector<std::pair<uint32_t, const AccessEvent *>> Stmts;

  size_t size() const { return Pos.size(); }

  const std::vector<std::pair<uint32_t, const AccessEvent *>> &stmts() {
    if (!StmtsBuilt) {
      StmtsBuilt = true;
      std::unordered_set<const Stmt *> Seen;
      for (uint32_t R = 0; R < Ev.size(); ++R)
        if (Seen.insert(Ev[R]->S).second)
          Stmts.emplace_back(R, Ev[R]);
    }
    return Stmts;
  }
};

/// Class key: (thread, segment) and (lockset, is-write), packed.
struct ClassKey {
  uint64_t ThreadSeg;
  uint64_t LocksetWrite;
  bool operator==(const ClassKey &RHS) const {
    return ThreadSeg == RHS.ThreadSeg && LocksetWrite == RHS.LocksetWrite;
  }
};
struct ClassKeyHash {
  size_t operator()(const ClassKey &K) const {
    uint64_t H = K.ThreadSeg * 0x9e3779b97f4a7c15ull;
    H ^= K.LocksetWrite + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

/// Per-participant lockset intersection: the precomputed matrix when
/// available, otherwise a shard-local memo over the uncached merge test
/// (SHBGraph's own caches are single-threaded).
struct LocksetOracle {
  const SHBGraph &SHB;
  const LocksetMatrix *Matrix;
  bool UseCache;
  std::unordered_map<uint64_t, bool> Cache;

  bool intersect(LocksetId A, LocksetId B) {
    if (Matrix)
      return Matrix->intersect(A, B);
    if (!UseCache)
      return SHB.locksetsIntersectUncached(A, B);
    uint64_t K = A < B ? (uint64_t(A) << 32) | B : (uint64_t(B) << 32) | A;
    auto It = Cache.find(K);
    if (It != Cache.end())
      return It->second;
    bool R = SHB.locksetsIntersectUncached(A, B);
    Cache.emplace(K, R);
    return R;
  }
};

/// Scheduler state shared by the caller and the pool tasks. Held by
/// shared_ptr so a late task outliving the engine call touches only live
/// memory; the pointers into the caller's frame are valid whenever a task
/// holds an unprocessed location index (the caller cannot have returned
/// while one remains).
struct EngineState {
  const CandidateList *Candidates = nullptr;
  const SHBGraph *SHB = nullptr;
  const HBIndex *HBI = nullptr;
  const LocksetMatrix *Matrix = nullptr;
  const RaceDetectorOptions *Opts = nullptr;
  std::vector<LocationResult> Results;
  size_t NumLocations = 0;

  std::atomic<size_t> Next{0};
  std::atomic<bool> CancelFlag{false};
  std::mutex Mutex;
  std::condition_variable DoneCV;
  size_t Remaining = 0;
};

void processLocation(EngineState &S, size_t LocIdx, LocksetOracle &Locksets) {
  const RaceDetectorOptions &Opts = *S.Opts;
  const HBIndex &HBI = *S.HBI;
  const auto &[Loc, AllAccesses] = (*S.Candidates)[LocIdx];
  LocationResult &LR = S.Results[LocIdx];

  std::vector<const AccessEvent *> Accesses =
      Opts.LockRegionMerging ? mergeByLockRegion(AllAccesses, LR.Merged)
                             : AllAccesses;

  // Group into equivalence classes, in first-occurrence order. The access
  // vector ascends by (thread, position), so classes of different threads
  // never interleave: for I < J with different threads, every member of
  // class I has a smaller global index than every member of class J —
  // which is what lets a rectangle's minimum rank be read off the class
  // prefixes below.
  std::vector<AccessClass> Classes;
  std::unordered_map<ClassKey, size_t, ClassKeyHash> ByKey;
  for (uint32_t K = 0; K < Accesses.size(); ++K) {
    const AccessEvent *E = Accesses[K];
    unsigned Seg = HBI.segmentOf(E->Thread, E->Pos);
    ClassKey Key{(uint64_t(E->Thread) << 32) | Seg,
                 (uint64_t(E->Lockset) << 1) | E->IsWrite};
    auto [It, New] = ByKey.emplace(Key, Classes.size());
    if (New) {
      AccessClass C;
      C.Thread = E->Thread;
      C.Row = HBI.rowOf(E->Thread, Seg);
      C.Lockset = E->Lockset;
      C.IsWrite = E->IsWrite;
      Classes.push_back(std::move(C));
    }
    AccessClass &C = Classes[It->second];
    C.Pos.push_back(E->Pos);
    C.Idx.push_back(K);
    C.Ev.push_back(E);
  }

  // Minimum-rank racy pair per statement pair of this location.
  std::unordered_map<uint64_t, PendingRace> Wanted;

  for (size_t I = 0; I < Classes.size(); ++I) {
    for (size_t J = I + 1; J < Classes.size(); ++J) {
      AccessClass &A = Classes[I];
      AccessClass &B = Classes[J];
      if (A.Thread == B.Thread)
        continue;
      if (!A.IsWrite && !B.IsWrite)
        continue;
      uint64_t N = uint64_t(A.size()) * B.size();
      LR.PairsChecked += N;
      LR.LocksetChecks += N;
      if (Locksets.intersect(A.Lockset, B.Lockset))
        continue;
      // hb(a, b) is false exactly for b before R12; the serial scan
      // issues its second query hb(b, a) for exactly those pairs.
      uint32_t R12 = HBI.reach(A.Row, B.Thread);
      size_t Cut12 = std::lower_bound(B.Pos.begin(), B.Pos.end(), R12) -
                     B.Pos.begin();
      LR.HBQueries += N + uint64_t(A.size()) * Cut12;
      if (Cut12 == 0)
        continue;
      uint32_t R21 = HBI.reach(B.Row, A.Thread);
      size_t Cut21 = std::lower_bound(A.Pos.begin(), A.Pos.end(), R21) -
                     A.Pos.begin();
      if (Cut21 == 0)
        continue;
      // Racy rectangle: prefix(A, Cut21) x prefix(B, Cut12). For each
      // statement pair, its minimum-rank racy pair uses the first
      // occurrence of each statement within the prefixes.
      for (const auto &[RankA, EA] : A.stmts()) {
        if (RankA >= Cut21)
          break;
        for (const auto &[RankB, EB] : B.stmts()) {
          if (RankB >= Cut12)
            break;
          uint64_t Rank = (uint64_t(A.Idx[RankA]) << 32) | B.Idx[RankB];
          uint64_t Key = stmtPairKey(EA->S, EB->S);
          auto [It, New] = Wanted.emplace(
              Key, PendingRace{Rank, Key, Race{}});
          if (New || Rank < It->second.Rank) {
            It->second.Rank = Rank;
            It->second.Rc = makeRace(Loc, *EA, *EB);
          }
        }
      }
    }
  }

  LR.Pending.reserve(Wanted.size());
  for (auto &[Key, P] : Wanted)
    LR.Pending.push_back(std::move(P));
  std::sort(LR.Pending.begin(), LR.Pending.end(),
            [](const PendingRace &X, const PendingRace &Y) {
              return X.Rank < Y.Rank;
            });
}

/// Worker body: pull locations from the cursor until exhausted. Runs on
/// the caller and on every pool task; each participant owns a lockset
/// memo of its own.
void participate(const std::shared_ptr<EngineState> &S) {
  LocksetOracle Locksets{*S->SHB, S->Matrix, S->Opts->CacheLocksetChecks, {}};
  for (;;) {
    size_t I = S->Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= S->NumLocations)
      return;
    if (!S->CancelFlag.load(std::memory_order_relaxed)) {
      if (pollCancelled(S->Opts->Cancel))
        S->CancelFlag.store(true, std::memory_order_relaxed);
      else
        processLocation(*S, I, Locksets);
    }
    std::lock_guard<std::mutex> Lock(S->Mutex);
    if (--S->Remaining == 0)
      S->DoneCV.notify_all();
  }
}

} // namespace

RaceReport o2::runParallelRaceEngine(const PTAResult &PTA, const SHBGraph &SHB,
                                     const RaceDetectorOptions &Opts) {
  RaceReport R;
  StatisticRegistry &Stats = RaceReportAccess::stats(R);
  CandidateList Candidates = collectCandidates(PTA, SHB, Opts, Stats);
  if (Candidates.empty()) {
    finalizeReport(R, {}, false);
    return R;
  }

  // The indexes every shard shares, immutable once built. A prebuilt
  // index (the AnalysisManager's HBIndex pass) is used as-is.
  std::unique_ptr<HBIndex> OwnedHBI;
  const HBIndex *HBI = Opts.Index;
  if (!HBI) {
    OwnedHBI = std::make_unique<HBIndex>(SHB);
    HBI = OwnedHBI.get();
  }
  if (Opts.HB == RaceHBKind::Index)
    Stats.set("race.hb-index-segments", HBI->numSegments());
  std::unique_ptr<LocksetMatrix> Matrix;
  if (Opts.CacheLocksetChecks && SHB.numLocksets() <= Opts.LocksetMatrixMaxSize)
    Matrix = std::make_unique<LocksetMatrix>(SHB);

  size_t N = Candidates.size();
  auto S = std::make_shared<EngineState>();
  S->Candidates = &Candidates;
  S->SHB = &SHB;
  S->HBI = HBI;
  S->Matrix = Matrix.get();
  S->Opts = &Opts;
  S->Results.resize(N);
  S->NumLocations = N;
  S->Remaining = N;

  unsigned HW = std::thread::hardware_concurrency();
  unsigned P = Opts.Jobs ? Opts.Jobs : (HW ? HW : 1);
  unsigned Helpers = 0;
  std::unique_ptr<ThreadPool> Owned;
  ThreadPool *Pool = nullptr;
  if (N >= Opts.MinParallelLocations && P > 1) {
    if (Opts.Pool) {
      Pool = Opts.Pool;
      Helpers = std::min(Pool->numThreads(), P - 1);
    } else {
      Owned = std::make_unique<ThreadPool>(P - 1);
      Pool = Owned.get();
      Helpers = P - 1;
    }
    Helpers = std::min<size_t>(Helpers, N - 1);
  }
  for (unsigned I = 0; I < Helpers; ++I)
    Pool->submit([S] { participate(S); });

  // The caller always participates, so progress never depends on pool
  // capacity (an external pool may be saturated with other modules).
  participate(S);
  {
    std::unique_lock<std::mutex> Lock(S->Mutex);
    S->DoneCV.wait(Lock, [&] { return S->Remaining == 0; });
  }

  // Canonical-order fold: identical to the serial scan's global
  // statement-pair dedup because locations are visited in sorted order
  // and each location's pending races carry their serial scan rank.
  uint64_t Pairs = 0, Locksets = 0, HBQueries = 0, Merged = 0;
  std::unordered_set<uint64_t> Reported;
  std::vector<Race> Races;
  for (LocationResult &LR : S->Results) {
    Pairs += LR.PairsChecked;
    Locksets += LR.LocksetChecks;
    HBQueries += LR.HBQueries;
    Merged += LR.Merged;
    for (PendingRace &P : LR.Pending)
      if (Reported.insert(P.Key).second)
        Races.push_back(P.Rc);
  }
  // Counters materialize only once charged, matching the serial engine's
  // create-on-first-add behaviour.
  if (Merged)
    Stats.add("race.merged-accesses", Merged);
  if (Pairs)
    Stats.add("race.pairs-checked", Pairs);
  if (Locksets)
    Stats.add("race.lockset-checks", Locksets);
  if (HBQueries)
    Stats.add("race.hb-queries", HBQueries);

  finalizeReport(R, std::move(Races),
                 S->CancelFlag.load(std::memory_order_relaxed));
  return R;
}
