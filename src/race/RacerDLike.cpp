//===- RacerDLike.cpp - Syntactic race detector baseline ---------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Race/RacerDLike.h"

#include "o2/IR/Printer.h"
#include "o2/Support/Casting.h"
#include "o2/Support/OutputStream.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

using namespace o2;

namespace o2 {

class RacerDLikeDetector {
public:
  RacerDLikeDetector(const Module &M, const CancellationToken *Cancel)
      : M(M), Cancel(Cancel) {}

  RacerDReport run() {
    buildNameIndex();
    computeRootReachability();
    if (!R.Cancelled)
      collectAccesses();
    if (!R.Cancelled)
      emitWarnings();
    return std::move(R);
  }

private:
  struct Access {
    const Stmt *S;
    const Function *F;
    bool IsWrite;
    std::set<std::string> LockNames; ///< syntactic locks held
  };

  /// Map method name -> every method with that name anywhere: the
  /// detector has no pointer information, so a virtual call can reach any
  /// equally-named method (RacerD-style name-based resolution).
  void buildNameIndex() {
    for (const auto &F : M.functions())
      if (F->isMethod())
        MethodsByName[F->getName()].push_back(F.get());
  }

  void callees(const Function *F, std::vector<const Function *> &Out) {
    for (const auto &SPtr : F->body()) {
      if (const auto *Call = dyn_cast<CallStmt>(SPtr.get())) {
        if (Call->isVirtual()) {
          auto It = MethodsByName.find(Call->getMethodName());
          if (It != MethodsByName.end())
            Out.insert(Out.end(), It->second.begin(), It->second.end());
        } else {
          Out.push_back(Call->getDirectCallee());
        }
      } else if (const auto *A = dyn_cast<AllocStmt>(SPtr.get())) {
        if (const Function *Init = A->getAllocType()->findMethod("init"))
          Out.push_back(Init);
      }
    }
  }

  /// Reachability from each concurrency root (main + each spawned entry
  /// name instance). A function's root set tells whether two accesses can
  /// run on different threads.
  void computeRootReachability() {
    std::vector<const Function *> Roots;
    if (const Function *Main = M.getMain())
      Roots.push_back(Main);
    std::set<std::string> SpawnEntryNames;
    for (const auto &F : M.functions())
      for (const auto &SPtr : F->body())
        if (const auto *Sp = dyn_cast<SpawnStmt>(SPtr.get()))
          SpawnEntryNames.insert(Sp->getEntryName());
    for (const std::string &Name : SpawnEntryNames) {
      auto It = MethodsByName.find(Name);
      if (It == MethodsByName.end())
        continue;
      for (const Function *Entry : It->second)
        Roots.push_back(Entry);
    }

    for (size_t RootIdx = 0; RootIdx != Roots.size(); ++RootIdx) {
      std::deque<const Function *> Queue{Roots[RootIdx]};
      std::set<const Function *> Visited;
      while (!Queue.empty()) {
        if (pollCancelled(Cancel)) {
          R.Cancelled = true;
          return;
        }
        const Function *F = Queue.front();
        Queue.pop_front();
        if (!Visited.insert(F).second)
          continue;
        RootsOf[F].insert(static_cast<unsigned>(RootIdx));
        std::vector<const Function *> Out;
        callees(F, Out);
        for (const Function *Callee : Out)
          Queue.push_back(Callee);
      }
    }
    NumRoots = static_cast<unsigned>(Roots.size());
  }

  static std::string fieldKeyName(const Field *Fld) {
    return Fld->getParent()->getName() + "." + Fld->getName();
  }

  /// RacerD's ownership reasoning, intraprocedural flavor: a variable
  /// holding a locally allocated object that is never overwritten from
  /// elsewhere is owned, and accesses through it cannot race.
  static std::set<const Variable *> ownedVariables(const Function *F) {
    std::set<const Variable *> Owned;
    std::set<const Variable *> Tainted;
    for (const auto &SPtr : F->body()) {
      const Stmt &S = *SPtr;
      if (const auto *A = dyn_cast<AllocStmt>(&S)) {
        Owned.insert(A->getTarget());
      } else if (const auto *A = dyn_cast<ArrayAllocStmt>(&S)) {
        Owned.insert(A->getTarget());
      } else if (const auto *A = dyn_cast<AssignStmt>(&S)) {
        Tainted.insert(A->getTarget());
      } else if (const auto *L = dyn_cast<FieldLoadStmt>(&S)) {
        Tainted.insert(L->getTarget());
      } else if (const auto *L = dyn_cast<ArrayLoadStmt>(&S)) {
        Tainted.insert(L->getTarget());
      } else if (const auto *L = dyn_cast<GlobalLoadStmt>(&S)) {
        Tainted.insert(L->getTarget());
      } else if (const auto *C = dyn_cast<CallStmt>(&S)) {
        if (C->getTarget())
          Tainted.insert(C->getTarget());
      }
    }
    for (const Variable *V : Tainted)
      Owned.erase(V);
    return Owned;
  }

  void collectAccesses() {
    for (const auto &FPtr : M.functions()) {
      if (pollCancelled(Cancel)) {
        R.Cancelled = true;
        return;
      }
      const Function *F = FPtr.get();
      if (!RootsOf.count(F))
        continue; // dead code
      std::set<const Variable *> Owned = ownedVariables(F);
      std::vector<std::string> LockStack;
      for (const auto &SPtr : F->body()) {
        const Stmt &S = *SPtr;
        std::string Key;
        bool IsWrite = false;
        switch (S.getKind()) {
        case Stmt::SK_FieldLoad:
          if (Owned.count(cast<FieldLoadStmt>(S).getBase()))
            continue;
          Key = fieldKeyName(cast<FieldLoadStmt>(S).getField());
          break;
        case Stmt::SK_FieldStore:
          if (Owned.count(cast<FieldStoreStmt>(S).getBase()))
            continue;
          Key = fieldKeyName(cast<FieldStoreStmt>(S).getField());
          IsWrite = true;
          break;
        case Stmt::SK_ArrayLoad:
          if (Owned.count(cast<ArrayLoadStmt>(S).getBase()))
            continue;
          Key = "[]";
          break;
        case Stmt::SK_ArrayStore:
          if (Owned.count(cast<ArrayStoreStmt>(S).getBase()))
            continue;
          Key = "[]";
          IsWrite = true;
          break;
        case Stmt::SK_GlobalLoad:
          Key = "@" + cast<GlobalLoadStmt>(S).getGlobal()->getName();
          break;
        case Stmt::SK_GlobalStore:
          Key = "@" + cast<GlobalStoreStmt>(S).getGlobal()->getName();
          IsWrite = true;
          break;
        case Stmt::SK_Acquire:
          LockStack.push_back(cast<AcquireStmt>(S).getLock()->getName());
          continue;
        case Stmt::SK_Release:
          if (!LockStack.empty())
            LockStack.pop_back();
          continue;
        default:
          continue;
        }
        Access A;
        A.S = &S;
        A.F = F;
        A.IsWrite = IsWrite;
        A.LockNames.insert(LockStack.begin(), LockStack.end());
        AccessesByKey[Key].push_back(std::move(A));
      }
    }
  }

  /// Two accesses may run on different threads if their functions' root
  /// sets differ, or a shared root set contains a non-main root (entry
  /// methods can be spawned more than once).
  bool mayRunConcurrently(const Access &A, const Access &B) const {
    const std::set<unsigned> &RA = RootsOf.at(A.F);
    const std::set<unsigned> &RB = RootsOf.at(B.F);
    if (RA != RB)
      return true;
    for (unsigned Root : RA)
      if (Root != 0) // root 0 is main; entry roots may self-parallelize
        return true;
    return false;
  }

  /// A function reachable from a non-main root may run on several threads
  /// at once (entry methods can be spawned repeatedly).
  bool canSelfRace(const Access &A) const {
    for (unsigned Root : RootsOf.at(A.F))
      if (Root != 0)
        return true;
    return false;
  }

  static bool locksDisjoint(const Access &A, const Access &B) {
    for (const std::string &L : A.LockNames)
      if (B.LockNames.count(L))
        return false;
    return true;
  }

  void emitWarnings() {
    for (const auto &[Key, Accesses] : AccessesByKey) {
      bool AnyLocked = false;
      for (const Access &A : Accesses)
        AnyLocked |= !A.LockNames.empty();

      // Category 1: read/write race pairs, deduplicated the way RacerD
      // reports them — one warning per (location, function pair). A write
      // may also race with itself (I == J) when its function can run on
      // more than one thread and the access is unsynchronized.
      std::set<std::pair<const Function *, const Function *>> Reported;
      for (size_t I = 0; I < Accesses.size(); ++I) {
        if (pollCancelled(Cancel)) {
          R.Cancelled = true;
          return;
        }
        for (size_t J = I; J < Accesses.size(); ++J) {
          const Access &A = Accesses[I];
          const Access &B = Accesses[J];
          if (!A.IsWrite && !B.IsWrite)
            continue;
          if (I == J) {
            if (!A.IsWrite || !A.LockNames.empty() || !canSelfRace(A))
              continue;
          } else {
            if (!mayRunConcurrently(A, B))
              continue;
            if (!locksDisjoint(A, B))
              continue;
          }
          auto FnPair = A.F < B.F ? std::make_pair(A.F, B.F)
                                  : std::make_pair(B.F, A.F);
          if (!Reported.insert(FnPair).second)
            continue;
          R.Warnings.push_back({RacerDWarning::Kind::ReadWriteRace, Key, A.S,
                                B.S});
          ++R.NumPotentialRaces;
        }
      }

      // Category 2: unprotected writes in mixed-synchronization fields.
      if (!AnyLocked)
        continue;
      std::set<const Function *> AccessingFns;
      for (const Access &A : Accesses)
        AccessingFns.insert(A.F);
      for (const Access &A : Accesses) {
        if (!A.IsWrite || !A.LockNames.empty())
          continue;
        R.Warnings.push_back(
            {RacerDWarning::Kind::UnprotectedWrite, Key, A.S, nullptr});
        // The paper translates each unprotected-write report into its
        // implied conflicting-access pairs (one per other function that
        // touches the same location).
        R.NumPotentialRaces +=
            static_cast<unsigned>(AccessingFns.size()) - 1;
      }
    }
  }

  const Module &M;
  const CancellationToken *Cancel;
  RacerDReport R;
  std::map<std::string, std::vector<const Function *>> MethodsByName;
  std::map<const Function *, std::set<unsigned>> RootsOf;
  std::map<std::string, std::vector<Access>> AccessesByKey;
  unsigned NumRoots = 0;
};

} // namespace o2

void RacerDReport::print(OutputStream &OS) const {
  OS << "==== RacerD-like: " << Warnings.size() << " warning(s), "
     << NumPotentialRaces << " potential race(s) ====\n";
  for (const RacerDWarning &W : Warnings) {
    if (W.WarningKind == RacerDWarning::Kind::ReadWriteRace)
      OS << "read/write race on " << W.Location << ": '" << printStmt(*W.A)
         << "' vs '" << printStmt(*W.B) << "'\n";
    else
      OS << "unprotected write to " << W.Location << ": '" << printStmt(*W.A)
         << "'\n";
  }
}

RacerDReport o2::runRacerDLike(const Module &M,
                               const CancellationToken *Cancel) {
  return RacerDLikeDetector(M, Cancel).run();
}
