//===- OverSync.cpp - Over-synchronization analysis ----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Race/OverSync.h"

#include "o2/IR/Printer.h"
#include "o2/Support/OutputStream.h"

#include <map>

using namespace o2;

OverSyncReport
o2::detectOverSynchronization(const SharingResult &Sharing,
                              const SHBGraph &SHB,
                              const CancellationToken *Cancel) {
  OverSyncReport R;
  for (const ThreadInfo &T : SHB.threads()) {
    if (pollCancelled(Cancel)) {
      R.Cancelled = true;
      return R;
    }
    // Group this thread's accesses by innermost lock region.
    struct RegionState {
      unsigned NumAccesses = 0;
      bool TouchesShared = false;
    };
    std::map<uint32_t, RegionState> Regions;
    for (const AccessEvent &E : T.Accesses) {
      if (E.LockRegion == 0)
        continue;
      RegionState &State = Regions[E.LockRegion];
      ++State.NumAccesses;
      for (const MemLoc &Loc : E.Locs)
        State.TouchesShared |= Sharing.isShared(Loc);
    }
    // Map each region to its opening acquire.
    std::map<uint32_t, const Stmt *> RegionAcquire;
    for (const AcquireEvent &A : T.Acquires)
      RegionAcquire[A.Region] = A.S;
    for (const auto &[Region, State] : Regions) {
      ++R.NumRegionsChecked;
      if (State.TouchesShared || State.NumAccesses == 0)
        continue;
      OverSyncRegion O;
      O.Acquire =
          RegionAcquire.count(Region) ? RegionAcquire[Region] : nullptr;
      O.Thread = T.Id;
      O.NumAccesses = State.NumAccesses;
      R.Regions.push_back(O);
    }
  }
  return R;
}

void OverSyncReport::print(OutputStream &OS) const {
  OS << "==== " << Regions.size() << " over-synchronized region(s) (of "
     << NumRegionsChecked << " checked) ====\n";
  for (const OverSyncRegion &O : Regions) {
    OS << "lock region";
    if (O.Acquire)
      OS << " at '" << printStmt(*O.Acquire) << "' in "
         << O.Acquire->getFunction()->getName();
    OS << " [thread " << O.Thread << "] guards only origin-local data ("
       << O.NumAccesses << " access(es))\n";
  }
}
