//===- RaceDetector.cpp - Static race detection ----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// The serial race engine and the shared engine internals. The serial
// engine is the pairwise oracle the parallel engine is validated against;
// it also owns the MaxPairChecks budget (budget exhaustion is defined by
// its scan order) and the HB-implementation knob (naive BFS / memoized
// fixpoint / precomputed index all answer its queries).
//
//===----------------------------------------------------------------------===//

#include "RaceEngine.h"

#include "o2/IR/Printer.h"
#include "o2/SHB/HBIndex.h"
#include "o2/Support/JSONWriter.h"
#include "o2/Support/OutputStream.h"

#include <memory>

using namespace o2;
using namespace o2::race_detail;

CandidateList race_detail::collectCandidates(const PTAResult &PTA,
                                             const SHBGraph &SHB,
                                             const RaceDetectorOptions &Opts,
                                             StatisticRegistry &Stats) {
  struct LocInfo {
    BitVector ReadThreads;
    BitVector WriteThreads;
    std::vector<const AccessEvent *> Accesses;
  };
  std::unordered_map<MemLoc, LocInfo> Infos;
  for (const ThreadInfo &T : SHB.threads()) {
    for (const AccessEvent &E : T.Accesses) {
      for (const MemLoc &Loc : E.Locs) {
        LocInfo &I = Infos[Loc];
        if (E.IsWrite)
          I.WriteThreads.set(E.Thread);
        else
          I.ReadThreads.set(E.Thread);
        I.Accesses.push_back(&E);
      }
    }
  }
  AtomicLocFilter Atomics(PTA);
  CandidateList Candidates;
  std::unordered_set<unsigned> SharedObjects;
  for (auto &[Loc, I] : Infos) {
    if (Opts.HandleAtomics && Atomics.isAtomic(Loc))
      continue;
    if (I.WriteThreads.none())
      continue;
    BitVector All = I.ReadThreads;
    All.unionWith(I.WriteThreads);
    if (All.count() < 2)
      continue;
    if (!Loc.isGlobal())
      SharedObjects.insert(Loc.object());
    Candidates.emplace_back(Loc, std::move(I.Accesses));
  }
  // Hashed iteration order is arbitrary: sort once so pair budgeting
  // (MaxPairChecks), sharding, and report order stay deterministic.
  std::sort(Candidates.begin(), Candidates.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  Stats.set("race.shared-locations", Candidates.size());
  Stats.set("race.shared-objects", SharedObjects.size());
  Stats.set("race.threads", SHB.numThreads());
  Stats.set("race.access-events", SHB.numAccessEvents());
  return Candidates;
}

namespace {

/// Dedup key for lock-region merging: ⟨thread, lock region⟩ and
/// ⟨lockset, is-write⟩, each packed into one word.
struct MergedRegionKey {
  uint64_t ThreadRegion;
  uint64_t LocksetWrite;
  bool operator==(const MergedRegionKey &RHS) const {
    return ThreadRegion == RHS.ThreadRegion && LocksetWrite == RHS.LocksetWrite;
  }
};
struct MergedRegionKeyHash {
  size_t operator()(const MergedRegionKey &K) const {
    uint64_t H = K.ThreadRegion * 0x9e3779b97f4a7c15ull;
    H ^= K.LocksetWrite + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

} // namespace

std::vector<const AccessEvent *>
race_detail::mergeByLockRegion(const std::vector<const AccessEvent *> &In,
                               uint64_t &MergedOut) {
  std::vector<const AccessEvent *> Out;
  // (thread, region) and (lockset, is-write) packed into two words; output
  // keeps the input order, so the hashed dedup stays deterministic.
  std::unordered_set<MergedRegionKey, MergedRegionKeyHash> Seen;
  for (const AccessEvent *E : In) {
    if (E->LockRegion == 0 || E->RegionHasSync) {
      Out.push_back(E);
      continue;
    }
    MergedRegionKey Key{(uint64_t(E->Thread) << 32) | E->LockRegion,
                        (uint64_t(E->Lockset) << 1) | E->IsWrite};
    if (Seen.insert(Key).second)
      Out.push_back(E);
    else
      ++MergedOut;
  }
  return Out;
}

namespace o2 {

class RaceDetector {
public:
  RaceDetector(const PTAResult &PTA, const SHBGraph &SHB,
               const RaceDetectorOptions &Opts)
      : PTA(PTA), SHB(SHB), Opts(Opts) {}

  RaceReport run() {
    Candidates = collectCandidates(PTA, SHB, Opts, R.Stats);
    if (!Candidates.empty() && Opts.HB == RaceHBKind::Index) {
      if (Opts.Index) {
        SharedHBI = Opts.Index;
      } else {
        HBI = std::make_unique<HBIndex>(SHB);
        SharedHBI = HBI.get();
      }
      R.Stats.set("race.hb-index-segments", SharedHBI->numSegments());
    }
    for (auto &[Loc, Accesses] : Candidates) {
      if (BudgetExhausted || R.Cancelled)
        break;
      checkLocation(Loc, Accesses);
    }
    finalize();
    return std::move(R);
  }

private:
  bool locksetsIntersect(LocksetId A, LocksetId B) {
    R.Stats.add("race.lockset-checks");
    return Opts.CacheLocksetChecks ? SHB.locksetsIntersect(A, B)
                                   : SHB.locksetsIntersectUncached(A, B);
  }

  bool happensBefore(const AccessEvent &A, const AccessEvent &B) {
    R.Stats.add("race.hb-queries");
    switch (Opts.HB) {
    case RaceHBKind::Naive:
      return SHB.happensBeforeNaive(A.Thread, A.Pos, B.Thread, B.Pos);
    case RaceHBKind::Memo:
      return SHB.happensBefore(A.Thread, A.Pos, B.Thread, B.Pos);
    case RaceHBKind::Index:
      return SharedHBI->happensBefore(A.Thread, A.Pos, B.Thread, B.Pos);
    }
    return false;
  }

  void checkLocation(MemLoc Loc,
                     const std::vector<const AccessEvent *> &AllAccesses) {
    uint64_t Merged = 0;
    std::vector<const AccessEvent *> Accesses =
        Opts.LockRegionMerging ? mergeByLockRegion(AllAccesses, Merged)
                               : AllAccesses;
    if (Merged)
      R.Stats.add("race.merged-accesses", Merged);
    for (size_t I = 0; I < Accesses.size(); ++I) {
      for (size_t J = I + 1; J < Accesses.size(); ++J) {
        if (pollCancelled(Opts.Cancel)) {
          R.Cancelled = true;
          return;
        }
        const AccessEvent &A = *Accesses[I];
        const AccessEvent &B = *Accesses[J];
        if (A.Thread == B.Thread)
          continue;
        if (!A.IsWrite && !B.IsWrite)
          continue;
        // The budget is charged per conflicting pair actually examined;
        // the pair that would exceed it is not examined and trips the
        // budget flag instead, wherever in the scan it falls.
        if (PairsChecked >= Opts.MaxPairChecks) {
          R.Stats.set("race.budget-hit", 1);
          BudgetExhausted = true;
          return;
        }
        ++PairsChecked;
        R.Stats.add("race.pairs-checked");
        if (locksetsIntersect(A.Lockset, B.Lockset))
          continue;
        if (happensBefore(A, B) || happensBefore(B, A))
          continue;
        recordRace(Loc, A, B);
      }
    }
  }

  void recordRace(MemLoc Loc, const AccessEvent &A, const AccessEvent &B) {
    if (!ReportedPairs.insert(stmtPairKey(A.S, B.S)).second)
      return;
    R.Races.push_back(makeRace(Loc, A, B));
  }

  void finalize() {
    // Detach first: finalizeReport assigns into R.Races, and handing it
    // R.Races itself would be a self-move.
    std::vector<Race> Races = std::move(R.Races);
    R.Races.clear();
    finalizeReport(R, std::move(Races), R.Cancelled);
  }

  const PTAResult &PTA;
  const SHBGraph &SHB;
  RaceDetectorOptions Opts;
  RaceReport R;
  std::unique_ptr<HBIndex> HBI; ///< engine-built fallback, see SharedHBI
  const HBIndex *SharedHBI = nullptr;
  CandidateList Candidates;
  /// Reported (stmt A, stmt B) pairs, A < B, packed into one word.
  std::unordered_set<uint64_t> ReportedPairs;
  uint64_t PairsChecked = 0;
  bool BudgetExhausted = false;
};

} // namespace o2

void RaceReport::print(OutputStream &OS, const PTAResult &PTA) const {
  OS << "==== " << Races.size() << " race(s) ====\n";
  for (const Race &Rc : Races) {
    OS << "race on " << Rc.Loc.toString(PTA) << ":\n";
    OS << "  " << (Rc.AIsWrite ? "write" : "read ") << " '"
       << printStmt(*Rc.A) << "' in "
       << Rc.A->getFunction()->getName() << " [thread " << Rc.ThreadA
       << "]\n";
    OS << "  " << (Rc.BIsWrite ? "write" : "read ") << " '"
       << printStmt(*Rc.B) << "' in "
       << Rc.B->getFunction()->getName() << " [thread " << Rc.ThreadB
       << "]\n";
  }
}

void RaceReport::printJSON(OutputStream &OS, const PTAResult &PTA) const {
  JSONWriter W(OS);
  W.beginObject();
  W.key("races");
  W.beginArray();
  for (const Race &Rc : Races) {
    W.beginObject();
    W.attribute("location", Rc.Loc.toString(PTA));
    W.key("first");
    W.beginObject();
    W.attribute("stmt", printStmt(*Rc.A));
    W.attribute("function", Rc.A->getFunction()->getName());
    W.attribute("thread", Rc.ThreadA);
    W.attribute("write", Rc.AIsWrite);
    W.endObject();
    W.key("second");
    W.beginObject();
    W.attribute("stmt", printStmt(*Rc.B));
    W.attribute("function", Rc.B->getFunction()->getName());
    W.attribute("thread", Rc.ThreadB);
    W.attribute("write", Rc.BIsWrite);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.key("stats");
  W.beginObject();
  for (const auto &[Name, Value] : Stats.counters())
    W.attribute(Name, Value);
  W.endObject();
  W.endObject();
  OS << '\n';
}

RaceReport o2::detectRaces(const PTAResult &PTA, const SHBGraph &SHB,
                           const RaceDetectorOptions &Opts) {
  // A finite pair budget is defined by the serial scan order, so it
  // forces the serial engine regardless of the engine knob.
  if (Opts.Engine == RaceEngineKind::Parallel &&
      Opts.MaxPairChecks == ~uint64_t(0))
    return runParallelRaceEngine(PTA, SHB, Opts);
  return RaceDetector(PTA, SHB, Opts).run();
}

RaceReport o2::detectRaces(const PTAResult &PTA,
                           const RaceDetectorOptions &Opts) {
  SHBGraph SHB = buildSHBGraph(PTA, Opts.SHB);
  return detectRaces(PTA, SHB, Opts);
}
