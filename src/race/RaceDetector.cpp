//===- RaceDetector.cpp - Static race detection ----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Race/RaceDetector.h"

#include "o2/IR/Printer.h"
#include "o2/Support/Casting.h"
#include "o2/Support/JSONWriter.h"
#include "o2/Support/OutputStream.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace o2;

namespace o2 {

class RaceDetector {
public:
  RaceDetector(const PTAResult &PTA, const SHBGraph &SHB,
               const RaceDetectorOptions &Opts)
      : PTA(PTA), SHB(SHB), Opts(Opts) {}

  RaceReport run() {
    collectCandidates();
    for (auto &[Loc, Accesses] : Candidates) {
      if (PairsChecked >= Opts.MaxPairChecks) {
        R.Stats.set("race.budget-hit", 1);
        break;
      }
      if (R.Cancelled)
        break;
      checkLocation(Loc, Accesses);
    }
    finalize();
    return std::move(R);
  }

private:
  /// A (possibly region-merged) access considered for race pairing.
  struct CandidateAccess {
    const AccessEvent *E;
  };

  /// Shared-location filter over the traces: a location is a candidate if
  /// at least two threads access it and at least one writes.
  void collectCandidates() {
    struct LocInfo {
      BitVector ReadThreads;
      BitVector WriteThreads;
      std::vector<const AccessEvent *> Accesses;
    };
    std::unordered_map<MemLoc, LocInfo> Infos;
    for (const ThreadInfo &T : SHB.threads()) {
      for (const AccessEvent &E : T.Accesses) {
        for (const MemLoc &Loc : E.Locs) {
          LocInfo &I = Infos[Loc];
          if (E.IsWrite)
            I.WriteThreads.set(E.Thread);
          else
            I.ReadThreads.set(E.Thread);
          I.Accesses.push_back(&E);
        }
      }
    }
    std::unordered_set<unsigned> SharedObjects;
    for (auto &[Loc, I] : Infos) {
      if (Opts.HandleAtomics && isAtomicLoc(Loc))
        continue;
      if (I.WriteThreads.none())
        continue;
      BitVector All = I.ReadThreads;
      All.unionWith(I.WriteThreads);
      if (All.count() < 2)
        continue;
      if (!Loc.isGlobal())
        SharedObjects.insert(Loc.object());
      Candidates.emplace_back(Loc, std::move(I.Accesses));
    }
    // Hashed iteration order is arbitrary: sort once so pair budgeting
    // (MaxPairChecks) and report order stay deterministic.
    std::sort(Candidates.begin(), Candidates.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    R.Stats.set("race.shared-locations", Candidates.size());
    R.Stats.set("race.shared-objects", SharedObjects.size());
    R.Stats.set("race.threads", SHB.numThreads());
    R.Stats.set("race.access-events", SHB.numAccessEvents());
  }

  /// True if \p Loc is an `atomic` field or global: a synchronization
  /// location, not data.
  bool isAtomicLoc(MemLoc Loc) const {
    if (Loc.isGlobal())
      return PTA.module().globals()[Loc.globalId()]->isAtomic();
    FieldKey FK = Loc.fieldKey();
    if (FK == ArrayElemKey)
      return false;
    const ObjInfo &O = PTA.object(Loc.object());
    if (const auto *Cls = dyn_cast<ClassType>(O.AllocatedType))
      for (const ClassType *C = Cls; C; C = C->getSuper())
        for (const auto &F : C->fields())
          if (fieldKeyOf(F.get()) == FK)
            return F->isAtomic();
    return false;
  }

  /// Dedup key for lock-region merging: ⟨thread, lock region⟩ and
  /// ⟨lockset, is-write⟩, each packed into one word.
  struct MergedRegionKey {
    uint64_t ThreadRegion;
    uint64_t LocksetWrite;
    bool operator==(const MergedRegionKey &RHS) const {
      return ThreadRegion == RHS.ThreadRegion &&
             LocksetWrite == RHS.LocksetWrite;
    }
  };
  struct MergedRegionKeyHash {
    size_t operator()(const MergedRegionKey &K) const {
      uint64_t H = K.ThreadRegion * 0x9e3779b97f4a7c15ull;
      H ^= K.LocksetWrite + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
      return static_cast<size_t>(H);
    }
  };

  /// Optimization 3: within one thread, all accesses to \p Loc inside the
  /// same sync-free lock region with the same lockset have identical
  /// happens-before and lockset behaviour — keep one representative.
  std::vector<const AccessEvent *>
  mergeByLockRegion(MemLoc Loc, const std::vector<const AccessEvent *> &In) {
    (void)Loc;
    std::vector<const AccessEvent *> Out;
    // (thread, region) and (lockset, is-write) packed into two words;
    // output keeps the input order, so the hashed dedup stays
    // deterministic.
    std::unordered_set<MergedRegionKey, MergedRegionKeyHash> Seen;
    for (const AccessEvent *E : In) {
      if (E->LockRegion == 0 || E->RegionHasSync) {
        Out.push_back(E);
        continue;
      }
      MergedRegionKey Key{(uint64_t(E->Thread) << 32) | E->LockRegion,
                          (uint64_t(E->Lockset) << 1) | E->IsWrite};
      if (Seen.insert(Key).second)
        Out.push_back(E);
      else
        R.Stats.add("race.merged-accesses");
    }
    return Out;
  }

  bool locksetsIntersect(LocksetId A, LocksetId B) {
    R.Stats.add("race.lockset-checks");
    return Opts.CacheLocksetChecks ? SHB.locksetsIntersect(A, B)
                                   : SHB.locksetsIntersectUncached(A, B);
  }

  bool happensBefore(const AccessEvent &A, const AccessEvent &B) {
    R.Stats.add("race.hb-queries");
    return Opts.IntegerHB
               ? SHB.happensBefore(A.Thread, A.Pos, B.Thread, B.Pos)
               : SHB.happensBeforeNaive(A.Thread, A.Pos, B.Thread, B.Pos);
  }

  void checkLocation(MemLoc Loc,
                     const std::vector<const AccessEvent *> &AllAccesses) {
    std::vector<const AccessEvent *> Accesses =
        Opts.LockRegionMerging ? mergeByLockRegion(Loc, AllAccesses)
                               : AllAccesses;
    for (size_t I = 0; I < Accesses.size(); ++I) {
      for (size_t J = I + 1; J < Accesses.size(); ++J) {
        if (pollCancelled(Opts.Cancel)) {
          R.Cancelled = true;
          return;
        }
        const AccessEvent &A = *Accesses[I];
        const AccessEvent &B = *Accesses[J];
        if (A.Thread == B.Thread)
          continue;
        if (!A.IsWrite && !B.IsWrite)
          continue;
        if (++PairsChecked > Opts.MaxPairChecks)
          return;
        R.Stats.add("race.pairs-checked");
        if (locksetsIntersect(A.Lockset, B.Lockset))
          continue;
        if (happensBefore(A, B) || happensBefore(B, A))
          continue;
        recordRace(Loc, A, B);
      }
    }
  }

  void recordRace(MemLoc Loc, const AccessEvent &A, const AccessEvent &B) {
    const Stmt *SA = A.S, *SB = B.S;
    const AccessEvent *EA = &A, *EB = &B;
    if (SA->getId() > SB->getId()) {
      std::swap(SA, SB);
      std::swap(EA, EB);
    }
    if (!ReportedPairs.insert((uint64_t(SA->getId()) << 32) | SB->getId())
             .second)
      return;
    Race Rc;
    Rc.Loc = Loc;
    Rc.A = SA;
    Rc.B = SB;
    Rc.ThreadA = EA->Thread;
    Rc.ThreadB = EB->Thread;
    Rc.AIsWrite = EA->IsWrite;
    Rc.BIsWrite = EB->IsWrite;
    R.Races.push_back(Rc);
  }

  void finalize() {
    std::sort(R.Races.begin(), R.Races.end(),
              [](const Race &X, const Race &Y) {
                if (X.A->getId() != Y.A->getId())
                  return X.A->getId() < Y.A->getId();
                return X.B->getId() < Y.B->getId();
              });
    R.Stats.set("race.races", R.Races.size());
    if (R.Cancelled)
      R.Stats.set("race.cancelled", 1);
  }

  const PTAResult &PTA;
  const SHBGraph &SHB;
  RaceDetectorOptions Opts;
  RaceReport R;
  std::vector<std::pair<MemLoc, std::vector<const AccessEvent *>>> Candidates;
  /// Reported (stmt A, stmt B) pairs, A < B, packed into one word.
  std::unordered_set<uint64_t> ReportedPairs;
  uint64_t PairsChecked = 0;
};

} // namespace o2

void RaceReport::print(OutputStream &OS, const PTAResult &PTA) const {
  OS << "==== " << Races.size() << " race(s) ====\n";
  for (const Race &Rc : Races) {
    OS << "race on " << Rc.Loc.toString(PTA) << ":\n";
    OS << "  " << (Rc.AIsWrite ? "write" : "read ") << " '"
       << printStmt(*Rc.A) << "' in "
       << Rc.A->getFunction()->getName() << " [thread " << Rc.ThreadA
       << "]\n";
    OS << "  " << (Rc.BIsWrite ? "write" : "read ") << " '"
       << printStmt(*Rc.B) << "' in "
       << Rc.B->getFunction()->getName() << " [thread " << Rc.ThreadB
       << "]\n";
  }
}

void RaceReport::printJSON(OutputStream &OS, const PTAResult &PTA) const {
  JSONWriter W(OS);
  W.beginObject();
  W.key("races");
  W.beginArray();
  for (const Race &Rc : Races) {
    W.beginObject();
    W.attribute("location", Rc.Loc.toString(PTA));
    W.key("first");
    W.beginObject();
    W.attribute("stmt", printStmt(*Rc.A));
    W.attribute("function", Rc.A->getFunction()->getName());
    W.attribute("thread", Rc.ThreadA);
    W.attribute("write", Rc.AIsWrite);
    W.endObject();
    W.key("second");
    W.beginObject();
    W.attribute("stmt", printStmt(*Rc.B));
    W.attribute("function", Rc.B->getFunction()->getName());
    W.attribute("thread", Rc.ThreadB);
    W.attribute("write", Rc.BIsWrite);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.key("stats");
  W.beginObject();
  for (const auto &[Name, Value] : Stats.counters())
    W.attribute(Name, Value);
  W.endObject();
  W.endObject();
  OS << '\n';
}

RaceReport o2::detectRaces(const PTAResult &PTA, const SHBGraph &SHB,
                           const RaceDetectorOptions &Opts) {
  return RaceDetector(PTA, SHB, Opts).run();
}

RaceReport o2::detectRaces(const PTAResult &PTA,
                           const RaceDetectorOptions &Opts) {
  SHBGraph SHB = buildSHBGraph(PTA, Opts.SHB);
  return RaceDetector(PTA, SHB, Opts).run();
}
