//===- RaceEngine.h - Shared race-engine internals --------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internals shared by the serial and parallel race engines: the
/// shared-location candidate scan, the memoized atomic-location filter,
/// lock-region merging, and race-payload construction. Keeping these in
/// one place is what makes the engines' byte-identical-report contract
/// checkable: the engines may only differ in how they *pair* accesses,
/// never in which accesses they consider or how a race is materialized.
///
//===----------------------------------------------------------------------===//

#ifndef O2_SRC_RACE_RACEENGINE_H
#define O2_SRC_RACE_RACEENGINE_H

#include "o2/Race/RaceDetector.h"

#include "o2/Support/BitVector.h"
#include "o2/Support/Casting.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace o2 {
namespace race_detail {

/// Sorted candidate list: each shared location with all accesses to it,
/// in (thread, position) order — threads ascend, positions strictly
/// ascend per thread (trace order). Both engines rely on this order.
using CandidateList =
    std::vector<std::pair<MemLoc, std::vector<const AccessEvent *>>>;

/// Classifies locations as `atomic` synchronization (excluded from race
/// candidates) with the class-hierarchy field walk memoized per
/// (class type, field key), so the supers chain is walked once per
/// distinct field instead of once per aliasing location.
class AtomicLocFilter {
public:
  explicit AtomicLocFilter(const PTAResult &PTA) : PTA(PTA) {}

  bool isAtomic(MemLoc Loc) {
    if (Loc.isGlobal())
      return PTA.module().globals()[Loc.globalId()]->isAtomic();
    FieldKey FK = Loc.fieldKey();
    if (FK == ArrayElemKey)
      return false;
    const ObjInfo &O = PTA.object(Loc.object());
    const auto *Cls = dyn_cast<ClassType>(O.AllocatedType);
    if (!Cls)
      return false;
    uint64_t Key = (uint64_t(reinterpret_cast<uintptr_t>(Cls)) << 12) ^ FK;
    auto It = Cache.find(Key);
    if (It != Cache.end())
      return It->second;
    bool Atomic = false, Found = false;
    for (const ClassType *C = Cls; C && !Found; C = C->getSuper())
      for (const auto &F : C->fields())
        if (fieldKeyOf(F.get()) == FK) {
          Atomic = F->isAtomic();
          Found = true;
          break;
        }
    Cache.emplace(Key, Atomic);
    return Atomic;
  }

private:
  const PTAResult &PTA;
  /// (class pointer, field key) -> is-atomic. Pointer identity is stable
  /// for the module's lifetime; the shift leaves the low bits to the
  /// field key (class objects are heap-allocated, so the low pointer
  /// bits carry little entropy anyway).
  std::unordered_map<uint64_t, bool> Cache;
};

/// Shared-location filter over the traces: a location is a candidate if
/// at least two threads access it and at least one writes (and it is not
/// an atomic, when those are handled). Returns the sorted candidate list
/// and records the corpus-shape statistics both engines report.
CandidateList collectCandidates(const PTAResult &PTA, const SHBGraph &SHB,
                                const RaceDetectorOptions &Opts,
                                StatisticRegistry &Stats);

/// Optimization 3: within one thread, all accesses to one location inside
/// the same sync-free lock region with the same lockset have identical
/// happens-before and lockset behaviour — keep one representative.
/// Preserves input order; \p MergedOut is incremented once per dropped
/// access (the "race.merged-accesses" statistic).
std::vector<const AccessEvent *>
mergeByLockRegion(const std::vector<const AccessEvent *> &In,
                  uint64_t &MergedOut);

/// Dedup key of an unordered statement pair: ids packed low/high.
inline uint64_t stmtPairKey(const Stmt *SA, const Stmt *SB) {
  uint32_t A = SA->getId(), B = SB->getId();
  if (A > B)
    std::swap(A, B);
  return (uint64_t(A) << 32) | B;
}

/// Builds the race payload for a conflicting access pair exactly the way
/// the serial engine reports it: participants ordered by statement id.
inline Race makeRace(MemLoc Loc, const AccessEvent &A, const AccessEvent &B) {
  const AccessEvent *EA = &A, *EB = &B;
  if (EA->S->getId() > EB->S->getId())
    std::swap(EA, EB);
  Race Rc;
  Rc.Loc = Loc;
  Rc.A = EA->S;
  Rc.B = EB->S;
  Rc.ThreadA = EA->Thread;
  Rc.ThreadB = EB->Thread;
  Rc.AIsWrite = EA->IsWrite;
  Rc.BIsWrite = EB->IsWrite;
  return Rc;
}

/// Named access to RaceReport's private fields for the engine internals
/// (friend of RaceReport).
struct RaceReportAccess {
  static std::vector<Race> &races(RaceReport &R) { return R.Races; }
  static StatisticRegistry &stats(RaceReport &R) { return R.Stats; }
  static void setCancelled(RaceReport &R, bool C) { R.Cancelled = C; }
};

/// Final report ordering + summary counters, shared by both engines.
inline void finalizeReport(RaceReport &R, std::vector<Race> &&Races,
                           bool Cancelled) {
  std::sort(Races.begin(), Races.end(), [](const Race &X, const Race &Y) {
    if (X.A->getId() != Y.A->getId())
      return X.A->getId() < Y.A->getId();
    return X.B->getId() < Y.B->getId();
  });
  RaceReportAccess::races(R) = std::move(Races);
  RaceReportAccess::setCancelled(R, Cancelled);
  RaceReportAccess::stats(R).set("race.races",
                                 RaceReportAccess::races(R).size());
  if (Cancelled)
    RaceReportAccess::stats(R).set("race.cancelled", 1);
}

} // namespace race_detail

/// The sharded, class-based engine (ParallelRaceEngine.cpp). Requires an
/// unbounded pair budget; the dispatcher in RaceDetector.cpp guarantees
/// it.
RaceReport runParallelRaceEngine(const PTAResult &PTA, const SHBGraph &SHB,
                                 const RaceDetectorOptions &Opts);

} // namespace o2

#endif // O2_SRC_RACE_RACEENGINE_H
