//===- OutputStream.cpp - Lightweight output streams ---------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/OutputStream.h"

#include <cinttypes>
#include <cstdio>

using namespace o2;

OutputStream::~OutputStream() = default;

OutputStream &OutputStream::operator<<(uint64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OutputStream &OutputStream::operator<<(int64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OutputStream &OutputStream::operator<<(double D) {
  char Buf[40];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OutputStream &OutputStream::indent(unsigned NumSpaces) {
  static const char Spaces[] = "                                ";
  while (NumSpaces > 0) {
    unsigned Chunk = NumSpaces < 32 ? NumSpaces : 32;
    write(Spaces, Chunk);
    NumSpaces -= Chunk;
  }
  return *this;
}

namespace o2 {

OutputStream &outs() {
  static FileOutputStream Stream(stdout);
  return Stream;
}

OutputStream &errs() {
  static FileOutputStream Stream(stderr);
  return Stream;
}

} // namespace o2
