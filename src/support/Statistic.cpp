//===- Statistic.cpp - Analysis statistics --------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/Statistic.h"

#include "o2/Support/OutputStream.h"

using namespace o2;

void StatisticRegistry::print(OutputStream &OS) const {
  for (const auto &[Name, Value] : Counters) {
    OS << Value;
    OS.indent(2);
    OS << Name << '\n';
  }
}
