//===- ThreadPool.cpp - Work-stealing thread pool --------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/ThreadPool.h"

#include <algorithm>

using namespace o2;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.push_back(std::make_unique<Worker>());
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Target;
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
    ++Outstanding;
    Target = NextWorker;
    NextWorker = (NextWorker + 1) % Workers.size();
  }
  {
    std::lock_guard<std::mutex> Lock(Workers[Target]->Mutex);
    Workers[Target]->Deque.push_back(std::move(Task));
  }
  WorkCV.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(SleepMutex);
  IdleCV.wait(Lock, [this] { return Outstanding == 0; });
}

bool ThreadPool::popOwn(unsigned Me, std::function<void()> &Task) {
  Worker &W = *Workers[Me];
  std::lock_guard<std::mutex> Lock(W.Mutex);
  if (W.Deque.empty())
    return false;
  Task = std::move(W.Deque.back());
  W.Deque.pop_back();
  return true;
}

bool ThreadPool::steal(unsigned Me, std::function<void()> &Task) {
  const unsigned N = static_cast<unsigned>(Workers.size());
  for (unsigned Off = 1; Off < N; ++Off) {
    Worker &Victim = *Workers[(Me + Off) % N];
    std::lock_guard<std::mutex> Lock(Victim.Mutex);
    if (Victim.Deque.empty())
      continue;
    Task = std::move(Victim.Deque.front());
    Victim.Deque.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Me) {
  while (true) {
    std::function<void()> Task;
    if (popOwn(Me, Task) || steal(Me, Task)) {
      Task();
      std::lock_guard<std::mutex> Lock(SleepMutex);
      if (--Outstanding == 0)
        IdleCV.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepMutex);
    if (Stopping)
      return;
    // Recheck under the sleep lock: a submit() between our empty scan and
    // here would have notified before we started waiting. The timeout is
    // a backstop against the benign lost-wakeup window on the scan.
    WorkCV.wait_for(Lock, std::chrono::milliseconds(2));
  }
}
