//===- FaultInjector.cpp - Deterministic fault injection ------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Support/FaultInjector.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define O2_FAULT_HAVE_POSIX 1
#endif

namespace o2 {

namespace {

/// The thread-local job scope `@module` filters match against. A plain
/// pointer into the active JobScope's storage: cheap to read on the
/// fault-point fast path and naturally nests.
thread_local const char *CurrentJobScope = nullptr;

struct ArmedFault {
  std::string Point;
  std::string Scope; ///< Empty = any job.
  uint64_t Nth;      ///< 1-based; 0 = every matching hit.
  FaultAction Action;
  uint64_t Hits = 0; ///< Scope-matching hits so far.
};

[[noreturn]] void fireThrow(const char *Point) {
  throw std::runtime_error(std::string("injected fault at '") + Point + "'");
}

void fireHog() {
  // Allocate and *touch* memory until allocation genuinely fails, so an
  // RSS/address-space cap (setrlimit in the isolated worker) turns this
  // into a real std::bad_alloc on the allocation path. Chunks are leaked
  // on purpose; the bounded chunk count keeps an uncapped process from
  // eating the machine before its own bad_alloc arrives.
  constexpr size_t ChunkBytes = 16u << 20; // 16 MiB
  constexpr size_t MaxChunks = 4096;       // 64 GiB ceiling
  std::vector<std::unique_ptr<char[]>> Chunks;
  Chunks.reserve(MaxChunks);
  for (size_t I = 0; I != MaxChunks; ++I) {
    Chunks.emplace_back(new char[ChunkBytes]); // throws bad_alloc when capped
    std::memset(Chunks.back().get(), 0x5a, ChunkBytes);
    Chunks.back().release(); // leak: keep the pressure until the cap fires
  }
  throw std::bad_alloc(); // uncapped safety net: behave like `oom`
}

[[noreturn]] void fireHang() {
  // Deaf to cooperative cancellation by design — this is what the hard
  // SIGTERM→SIGKILL escalation exists for. Bounded so a misconfigured
  // in-process run eventually ends as an internal error.
  for (int I = 0; I != 1200; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  throw std::runtime_error("injected hang expired without a hard kill");
}

void fire(FaultAction A, const char *Point) {
  switch (A) {
  case FaultAction::Throw:
    fireThrow(Point);
  case FaultAction::OOM:
    throw std::bad_alloc();
  case FaultAction::Hog:
    fireHog();
    return;
  case FaultAction::Segv:
    std::raise(SIGSEGV);
    return; // unreachable in practice; keep -Werror happy
  case FaultAction::Kill:
#if O2_FAULT_HAVE_POSIX
    ::kill(::getpid(), SIGKILL);
#else
    std::abort();
#endif
    return;
  case FaultAction::Abort:
    std::abort();
  case FaultAction::Exit:
    std::_Exit(13);
  case FaultAction::Hang:
    fireHang();
  }
}

bool parseAction(const std::string &Name, FaultAction &A) {
  if (Name == "throw")
    A = FaultAction::Throw;
  else if (Name == "oom")
    A = FaultAction::OOM;
  else if (Name == "hog")
    A = FaultAction::Hog;
  else if (Name == "segv")
    A = FaultAction::Segv;
  else if (Name == "kill")
    A = FaultAction::Kill;
  else if (Name == "abort")
    A = FaultAction::Abort;
  else if (Name == "exit")
    A = FaultAction::Exit;
  else if (Name == "hang")
    A = FaultAction::Hang;
  else
    return false;
  return true;
}

bool knownPoint(const std::string &Name) {
  for (const FaultPointInfo &I : FaultInjector::catalogue())
    if (Name == I.Name)
      return true;
  return false;
}

} // namespace

struct FaultInjector::Impl {
  /// Fast-path gate: hit() returns after one relaxed load when clear.
  std::atomic<bool> Armed{false};
  std::mutex Mu;
  std::vector<ArmedFault> Faults;
};

FaultInjector::FaultInjector() : P(new Impl) {
  if (const char *Env = std::getenv("O2_FAULT")) {
    std::string Err;
    if (!armFromSpec(Env, Err)) {
      // A bad O2_FAULT means the test harness is misconfigured; failing
      // loudly beats silently running fault-free.
      std::fprintf(stderr, "o2: bad O2_FAULT spec: %s\n", Err.c_str());
      std::abort();
    }
  }
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector I; // leaked Impl: see header
  return I;
}

const std::vector<FaultPointInfo> &FaultInjector::catalogue() {
  static const std::vector<FaultPointInfo> Points = {
      {"parse", "before the OIR parser runs on a job's source"},
      {"alloc", "the job's analysis-session allocation"},
      {"cache.read", "result-cache lookup IO"},
      {"cache.write", "result-cache store IO"},
      {"pass.pta", "start of the pointer-analysis pass"},
      {"pass.osa", "start of the origin-sharing pass"},
      {"pass.shb", "start of the SHB-graph pass"},
      {"pass.hbindex", "start of the HB-index pass"},
      {"pass.race", "start of the race-detection pass"},
      {"pass.deadlock", "start of the deadlock pass"},
      {"pass.oversync", "start of the over-synchronization pass"},
      {"pass.racerd", "start of the RacerD-like pass"},
      {"pass.escape", "start of the escape-analysis pass"},
  };
  return Points;
}

bool FaultInjector::armFromSpec(const std::string &Spec, std::string &Err) {
  // point[@module]:nth[:action]
  size_t Colon = Spec.find(':');
  if (Colon == std::string::npos || Colon == 0) {
    Err = "expected 'point[@module]:nth[:action]', got '" + Spec + "'";
    return false;
  }
  std::string PointAndScope = Spec.substr(0, Colon);
  std::string Rest = Spec.substr(Colon + 1);

  std::string Point = PointAndScope, Scope;
  if (size_t At = PointAndScope.find('@'); At != std::string::npos) {
    Point = PointAndScope.substr(0, At);
    Scope = PointAndScope.substr(At + 1);
    if (Scope.empty()) {
      Err = "empty @module scope in '" + Spec + "'";
      return false;
    }
  }
  if (!knownPoint(Point)) {
    Err = "unknown fault point '" + Point + "' (see --fault-points)";
    return false;
  }

  std::string NthStr = Rest, ActionStr = "throw";
  if (size_t C2 = Rest.find(':'); C2 != std::string::npos) {
    NthStr = Rest.substr(0, C2);
    ActionStr = Rest.substr(C2 + 1);
  }

  uint64_t Nth = 0;
  if (NthStr == "*") {
    Nth = 0;
  } else {
    if (NthStr.empty() ||
        NthStr.find_first_not_of("0123456789") != std::string::npos ||
        NthStr.size() > 18) {
      Err = "bad hit count '" + NthStr + "' in '" + Spec +
            "' (expected a number or '*')";
      return false;
    }
    Nth = std::strtoull(NthStr.c_str(), nullptr, 10);
    if (Nth == 0) {
      Err = "hit count is 1-based; use '*' to fire on every hit";
      return false;
    }
  }

  FaultAction A;
  if (!parseAction(ActionStr, A)) {
    Err = "unknown fault action '" + ActionStr +
          "' (throw, oom, hog, segv, kill, abort, exit, hang)";
    return false;
  }

  arm(std::move(Point), std::move(Scope), Nth, A);
  return true;
}

void FaultInjector::arm(std::string Point, std::string Scope, uint64_t Nth,
                        FaultAction A) {
  std::lock_guard<std::mutex> L(P->Mu);
  P->Faults.push_back({std::move(Point), std::move(Scope), Nth, A, 0});
  P->Armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> L(P->Mu);
  P->Faults.clear();
  P->Armed.store(false, std::memory_order_release);
}

bool FaultInjector::anyArmed() const {
  return P->Armed.load(std::memory_order_acquire);
}

void FaultInjector::hit(const char *Point) {
  FaultInjector &I = instance();
  if (!I.P->Armed.load(std::memory_order_relaxed))
    return;

  FaultAction Pending{};
  bool Fire = false;
  {
    std::lock_guard<std::mutex> L(I.P->Mu);
    for (ArmedFault &F : I.P->Faults) {
      if (F.Point != Point)
        continue;
      if (!F.Scope.empty() &&
          (!CurrentJobScope || F.Scope != CurrentJobScope))
        continue;
      ++F.Hits;
      if (F.Nth == 0 || F.Hits == F.Nth) {
        Pending = F.Action;
        Fire = true;
        break;
      }
    }
  }
  // Fire outside the lock: throwing through a held lock_guard is fine,
  // but `hog` allocates for a long time and signals must not hold Mu.
  if (Fire)
    fire(Pending, Point);
}

FaultInjector::JobScope::JobScope(const std::string &JobName)
    : Prev(CurrentJobScope), Name(JobName) {
  CurrentJobScope = Name.c_str();
}

FaultInjector::JobScope::~JobScope() { CurrentJobScope = Prev; }

} // namespace o2
