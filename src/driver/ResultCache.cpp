//===- ResultCache.cpp - Persistent batch result cache -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/ResultCache.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string_view>

using namespace o2;

namespace {

uint64_t fnv1a(std::string_view S, uint64_t H = 1469598103934665603ull) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string toHex16(uint64_t V) {
  static const char *Hex = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    Out[size_t(I)] = Hex[V & 0xf];
  return Out;
}

//===----------------------------------------------------------------------===//
// Serialization: netstring-style length-prefixed fields. Every field —
// strings, numbers, list lengths — is "<decimal length>:<bytes>," so the
// reader never scans for separators inside values, and any truncation or
// corruption fails a read instead of misparsing.
//===----------------------------------------------------------------------===//

class FieldWriter {
public:
  void put(std::string_view S) {
    Out += std::to_string(S.size());
    Out += ':';
    Out += S;
    Out += ',';
  }
  void putU64(uint64_t V) { put(std::to_string(V)); }
  void putDouble(double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    put(Buf);
  }
  const std::string &str() const { return Out; }

private:
  std::string Out;
};

class FieldReader {
public:
  explicit FieldReader(std::string_view Data) : Data(Data) {}

  bool get(std::string &Out) {
    size_t Colon = Data.find(':', Pos);
    if (Colon == std::string_view::npos || Colon == Pos ||
        Colon - Pos > 19)
      return fail();
    uint64_t Len = 0;
    for (size_t I = Pos; I < Colon; ++I) {
      if (Data[I] < '0' || Data[I] > '9')
        return fail();
      Len = Len * 10 + uint64_t(Data[I] - '0');
    }
    size_t Start = Colon + 1;
    // Overflow-safe: Len may be a corrupt 19-digit value.
    if (Start >= Data.size() || Len >= Data.size() - Start ||
        Data[Start + Len] != ',')
      return fail();
    Out.assign(Data.data() + Start, Len);
    Pos = Start + Len + 1;
    return true;
  }

  bool getU64(uint64_t &V) {
    std::string S;
    if (!get(S) || S.empty())
      return fail();
    char *End = nullptr;
    V = std::strtoull(S.c_str(), &End, 10);
    return *End == '\0' || fail();
  }

  bool getDouble(double &V) {
    std::string S;
    if (!get(S) || S.empty())
      return fail();
    char *End = nullptr;
    V = std::strtod(S.c_str(), &End);
    return *End == '\0' || fail();
  }

  bool ok() const { return Ok; }
  bool atEnd() const { return Pos == Data.size(); }

private:
  bool fail() {
    Ok = false;
    return false;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Ok = true;
};

/// A sane upper bound on serialized list lengths: a deliberately corrupt
/// length field must not turn into a multi-gigabyte allocation.
constexpr uint64_t MaxListLen = 1u << 24;

void serializeJob(const JobResult &R, FieldWriter &W) {
  W.put(jobStatusName(R.Status));
  W.put(R.Phase);
  W.put(R.Error);
  W.putDouble(R.PTAMs);
  W.putDouble(R.OSAMs);
  W.putDouble(R.SHBMs);
  W.putDouble(R.HBIndexMs);
  W.putDouble(R.DetectMs);
  W.putDouble(R.DeadlockMs);
  W.putDouble(R.OverSyncMs);
  W.putDouble(R.RacerDMs);
  W.putDouble(R.EscapeMs);

  const auto &Counters = R.Stats.counters();
  W.putU64(Counters.size());
  for (const auto &[Name, Value] : Counters) {
    W.put(Name);
    W.putU64(Value);
  }

  W.putU64(R.Races.size());
  for (const RaceRecord &Rc : R.Races) {
    W.put(Rc.Fingerprint);
    W.put(Rc.Location);
    W.put(Rc.StmtA);
    W.put(Rc.FuncA);
    W.putU64(Rc.WriteA);
    W.put(Rc.StmtB);
    W.put(Rc.FuncB);
    W.putU64(Rc.WriteB);
  }

  W.putU64(R.Deadlocks.size());
  for (const DeadlockRecord &D : R.Deadlocks) {
    W.put(D.Locks);
    W.putU64(D.Witnesses.size());
    for (const std::string &Wit : D.Witnesses)
      W.put(Wit);
  }

  W.putU64(R.OverSyncs.size());
  for (const OverSyncRecord &O : R.OverSyncs) {
    W.put(O.Stmt);
    W.put(O.Function);
    W.putU64(O.Thread);
    W.putU64(O.NumAccesses);
  }

  W.putU64(R.RacerDWarnings.size());
  for (const RacerDRecord &Rw : R.RacerDWarnings) {
    W.put(Rw.Kind);
    W.put(Rw.Location);
    W.put(Rw.First);
    W.put(Rw.Second);
  }
}

bool deserializeJob(FieldReader &Rd, JobResult &R) {
  std::string Status;
  if (!Rd.get(Status))
    return false;
  bool Known = false;
  for (JobStatus S : {JobStatus::Clean, JobStatus::Races})
    if (Status == jobStatusName(S)) {
      R.Status = S;
      Known = true;
    }
  if (!Known) // only terminal success states are ever stored
    return false;

  if (!Rd.get(R.Phase) || !Rd.get(R.Error))
    return false;
  if (!Rd.getDouble(R.PTAMs) || !Rd.getDouble(R.OSAMs) ||
      !Rd.getDouble(R.SHBMs) || !Rd.getDouble(R.HBIndexMs) ||
      !Rd.getDouble(R.DetectMs) || !Rd.getDouble(R.DeadlockMs) ||
      !Rd.getDouble(R.OverSyncMs) || !Rd.getDouble(R.RacerDMs) ||
      !Rd.getDouble(R.EscapeMs))
    return false;

  uint64_t N = 0;
  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    std::string Name;
    uint64_t Value = 0;
    if (!Rd.get(Name) || !Rd.getU64(Value))
      return false;
    R.Stats.set(Name, Value);
  }

  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  R.Races.resize(N);
  for (RaceRecord &Rc : R.Races) {
    uint64_t WA = 0, WB = 0;
    if (!Rd.get(Rc.Fingerprint) || !Rd.get(Rc.Location) ||
        !Rd.get(Rc.StmtA) || !Rd.get(Rc.FuncA) || !Rd.getU64(WA) ||
        !Rd.get(Rc.StmtB) || !Rd.get(Rc.FuncB) || !Rd.getU64(WB))
      return false;
    Rc.WriteA = WA != 0;
    Rc.WriteB = WB != 0;
  }

  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  R.Deadlocks.resize(N);
  for (DeadlockRecord &D : R.Deadlocks) {
    uint64_t NumWit = 0;
    if (!Rd.get(D.Locks) || !Rd.getU64(NumWit) || NumWit > MaxListLen)
      return false;
    D.Witnesses.resize(NumWit);
    for (std::string &Wit : D.Witnesses)
      if (!Rd.get(Wit))
        return false;
  }

  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  R.OverSyncs.resize(N);
  for (OverSyncRecord &O : R.OverSyncs) {
    uint64_t Thread = 0, Accesses = 0;
    if (!Rd.get(O.Stmt) || !Rd.get(O.Function) || !Rd.getU64(Thread) ||
        !Rd.getU64(Accesses))
      return false;
    O.Thread = unsigned(Thread);
    O.NumAccesses = unsigned(Accesses);
  }

  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  R.RacerDWarnings.resize(N);
  for (RacerDRecord &Rw : R.RacerDWarnings)
    if (!Rd.get(Rw.Kind) || !Rd.get(Rw.Location) || !Rd.get(Rw.First) ||
        !Rd.get(Rw.Second))
      return false;

  return Rd.ok() && Rd.atEnd();
}

std::string readFile(const std::string &Path, bool &Ok) {
  Ok = false;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return {};
  std::string Content;
  char Buf[64 * 1024];
  for (size_t N; (N = std::fread(Buf, 1, sizeof(Buf), F)) > 0;)
    Content.append(Buf, N);
  Ok = !std::ferror(F);
  std::fclose(F);
  return Content;
}

} // namespace

uint64_t ResultCache::contentHash(const std::string &ModuleText) {
  return fnv1a(ModuleText);
}

std::string ResultCache::entryPath(uint64_t ContentHash,
                                   uint64_t ConfigFP) const {
  return Dir + "/" + toHex16(ContentHash) + "-" + toHex16(ConfigFP) + ".o2c";
}

bool ResultCache::lookup(uint64_t ContentHash, uint64_t ConfigFP,
                         JobResult &Out) const {
  if (!enabled())
    return false;
  bool Ok = false;
  std::string Content = readFile(entryPath(ContentHash, ConfigFP), Ok);
  if (!Ok)
    return false;

  // Header line: "o2cache <format version> <payload checksum>".
  size_t NL = Content.find('\n');
  if (NL == std::string::npos)
    return false;
  std::string_view Header(Content.data(), NL);
  std::string Expected =
      "o2cache " + std::to_string(FormatVersion) + " ";
  if (Header.size() != Expected.size() + 16 ||
      Header.substr(0, Expected.size()) != Expected)
    return false;
  std::string_view Payload(Content.data() + NL + 1,
                           Content.size() - NL - 1);
  if (Header.substr(Expected.size()) != toHex16(fnv1a(Payload)))
    return false;

  JobResult R;
  FieldReader Rd(Payload);
  if (!deserializeJob(Rd, R))
    return false;
  Out = std::move(R);
  return true;
}

void ResultCache::store(uint64_t ContentHash, uint64_t ConfigFP,
                        const JobResult &R) const {
  if (!enabled())
    return;
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);

  FieldWriter W;
  serializeJob(R, W);
  std::string Content = "o2cache " + std::to_string(FormatVersion) + " " +
                        toHex16(fnv1a(W.str())) + "\n" + W.str();

  // Atomic publish: never expose a half-written entry, even to a
  // concurrent fleet sharing the directory.
  std::string Final = entryPath(ContentHash, ConfigFP);
  std::string Tmp =
      Final + ".tmp" + toHex16(fnv1a(std::to_string(uintptr_t(&W))));
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return;
  bool Ok = std::fwrite(Content.data(), 1, Content.size(), F) ==
            Content.size();
  Ok &= std::fclose(F) == 0;
  if (Ok)
    std::rename(Tmp.c_str(), Final.c_str());
  else
    std::remove(Tmp.c_str());
}
