//===- ResultCache.cpp - Persistent batch result cache -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/ResultCache.h"

#include "JobWire.h"
#include "o2/Support/FaultInjector.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string_view>

using namespace o2;

namespace {

uint64_t fnv1a(std::string_view S, uint64_t H = 1469598103934665603ull) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string toHex16(uint64_t V) {
  static const char *Hex = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    Out[size_t(I)] = Hex[V & 0xf];
  return Out;
}

std::string readFile(const std::string &Path, bool &Ok) {
  Ok = false;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return {};
  std::string Content;
  char Buf[64 * 1024];
  for (size_t N; (N = std::fread(Buf, 1, sizeof(Buf), F)) > 0;)
    Content.append(Buf, N);
  Ok = !std::ferror(F);
  std::fclose(F);
  return Content;
}

} // namespace

uint64_t ResultCache::contentHash(const std::string &ModuleText) {
  return fnv1a(ModuleText);
}

std::string ResultCache::entryPath(uint64_t ContentHash,
                                   uint64_t ConfigFP) const {
  return Dir + "/" + toHex16(ContentHash) + "-" + toHex16(ConfigFP) + ".o2c";
}

bool ResultCache::lookup(uint64_t ContentHash, uint64_t ConfigFP,
                         JobResult &Out) const {
  if (!enabled())
    return false;
  // Any failure below — IO, damage, or an injected cache.read fault —
  // degrades to a miss: the cache must never turn into a job error.
  try {
    FaultInjector::hit("cache.read");
    bool Ok = false;
    std::string Content = readFile(entryPath(ContentHash, ConfigFP), Ok);
    if (!Ok)
      return false;

    // Header line: "o2cache <format version> <payload checksum>".
    size_t NL = Content.find('\n');
    if (NL == std::string::npos)
      return false;
    std::string_view Header(Content.data(), NL);
    std::string Expected =
        "o2cache " + std::to_string(FormatVersion) + " ";
    if (Header.size() != Expected.size() + 16 ||
        Header.substr(0, Expected.size()) != Expected)
      return false;
    std::string_view Payload(Content.data() + NL + 1,
                             Content.size() - NL - 1);
    if (Header.substr(Expected.size()) != toHex16(fnv1a(Payload)))
      return false;

    JobResult R;
    if (!wire::deserializeJobResult(Payload, R))
      return false;
    // The wire format carries every status (the worker pipe needs that);
    // the cache's contract is narrower. A foreign or hand-edited entry
    // holding a non-terminal or degraded result is damage: miss.
    if ((R.Status != JobStatus::Clean && R.Status != JobStatus::Races) ||
        R.Degraded)
      return false;
    Out = std::move(R);
    return true;
  } catch (...) {
    return false;
  }
}

void ResultCache::store(uint64_t ContentHash, uint64_t ConfigFP,
                        const JobResult &R) const {
  if (!enabled())
    return;
  // Never cache anything that must re-run: timeouts and errors (the
  // pre-existing rule), crash records, and degraded-fallback results —
  // a degraded answer is sound but cheaper than the requested config,
  // and replaying it would silently pin the degradation forever.
  if ((R.Status != JobStatus::Clean && R.Status != JobStatus::Races) ||
      R.Degraded)
    return;
  // The cache is an optimization: IO failures and injected cache.write
  // faults are swallowed, the job's result is already in hand.
  try {
    FaultInjector::hit("cache.write");
    std::error_code EC;
    std::filesystem::create_directories(Dir, EC);

    std::string Payload = wire::serializeJobResult(R);
    std::string Content = "o2cache " + std::to_string(FormatVersion) + " " +
                          toHex16(fnv1a(Payload)) + "\n" + Payload;

    // Atomic publish: never expose a half-written entry, even to a
    // concurrent fleet sharing the directory.
    std::string Final = entryPath(ContentHash, ConfigFP);
    std::string Tmp =
        Final + ".tmp" + toHex16(fnv1a(std::to_string(uintptr_t(&Payload))));
    std::FILE *F = std::fopen(Tmp.c_str(), "wb");
    if (!F)
      return;
    bool Ok = std::fwrite(Content.data(), 1, Content.size(), F) ==
              Content.size();
    Ok &= std::fclose(F) == 0;
    if (Ok)
      std::rename(Tmp.c_str(), Final.c_str());
    else
      std::remove(Tmp.c_str());
  } catch (...) {
  }
}
