//===- JobWire.cpp - JobResult wire serialization -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "JobWire.h"

#include <cstdio>
#include <cstdlib>

using namespace o2;

namespace {

class FieldWriter {
public:
  void put(std::string_view S) {
    Out += std::to_string(S.size());
    Out += ':';
    Out += S;
    Out += ',';
  }
  void putU64(uint64_t V) { put(std::to_string(V)); }
  void putDouble(double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    put(Buf);
  }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

class FieldReader {
public:
  explicit FieldReader(std::string_view Data) : Data(Data) {}

  bool get(std::string &Out) {
    size_t Colon = Data.find(':', Pos);
    if (Colon == std::string_view::npos || Colon == Pos ||
        Colon - Pos > 19)
      return fail();
    uint64_t Len = 0;
    for (size_t I = Pos; I < Colon; ++I) {
      if (Data[I] < '0' || Data[I] > '9')
        return fail();
      Len = Len * 10 + uint64_t(Data[I] - '0');
    }
    size_t Start = Colon + 1;
    // Overflow-safe: Len may be a corrupt 19-digit value.
    if (Start >= Data.size() || Len >= Data.size() - Start ||
        Data[Start + Len] != ',')
      return fail();
    Out.assign(Data.data() + Start, Len);
    Pos = Start + Len + 1;
    return true;
  }

  bool getU64(uint64_t &V) {
    std::string S;
    if (!get(S) || S.empty())
      return fail();
    char *End = nullptr;
    V = std::strtoull(S.c_str(), &End, 10);
    return *End == '\0' || fail();
  }

  bool getDouble(double &V) {
    std::string S;
    if (!get(S) || S.empty())
      return fail();
    char *End = nullptr;
    V = std::strtod(S.c_str(), &End);
    return *End == '\0' || fail();
  }

  bool ok() const { return Ok; }
  bool atEnd() const { return Pos == Data.size(); }

private:
  bool fail() {
    Ok = false;
    return false;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Ok = true;
};

/// A sane upper bound on serialized list lengths: a deliberately corrupt
/// length field must not turn into a multi-gigabyte allocation.
constexpr uint64_t MaxListLen = 1u << 24;

const JobStatus AllStatuses[] = {
    JobStatus::Clean,       JobStatus::Races,         JobStatus::Timeout,
    JobStatus::ParseError,  JobStatus::VerifyError,   JobStatus::InternalError,
    JobStatus::Crashed,     JobStatus::OOM,
};

} // namespace

std::string wire::serializeJobResult(const JobResult &R) {
  FieldWriter W;
  W.put(jobStatusName(R.Status));
  W.put(R.Phase);
  W.put(R.Error);
  W.put(R.Signal);
  W.putU64(R.Degraded ? 1 : 0);
  W.putU64(R.DegradedConfigFP);
  W.putU64(R.Retries);
  W.putU64(uint64_t(R.Cache));
  W.putDouble(R.PTAMs);
  W.putDouble(R.OSAMs);
  W.putDouble(R.SHBMs);
  W.putDouble(R.HBIndexMs);
  W.putDouble(R.DetectMs);
  W.putDouble(R.DeadlockMs);
  W.putDouble(R.OverSyncMs);
  W.putDouble(R.RacerDMs);
  W.putDouble(R.EscapeMs);

  const auto &Counters = R.Stats.counters();
  W.putU64(Counters.size());
  for (const auto &[Name, Value] : Counters) {
    W.put(Name);
    W.putU64(Value);
  }

  W.putU64(R.Races.size());
  for (const RaceRecord &Rc : R.Races) {
    W.put(Rc.Fingerprint);
    W.put(Rc.Location);
    W.put(Rc.StmtA);
    W.put(Rc.FuncA);
    W.putU64(Rc.WriteA);
    W.put(Rc.StmtB);
    W.put(Rc.FuncB);
    W.putU64(Rc.WriteB);
  }

  W.putU64(R.Deadlocks.size());
  for (const DeadlockRecord &D : R.Deadlocks) {
    W.put(D.Locks);
    W.putU64(D.Witnesses.size());
    for (const std::string &Wit : D.Witnesses)
      W.put(Wit);
  }

  W.putU64(R.OverSyncs.size());
  for (const OverSyncRecord &O : R.OverSyncs) {
    W.put(O.Stmt);
    W.put(O.Function);
    W.putU64(O.Thread);
    W.putU64(O.NumAccesses);
  }

  W.putU64(R.RacerDWarnings.size());
  for (const RacerDRecord &Rw : R.RacerDWarnings) {
    W.put(Rw.Kind);
    W.put(Rw.Location);
    W.put(Rw.First);
    W.put(Rw.Second);
  }
  return W.take();
}

bool wire::deserializeJobResult(std::string_view Payload, JobResult &R) {
  FieldReader Rd(Payload);

  std::string Status;
  if (!Rd.get(Status))
    return false;
  bool Known = false;
  for (JobStatus S : AllStatuses)
    if (Status == jobStatusName(S)) {
      R.Status = S;
      Known = true;
    }
  if (!Known)
    return false;

  uint64_t Degraded = 0, DegradedFP = 0, Retries = 0, Cache = 0;
  if (!Rd.get(R.Phase) || !Rd.get(R.Error) || !Rd.get(R.Signal) ||
      !Rd.getU64(Degraded) || !Rd.getU64(DegradedFP) ||
      !Rd.getU64(Retries) || !Rd.getU64(Cache) || Cache > 2)
    return false;
  R.Degraded = Degraded != 0;
  R.DegradedConfigFP = DegradedFP;
  R.Retries = unsigned(Retries);
  R.Cache = JobResult::CacheOutcome(Cache);

  if (!Rd.getDouble(R.PTAMs) || !Rd.getDouble(R.OSAMs) ||
      !Rd.getDouble(R.SHBMs) || !Rd.getDouble(R.HBIndexMs) ||
      !Rd.getDouble(R.DetectMs) || !Rd.getDouble(R.DeadlockMs) ||
      !Rd.getDouble(R.OverSyncMs) || !Rd.getDouble(R.RacerDMs) ||
      !Rd.getDouble(R.EscapeMs))
    return false;

  uint64_t N = 0;
  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    std::string Name;
    uint64_t Value = 0;
    if (!Rd.get(Name) || !Rd.getU64(Value))
      return false;
    R.Stats.set(Name, Value);
  }

  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  R.Races.resize(N);
  for (RaceRecord &Rc : R.Races) {
    uint64_t WA = 0, WB = 0;
    if (!Rd.get(Rc.Fingerprint) || !Rd.get(Rc.Location) ||
        !Rd.get(Rc.StmtA) || !Rd.get(Rc.FuncA) || !Rd.getU64(WA) ||
        !Rd.get(Rc.StmtB) || !Rd.get(Rc.FuncB) || !Rd.getU64(WB))
      return false;
    Rc.WriteA = WA != 0;
    Rc.WriteB = WB != 0;
  }

  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  R.Deadlocks.resize(N);
  for (DeadlockRecord &D : R.Deadlocks) {
    uint64_t NumWit = 0;
    if (!Rd.get(D.Locks) || !Rd.getU64(NumWit) || NumWit > MaxListLen)
      return false;
    D.Witnesses.resize(NumWit);
    for (std::string &Wit : D.Witnesses)
      if (!Rd.get(Wit))
        return false;
  }

  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  R.OverSyncs.resize(N);
  for (OverSyncRecord &O : R.OverSyncs) {
    uint64_t Thread = 0, Accesses = 0;
    if (!Rd.get(O.Stmt) || !Rd.get(O.Function) || !Rd.getU64(Thread) ||
        !Rd.getU64(Accesses))
      return false;
    O.Thread = unsigned(Thread);
    O.NumAccesses = unsigned(Accesses);
  }

  if (!Rd.getU64(N) || N > MaxListLen)
    return false;
  R.RacerDWarnings.resize(N);
  for (RacerDRecord &Rw : R.RacerDWarnings)
    if (!Rd.get(Rw.Kind) || !Rd.get(Rw.Location) || !Rd.get(Rw.First) ||
        !Rd.get(Rw.Second))
      return false;

  return Rd.ok() && Rd.atEnd();
}
