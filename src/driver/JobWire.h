//===- JobWire.h - JobResult wire serialization ------------------*- C++ -*-===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One serialized form of JobResult, shared by its two consumers: the
/// persistent warm cache (ResultCache) and the process-isolation result
/// pipe (Isolation.cpp). Netstring-style length-prefixed fields — every
/// field is `<decimal length>:<bytes>,` — so the reader never scans for
/// separators inside values and truncation or corruption fails a read
/// instead of misparsing.
///
/// Unlike the old cache-private serializer this carries *every* status
/// (a worker must be able to report a timeout or an OOM over the pipe)
/// plus the containment fields (signal, degraded, retries). Policy about
/// which statuses are acceptable lives in the consumers: the cache
/// refuses to store or replay anything but Clean/Races.
///
/// Internal to o2Driver — not installed under include/.
///
//===----------------------------------------------------------------------===//

#ifndef O2_DRIVER_JOBWIRE_H
#define O2_DRIVER_JOBWIRE_H

#include "o2/Driver/Driver.h"

#include <string>
#include <string_view>

namespace o2 {
namespace wire {

/// Serializes everything except Name, Analyses, and FixedRaces — those
/// are request-side and overlaid by the consumer. The cache outcome IS
/// carried (the worker pipe needs it for the fleet's hit/miss tallies);
/// ResultCache::lookup overwrites it with Hit on replay.
std::string serializeJobResult(const JobResult &R);

/// Strict inverse: false on any structural damage, unknown status name,
/// trailing bytes, or an oversized list length. \p Out is unspecified on
/// failure.
bool deserializeJobResult(std::string_view Payload, JobResult &Out);

} // namespace wire
} // namespace o2

#endif // O2_DRIVER_JOBWIRE_H
