//===- Isolation.cpp - Per-job sandboxed worker processes -----------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// `--isolate=process`: each batch job runs in a forked worker so that a
// crash — a signal, a tripped assertion, an address-space-cap OOM, a
// worker that stops responding — becomes one structured `crashed` /
// `oom` / `timeout` record instead of taking down the fleet.
//
// Protocol (worker -> parent, over one pipe):
//
//   p:<stage>\n     progress marker: the job entered <stage> ("setup",
//                   "parse", "verify", then each pass name). The last
//                   marker received is the crash record's `phase`.
//   r:<payload>     the final JobResult in the shared wire format
//                   (JobWire.h); <payload> runs to EOF and may contain
//                   any bytes, so `r:` is only recognized at the start
//                   of a line.
//
// The parent enforces the hard wall-clock kill (SIGTERM at the limit,
// SIGKILL a grace period later) and classifies the worker's exit:
// a parsed result wins; death by our own kill is a `timeout`; any other
// signal is `crashed` with the signal's name; a silent exit is
// `crashed` with a protocol diagnostic.
//
// fork() without exec: the child reuses the parent's loaded image and
// already-parsed options, which keeps isolation usable from library
// callers and tests (no argv re-marshalling, no dependence on the
// executable's path). The child only runs this module's code plus the
// job pipeline and never touches the parent's thread pool (its worker
// threads do not exist after fork), then leaves via _Exit — no atexit
// handlers, no static destructors.
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/Driver.h"

#include "JobWire.h"

#if defined(__unix__) || defined(__APPLE__)
#define O2_HAVE_FORK 1
#endif

#if O2_HAVE_FORK

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <string>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace o2;

namespace {

const char *signalName(int Sig) {
  switch (Sig) {
  case SIGSEGV:
    return "SIGSEGV";
  case SIGABRT:
    return "SIGABRT";
  case SIGBUS:
    return "SIGBUS";
  case SIGILL:
    return "SIGILL";
  case SIGFPE:
    return "SIGFPE";
  case SIGKILL:
    return "SIGKILL";
  case SIGTERM:
    return "SIGTERM";
  case SIGINT:
    return "SIGINT";
  default:
    return nullptr;
  }
}

std::string signalNameStr(int Sig) {
  if (const char *N = signalName(Sig))
    return N;
  return "signal " + std::to_string(Sig);
}

bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += size_t(N);
    Len -= size_t(N);
  }
  return true;
}

/// The worker body. Runs in the child; never returns.
[[noreturn]] void runWorker(const JobSpec &Spec, const BatchOptions &Opts,
                            int WriteFd) {
  // The parent dying must not SIGPIPE us out of writing the result.
  std::signal(SIGPIPE, SIG_IGN);

  if (Opts.MemLimitMB) {
    // RLIMIT_AS, not RLIMIT_RSS: Linux does not enforce the latter. An
    // allocation beyond the cap fails -> operator new throws bad_alloc
    // -> runOneJob's handler turns it into a clean `oom` result.
    struct rlimit RL;
    RL.rlim_cur = RL.rlim_max = rlim_t(Opts.MemLimitMB) * 1024 * 1024;
    ::setrlimit(RLIMIT_AS, &RL);
  }

  BatchOptions WorkerOpts = Opts;
  // The parent's pool threads do not exist in this process; the race
  // engine falls back to its own scheduling.
  WorkerOpts.Config.Detector.Pool = nullptr;
  auto ParentHook = Opts.StageHook;
  WorkerOpts.StageHook = [WriteFd, &ParentHook](const std::string &S) {
    std::string Msg = "p:" + S + "\n";
    writeAll(WriteFd, Msg.data(), Msg.size());
    if (ParentHook)
      ParentHook(S);
  };

  int Exit = 0;
  try {
    JobResult R = runOneJob(Spec, WorkerOpts, nullptr);
    std::string Msg = "r:" + wire::serializeJobResult(R);
    if (!writeAll(WriteFd, Msg.data(), Msg.size()))
      Exit = 3;
  } catch (...) {
    // runOneJob contains its own failures; reaching here means even
    // reporting failed (e.g. serialization under extreme memory
    // pressure). Exit nonzero so the parent reports a crash.
    Exit = 3;
  }
  ::close(WriteFd);
  std::_Exit(Exit);
}

} // namespace

JobResult o2::runOneJobIsolated(const JobSpec &Spec,
                                const BatchOptions &Opts) {
  int Fds[2];
  if (::pipe(Fds) != 0)
    return runOneJob(Spec, Opts, nullptr);

  ::pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    return runOneJob(Spec, Opts, nullptr);
  }
  if (Pid == 0) {
    ::close(Fds[0]);
    runWorker(Spec, Opts, Fds[1]); // noreturn
  }

  ::close(Fds[1]);
  ::fcntl(Fds[0], F_SETFL, O_NONBLOCK);

  // Hard-kill budget: explicit --kill-after-ms, else derived from the
  // cooperative deadline (it only needs to catch workers that stopped
  // polling), else none.
  uint64_t HardMs = Opts.HardKillMs;
  if (!HardMs && Opts.DeadlineMs)
    HardMs = 2 * Opts.DeadlineMs + 10000;
  constexpr uint64_t KillGraceMs = 2000;

  std::string Buf;       // unconsumed protocol bytes
  std::string LastStage; // most recent p: marker
  std::string Payload;   // bytes after r:
  bool InResult = false;
  bool SentTerm = false, SentKill = false;

  auto Consume = [&] {
    while (!InResult && !Buf.empty()) {
      if (Buf.size() >= 2 && Buf[0] == 'r' && Buf[1] == ':') {
        InResult = true;
        Payload.append(Buf, 2, std::string::npos);
        Buf.clear();
        return;
      }
      size_t NL = Buf.find('\n');
      if (NL == std::string::npos) {
        // A partial marker (or a lone 'r') — wait for more bytes.
        return;
      }
      if (NL > 2 && Buf[0] == 'p' && Buf[1] == ':')
        LastStage.assign(Buf, 2, NL - 2);
      Buf.erase(0, NL + 1);
    }
    if (InResult && !Buf.empty()) {
      Payload += Buf;
      Buf.clear();
    }
  };

  auto Start = std::chrono::steady_clock::now();
  auto ElapsedMs = [&Start] {
    return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - Start)
                        .count());
  };

  char Chunk[64 * 1024];
  for (bool Eof = false; !Eof;) {
    struct pollfd PFd = {Fds[0], POLLIN, 0};
    ::poll(&PFd, 1, 20);
    for (;;) {
      ssize_t N = ::read(Fds[0], Chunk, sizeof(Chunk));
      if (N > 0) {
        Buf.append(Chunk, size_t(N));
        if (InResult) {
          Payload += Buf;
          Buf.clear();
        }
        continue;
      }
      if (N == 0)
        Eof = true; // worker closed its end (exit or death)
      else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
        Eof = true;
      break;
    }
    Consume();

    if (HardMs && !SentKill) {
      uint64_t El = ElapsedMs();
      if (!SentTerm && El >= HardMs) {
        ::kill(Pid, SIGTERM);
        SentTerm = true;
      } else if (SentTerm && El >= HardMs + KillGraceMs) {
        ::kill(Pid, SIGKILL);
        SentKill = true;
      }
    }
  }
  Consume();
  ::close(Fds[0]);

  int WStatus = 0;
  while (::waitpid(Pid, &WStatus, 0) < 0 && errno == EINTR) {
  }

  // A complete result wins, however the worker died afterwards.
  if (!Payload.empty()) {
    JobResult R;
    if (wire::deserializeJobResult(Payload, R)) {
      R.Name = Spec.Name;
      R.Analyses = Opts.Analyses;
      return R;
    }
  }

  JobResult R;
  R.Name = Spec.Name;
  R.Analyses = Opts.Analyses;
  R.Phase = LastStage;
  if (SentTerm || SentKill) {
    // Killed by our own escalation: semantically a deadline overrun on
    // a worker that stopped polling the cooperative token.
    R.Status = JobStatus::Timeout;
    R.Error = "hard deadline: worker killed after " +
              std::to_string(HardMs) + " ms";
  } else if (WIFSIGNALED(WStatus)) {
    R.Status = JobStatus::Crashed;
    R.Signal = signalNameStr(WTERMSIG(WStatus));
    R.Error = "worker killed by " + R.Signal;
  } else if (WIFEXITED(WStatus) && WEXITSTATUS(WStatus) != 0) {
    R.Status = JobStatus::Crashed;
    R.Error = "worker exited with code " +
              std::to_string(WEXITSTATUS(WStatus)) +
              " before reporting a result";
  } else {
    R.Status = JobStatus::Crashed;
    R.Error = "worker protocol error: no result before EOF";
  }
  return R;
}

#else // !O2_HAVE_FORK

using namespace o2;

JobResult o2::runOneJobIsolated(const JobSpec &Spec,
                                const BatchOptions &Opts) {
  // No fork on this platform: degrade to in-process execution. The
  // containment policy (retries, degradation) still applies.
  return runOneJob(Spec, Opts, nullptr);
}

#endif // O2_HAVE_FORK
