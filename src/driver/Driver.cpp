//===- Driver.cpp - Parallel batch-analysis driver ----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Driver/Driver.h"

#include "o2/Driver/ResultCache.h"
#include "o2/IR/Parser.h"
#include "o2/IR/Printer.h"
#include "o2/IR/Verifier.h"
#include "o2/Support/Casting.h"
#include "o2/Support/FaultInjector.h"
#include "o2/Support/JSONWriter.h"
#include "o2/Support/OutputStream.h"
#include "o2/Support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string_view>
#include <thread>

using namespace o2;

const char *o2::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Clean:
    return "clean";
  case JobStatus::Races:
    return "races";
  case JobStatus::Timeout:
    return "timeout";
  case JobStatus::ParseError:
    return "parse-error";
  case JobStatus::VerifyError:
    return "verify-error";
  case JobStatus::InternalError:
    return "internal-error";
  case JobStatus::Crashed:
    return "crashed";
  case JobStatus::OOM:
    return "oom";
  }
  return "unknown";
}

int o2::exitCodeFor(JobStatus S) {
  switch (S) {
  case JobStatus::Clean:
    return ExitClean;
  case JobStatus::Races:
    return ExitRacesFound;
  case JobStatus::Timeout:
  case JobStatus::ParseError:
  case JobStatus::VerifyError:
  case JobStatus::InternalError:
  case JobStatus::Crashed:
  case JobStatus::OOM:
    return ExitError;
  }
  return ExitError;
}

int BatchResult::exitCode() const {
  int Code = ExitClean;
  for (const JobResult &J : Jobs)
    Code = std::max(Code, exitCodeFor(J.Status));
  return Code;
}

//===----------------------------------------------------------------------===//
// Race fingerprints
//===----------------------------------------------------------------------===//

static uint64_t fnv1a(std::string_view S, uint64_t H) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

static std::string toHex16(uint64_t V) {
  static const char *Hex = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    Out[size_t(I)] = Hex[V & 0xf];
  return Out;
}

/// Symbolic description of \p Loc that survives reordering of unrelated
/// statements: no abstract-object numbers or statement IDs, only names
/// and statement text (class, field, allocating function, allocation
/// statement, loop-duplication index).
static std::string stableLocation(const MemLoc &Loc, const PTAResult &PTA) {
  if (Loc.isGlobal())
    return "@" + PTA.module().globals()[Loc.globalId()]->getName();
  const ObjInfo &O = PTA.object(Loc.object());
  std::string Out = O.AllocatedType ? O.AllocatedType->getName() : "obj";
  if (O.Alloc) {
    Out += "@" + O.Alloc->getFunction()->getName();
    Out += ":" + printStmt(*O.Alloc);
  }
  if (O.DupIndex)
    Out += "#" + std::to_string(O.DupIndex);
  FieldKey FK = Loc.fieldKey();
  if (FK == ArrayElemKey)
    return Out + "[*]";
  if (const auto *Cls =
          O.AllocatedType ? dyn_cast<ClassType>(O.AllocatedType) : nullptr)
    for (const ClassType *C = Cls; C; C = C->getSuper())
      for (const auto &F : C->fields())
        if (fieldKeyOf(F.get()) == FK)
          return Out + "." + F->getName();
  return Out + ".f" + std::to_string(FK - 1);
}

static RaceRecord makeRaceRecord(const Race &Rc, const PTAResult &PTA) {
  RaceRecord R;
  R.Location = stableLocation(Rc.Loc, PTA);
  R.StmtA = printStmt(*Rc.A);
  R.FuncA = Rc.A->getFunction()->getName();
  R.WriteA = Rc.AIsWrite;
  R.StmtB = printStmt(*Rc.B);
  R.FuncB = Rc.B->getFunction()->getName();
  R.WriteB = Rc.BIsWrite;

  // The fingerprint hashes the symbolic location plus the two access
  // descriptors in lexicographic order, so it is invariant under the
  // statement-ID renumbering that reordering unrelated code causes and
  // under which access the detector happened to list first.
  std::string DescA =
      R.StmtA + "|" + R.FuncA + "|" + (R.WriteA ? "W" : "R");
  std::string DescB =
      R.StmtB + "|" + R.FuncB + "|" + (R.WriteB ? "W" : "R");
  if (DescB < DescA)
    std::swap(DescA, DescB);
  uint64_t H = fnv1a(R.Location, 1469598103934665603ull);
  H = fnv1a("\x1f", H);
  H = fnv1a(DescA, H);
  H = fnv1a("\x1f", H);
  H = fnv1a(DescB, H);
  R.Fingerprint = toHex16(H);
  return R;
}

//===----------------------------------------------------------------------===//
// Job execution
//===----------------------------------------------------------------------===//

static std::string readFileContent(const std::string &Path, bool &Ok) {
  Ok = false;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return {};
  std::string Content;
  char Buf[64 * 1024];
  for (size_t N; (N = std::fread(Buf, 1, sizeof(Buf), F)) > 0;)
    Content.append(Buf, N);
  Ok = !std::ferror(F);
  std::fclose(F);
  return Content;
}

JobResult o2::runOneJob(const JobSpec &Spec, const BatchOptions &Opts) {
  return runOneJob(Spec, Opts, nullptr);
}

JobResult o2::runOneJob(const JobSpec &Spec, const BatchOptions &Opts,
                        ThreadPool *SharedPool) {
  JobResult R;
  R.Name = Spec.Name;
  R.Analyses = Opts.Analyses;

  // @module-scoped fault specs count only this job's hits, which keeps
  // injected faults deterministic at any --jobs=N.
  FaultInjector::JobScope FaultScope(Spec.Name);

  // Worker-side progress markers; also tracked locally so error records
  // can name the stage the job was in.
  std::string LastStage;
  auto Stage = [&Opts, &LastStage](const char *S) {
    LastStage = S;
    if (Opts.StageHook)
      Opts.StageHook(S);
  };
  Stage("setup");

  ResultCache Cache(Opts.CacheDir);
  bool HaveKey = false;
  uint64_t ContentHash = 0, ConfigFP = 0;

  // Hoisted out of the try so the catch blocks can harvest partial
  // timings and statistics (declaration order matters: AM borrows M, so
  // AM must be destroyed first).
  std::unique_ptr<Module> M;
  std::unique_ptr<AnalysisManager> AM;
  auto Harvest = [&R, &AM] {
    if (!AM)
      return;
    try {
      R.PTAMs = AM->seconds(O2Phase::PTA) * 1000.0;
      R.OSAMs = AM->seconds(O2Phase::OSA) * 1000.0;
      R.SHBMs = AM->seconds(O2Phase::SHB) * 1000.0;
      R.HBIndexMs = AM->seconds(O2Phase::HBIndex) * 1000.0;
      R.DetectMs = AM->seconds(O2Phase::Detect) * 1000.0;
      R.DeadlockMs = AM->seconds(O2Phase::Deadlock) * 1000.0;
      R.OverSyncMs = AM->seconds(O2Phase::OverSync) * 1000.0;
      R.RacerDMs = AM->seconds(O2Phase::RacerD) * 1000.0;
      R.EscapeMs = AM->seconds(O2Phase::Escape) * 1000.0;
      R.Stats = AM->stats();
    } catch (...) {
      // Partial telemetry is best-effort; the status already tells the
      // story.
    }
  };

  try {
    std::string Source;
    if (!Spec.Profile) {
      Source = Spec.Source;
      if (Source.empty() && !Spec.Path.empty()) {
        bool Ok = false;
        Source = readFileContent(Spec.Path, Ok);
        if (!Ok) {
          R.Status = JobStatus::ParseError;
          R.Error = "cannot read '" + Spec.Path + "'";
          return R;
        }
      }
    }

    // Warm-cache lookup, keyed purely on content: the raw source bytes
    // for text jobs (before parsing — a hit skips the parse too), the
    // printed module for generated workloads. The config half of the key
    // folds in the requested analyses, every result-affecting option and
    // each pass's version (see analysisSetFingerprint).
    if (Cache.enabled()) {
      ConfigFP = analysisSetFingerprint(Opts.Analyses, Opts.Config);
      if (Spec.Profile) {
        M = generateWorkload(*Spec.Profile);
        ContentHash = ResultCache::contentHash(printModule(*M));
      } else {
        ContentHash = ResultCache::contentHash(Source);
      }
      HaveKey = true;
      JobResult Cached;
      if (Cache.lookup(ContentHash, ConfigFP, Cached)) {
        Cached.Name = Spec.Name;
        Cached.Analyses = Opts.Analyses;
        Cached.Cache = JobResult::CacheOutcome::Hit;
        return Cached;
      }
      R.Cache = JobResult::CacheOutcome::Miss;
    }

    if (!M) {
      Stage("parse");
      FaultInjector::hit("parse");
      if (Spec.Profile) {
        M = generateWorkload(*Spec.Profile);
      } else {
        std::string Err;
        M = parseModule(Source, Err,
                        Spec.Name.empty() ? "module" : Spec.Name);
        if (!M) {
          R.Status = JobStatus::ParseError;
          R.Error = Err;
          return R;
        }
      }
    }

    Stage("verify");
    std::vector<std::string> Errors;
    if (!verifyModule(*M, Errors)) {
      R.Status = JobStatus::VerifyError;
      R.Error = Errors.empty() ? "module failed verification" : Errors.front();
      if (Errors.size() > 1)
        R.Error += " (+" + std::to_string(Errors.size() - 1) + " more)";
      return R;
    }

    // The deadline clock starts here: parsing is I/O-bound and cheap, the
    // analysis phases are where pathological modules blow up.
    CancellationToken Deadline;
    O2Config Cfg = Opts.Config;
    if (!Cfg.Detector.Pool && SharedPool)
      Cfg.Detector.Pool = SharedPool;
    if (Opts.DeadlineMs) {
      Deadline.setDeadlineMs(double(Opts.DeadlineMs));
      Cfg.Cancel = &Deadline;
    } else {
      Cfg.Cancel = nullptr;
    }
    // Stream each pass's start to the progress hook so a crash mid-pass
    // can be attributed to it (the isolated worker forwards these as
    // pipe markers).
    Cfg.OnPassStart = [&Stage](O2Phase Ph) { Stage(phaseName(Ph)); };

    // One manager per job: the requested detectors all read the same
    // PTA/SHB/HBIndex results, computed once.
    FaultInjector::hit("alloc");
    AM = std::make_unique<AnalysisManager>(*M, Cfg);
    AM->run(Opts.Analyses);
    Harvest();

    if (AM->ran(O2Phase::Detect))
      for (const Race &Rc : AM->getRaces().races())
        R.Races.push_back(makeRaceRecord(Rc, AM->getPTA()));
    if (AM->ran(O2Phase::Deadlock))
      for (const DeadlockCycle &C : AM->getDeadlocks().cycles()) {
        DeadlockRecord D;
        for (uint32_t L : C.Locks) {
          if (!D.Locks.empty())
            D.Locks += ',';
          D.Locks += "lock" + std::to_string(L);
        }
        for (const LockOrderEdge &E : C.Witnesses)
          D.Witnesses.push_back(
              "thread " + std::to_string(E.Thread) + " acquires lock" +
              std::to_string(E.Inner) + " while holding lock" +
              std::to_string(E.Outer) + " at '" + printStmt(*E.Acquire) +
              "'");
        R.Deadlocks.push_back(std::move(D));
      }
    if (AM->ran(O2Phase::OverSync))
      for (const OverSyncRegion &Reg : AM->getOverSync().regions()) {
        OverSyncRecord O;
        if (Reg.Acquire) {
          O.Stmt = printStmt(*Reg.Acquire);
          O.Function = Reg.Acquire->getFunction()->getName();
        }
        O.Thread = Reg.Thread;
        O.NumAccesses = Reg.NumAccesses;
        R.OverSyncs.push_back(std::move(O));
      }
    if (AM->ran(O2Phase::RacerD))
      for (const RacerDWarning &W : AM->getRacerD().warnings()) {
        RacerDRecord Rw;
        Rw.Kind = W.WarningKind == RacerDWarning::Kind::ReadWriteRace
                      ? "read-write"
                      : "unprotected-write";
        Rw.Location = W.Location;
        Rw.First = printStmt(*W.A);
        if (W.B)
          Rw.Second = printStmt(*W.B);
        R.RacerDWarnings.push_back(std::move(Rw));
      }

    if (AM->cancelled()) {
      R.Status = JobStatus::Timeout;
      R.Phase = phaseName(AM->cancelledIn());
    } else {
      R.Status = R.Races.empty() ? JobStatus::Clean : JobStatus::Races;
      // Only settled results are worth replaying; timeouts and errors
      // must re-run on the next fleet (store() also refuses anything
      // else, including degraded results).
      if (HaveKey)
        Cache.store(ContentHash, ConfigFP, R);
    }
  } catch (const std::bad_alloc &) {
    // Allocation failure is its own status: under a --mem-limit-mb cap
    // this *is* the OOM record, and in-process it tells the operator to
    // re-run with --degrade or more memory rather than chase a bug.
    R.Status = JobStatus::OOM;
    R.Error = "out of memory";
    R.Phase = LastStage;
    Harvest();
  } catch (const std::exception &E) {
    R.Status = JobStatus::InternalError;
    R.Error = E.what();
    R.Phase = LastStage;
    Harvest();
  } catch (...) {
    R.Status = JobStatus::InternalError;
    R.Error = "unknown exception";
    R.Phase = LastStage;
    Harvest();
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Containment policy: retry + sound degradation
//===----------------------------------------------------------------------===//

/// The degraded-fallback configuration: cheaper but still *sound*.
/// Context-insensitive points-to is a strict over-approximation of
/// origin-sensitive points-to (merging contexts only adds may-alias
/// facts), so every real race remains reported — the fallback trades
/// precision (more false positives), never recall. The race-pair budget
/// also gets slack so the cheaper abstraction is less likely to trip it.
static O2Config degradedConfigFor(const O2Config &Cfg) {
  O2Config D = Cfg;
  D.PTA.Kind = ContextKind::Insensitive;
  if (D.Detector.MaxPairChecks != ~uint64_t(0))
    D.Detector.MaxPairChecks *= 4;
  return D;
}

JobResult o2::runJobContained(const JobSpec &Spec, const BatchOptions &Opts,
                              ThreadPool *SharedPool) {
  auto Attempt = [&Spec, SharedPool](const BatchOptions &O) {
    return O.Isolate == IsolationMode::Process
               ? runOneJobIsolated(Spec, O)
               : runOneJob(Spec, O, SharedPool);
  };
  auto Transient = [](JobStatus S) {
    return S == JobStatus::Crashed || S == JobStatus::OOM ||
           S == JobStatus::InternalError;
  };

  JobResult R = Attempt(Opts);

  // Bounded retry with exponential backoff: crashes, OOMs, and internal
  // errors may be environmental (a flaky machine, a cache race, memory
  // pressure from a sibling). Deterministic failures simply fail
  // Retries more times and report the same record.
  uint64_t Backoff = Opts.RetryBackoffMs;
  for (unsigned N = 1; N <= Opts.Retries && Transient(R.Status); ++N) {
    std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
    Backoff = std::min<uint64_t>(Backoff * 2, 2000);
    JobResult Again = Attempt(Opts);
    Again.Retries = N;
    R = std::move(Again);
  }

  // Sound graceful degradation: a resource-exhausted job (deadline or
  // memory) gets one re-run under the cheaper configuration. Only a
  // *terminal* degraded result replaces the original record, and it is
  // never cached (the attempt below runs cache-less).
  if (Opts.Degrade &&
      (R.Status == JobStatus::Timeout || R.Status == JobStatus::OOM)) {
    BatchOptions Fallback = Opts;
    Fallback.Config = degradedConfigFor(Opts.Config);
    Fallback.CacheDir.clear();
    JobResult D = Attempt(Fallback);
    if (D.Status == JobStatus::Clean || D.Status == JobStatus::Races) {
      D.Degraded = true;
      D.DegradedConfigFP =
          analysisSetFingerprint(Opts.Analyses, Fallback.Config);
      D.Retries = R.Retries;
      R = std::move(D);
    }
  }
  return R;
}

BatchResult o2::runBatch(const std::vector<JobSpec> &Specs,
                         const BatchOptions &Opts) {
  BatchResult R;
  R.Jobs.resize(Specs.size());
  {
    // Preallocated result slots: workers write disjoint elements, so the
    // only synchronization needed is the pool's own wait().
    ThreadPool Pool(Opts.Jobs);
    for (size_t I = 0; I < Specs.size(); ++I)
      Pool.submit([&R, &Specs, &Opts, &Pool, I] {
        // Jobs lend the batch pool to their parallel race engine, so a
        // lone huge module at the tail of the corpus fans out over the
        // workers the finished jobs freed up.
        R.Jobs[I] = runJobContained(Specs[I], Opts, &Pool);
      });
    Pool.wait();
  }
  // Deterministic report order regardless of worker interleaving: by
  // name, ties broken by submission order (stable sort).
  std::stable_sort(
      R.Jobs.begin(), R.Jobs.end(),
      [](const JobResult &A, const JobResult &B) { return A.Name < B.Name; });

  uint64_t TotalRaces = 0, NumDegraded = 0, NumRetried = 0;
  for (const JobResult &J : R.Jobs) {
    R.Summary.add(std::string("jobs.") + jobStatusName(J.Status));
    R.Summary.merge(J.Stats);
    TotalRaces += J.Races.size();
    if (J.Degraded)
      ++NumDegraded;
    if (J.Retries)
      ++NumRetried;
    // Cache telemetry stays out of Summary: the summary is printed into
    // the JSONL aggregate record, which must be byte-identical between
    // cold and warm runs.
    if (J.Cache == JobResult::CacheOutcome::Hit)
      ++R.CacheHits;
    else if (J.Cache == JobResult::CacheOutcome::Miss)
      ++R.CacheMisses;
  }
  R.Summary.set("jobs.total", R.Jobs.size());
  R.Summary.set("races.total", TotalRaces);
  if (NumDegraded)
    R.Summary.set("jobs.degraded", NumDegraded);
  if (NumRetried)
    R.Summary.set("jobs.retried", NumRetried);
  return R;
}

//===----------------------------------------------------------------------===//
// Baseline diff
//===----------------------------------------------------------------------===//

/// Reads the JSON string starting at \p Pos (the opening quote),
/// un-escaping as it goes. Returns false on malformed input.
static bool readJSONString(const std::string &S, size_t &Pos,
                           std::string &Out) {
  if (Pos >= S.size() || S[Pos] != '"')
    return false;
  ++Pos;
  Out.clear();
  while (Pos < S.size()) {
    char C = S[Pos++];
    if (C == '"')
      return true;
    if (C == '\\' && Pos < S.size()) {
      char E = S[Pos++];
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'u':
        Out += '?';
        Pos = std::min(S.size(), Pos + 4);
        break;
      default:
        Out += E;
      }
    } else {
      Out += C;
    }
  }
  return false;
}

Baseline o2::loadBaseline(const std::string &JSONLContent) {
  Baseline B;
  size_t LineStart = 0;
  while (LineStart < JSONLContent.size()) {
    size_t LineEnd = JSONLContent.find('\n', LineStart);
    if (LineEnd == std::string::npos)
      LineEnd = JSONLContent.size();
    std::string Line = JSONLContent.substr(LineStart, LineEnd - LineStart);
    LineStart = LineEnd + 1;

    size_t P = Line.find("\"module\":");
    if (P == std::string::npos)
      continue; // aggregate record or junk
    P += 9;
    std::string ModuleName;
    if (!readJSONString(Line, P, ModuleName))
      continue;
    std::set<std::string> &FPs = B[ModuleName];
    for (size_t Q = Line.find("\"fingerprint\":"); Q != std::string::npos;
         Q = Line.find("\"fingerprint\":", Q)) {
      Q += 14;
      std::string FP;
      if (!readJSONString(Line, Q, FP))
        break;
      FPs.insert(FP);
    }
  }
  return B;
}

void o2::applyBaseline(BatchResult &R, const Baseline &B) {
  uint64_t NumNew = 0, NumUnchanged = 0, NumFixed = 0;
  for (JobResult &J : R.Jobs) {
    auto It = B.find(J.Name);
    const std::set<std::string> *Base = It == B.end() ? nullptr : &It->second;
    std::set<std::string> Current;
    for (RaceRecord &Rc : J.Races) {
      Current.insert(Rc.Fingerprint);
      if (Base && Base->count(Rc.Fingerprint)) {
        Rc.DiffStatus = "unchanged";
        ++NumUnchanged;
      } else {
        Rc.DiffStatus = "new";
        ++NumNew;
      }
    }
    J.FixedRaces.clear();
    if (Base)
      for (const std::string &FP : *Base)
        if (!Current.count(FP)) {
          J.FixedRaces.push_back(FP); // set order: already sorted
          ++NumFixed;
        }
  }
  R.Summary.set("diff.new", NumNew);
  R.Summary.set("diff.unchanged", NumUnchanged);
  R.Summary.set("diff.fixed", NumFixed);
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

void o2::printJSONL(const BatchResult &R, OutputStream &OS,
                    bool IncludeTimings) {
  for (const JobResult &J : R.Jobs) {
    JSONWriter W(OS);
    W.beginObject();
    W.attribute("module", J.Name);
    W.attribute("status", jobStatusName(J.Status));
    if (!J.Analyses.empty())
      W.attribute("analyses", J.Analyses.str());
    if (!J.Phase.empty())
      W.attribute("phase", J.Phase);
    if (!J.Error.empty())
      W.attribute("error", J.Error);
    if (!J.Signal.empty())
      W.attribute("signal", J.Signal);
    if (J.Degraded) {
      W.attribute("degraded", true);
      W.attribute("degraded-config", toHex16(J.DegradedConfigFP));
    }
    if (J.Retries)
      W.attribute("retries", uint64_t(J.Retries));
    if (IncludeTimings) {
      W.attribute("time.pta-ms", J.PTAMs);
      W.attribute("time.osa-ms", J.OSAMs);
      W.attribute("time.shb-ms", J.SHBMs);
      W.attribute("time.hbindex-ms", J.HBIndexMs);
      W.attribute("time.race-ms", J.DetectMs);
      W.attribute("time.deadlock-ms", J.DeadlockMs);
      W.attribute("time.oversync-ms", J.OverSyncMs);
      W.attribute("time.racerd-ms", J.RacerDMs);
      W.attribute("time.escape-ms", J.EscapeMs);
      W.attribute("time.total-ms", J.totalMs());
    }
    W.key("races");
    W.beginArray();
    for (const RaceRecord &Rc : J.Races) {
      W.beginObject();
      W.attribute("fingerprint", Rc.Fingerprint);
      W.attribute("location", Rc.Location);
      if (!Rc.DiffStatus.empty())
        W.attribute("diff", Rc.DiffStatus);
      W.key("first");
      W.beginObject();
      W.attribute("stmt", Rc.StmtA);
      W.attribute("function", Rc.FuncA);
      W.attribute("write", Rc.WriteA);
      W.endObject();
      W.key("second");
      W.beginObject();
      W.attribute("stmt", Rc.StmtB);
      W.attribute("function", Rc.FuncB);
      W.attribute("write", Rc.WriteB);
      W.endObject();
      W.endObject();
    }
    W.endArray();
    if (J.Analyses.contains(O2Phase::Deadlock)) {
      W.key("deadlocks");
      W.beginArray();
      for (const DeadlockRecord &D : J.Deadlocks) {
        W.beginObject();
        W.attribute("locks", D.Locks);
        W.key("witnesses");
        W.beginArray();
        for (const std::string &Wit : D.Witnesses)
          W.value(Wit);
        W.endArray();
        W.endObject();
      }
      W.endArray();
    }
    if (J.Analyses.contains(O2Phase::OverSync)) {
      W.key("oversync");
      W.beginArray();
      for (const OverSyncRecord &O : J.OverSyncs) {
        W.beginObject();
        W.attribute("stmt", O.Stmt);
        W.attribute("function", O.Function);
        W.attribute("thread", uint64_t(O.Thread));
        W.attribute("accesses", uint64_t(O.NumAccesses));
        W.endObject();
      }
      W.endArray();
    }
    if (J.Analyses.contains(O2Phase::RacerD)) {
      W.key("racerd");
      W.beginArray();
      for (const RacerDRecord &Rw : J.RacerDWarnings) {
        W.beginObject();
        W.attribute("kind", Rw.Kind);
        W.attribute("location", Rw.Location);
        W.attribute("first", Rw.First);
        if (!Rw.Second.empty())
          W.attribute("second", Rw.Second);
        W.endObject();
      }
      W.endArray();
    }
    if (!J.FixedRaces.empty()) {
      W.key("fixed");
      W.beginArray();
      for (const std::string &FP : J.FixedRaces)
        W.value(FP);
      W.endArray();
    }
    W.key("stats");
    W.beginObject();
    for (const auto &[Name, Value] : J.Stats.counters())
      W.attribute(Name, Value);
    W.endObject();
    W.endObject();
    OS << '\n';
  }

  JSONWriter W(OS);
  W.beginObject();
  W.attribute("aggregate", true);
  W.attribute("exit-code", int64_t(R.exitCode()));
  W.key("summary");
  W.beginObject();
  for (const auto &[Name, Value] : R.Summary.counters())
    W.attribute(Name, Value);
  W.endObject();
  W.endObject();
  OS << '\n';
}

void o2::printBatchSummary(const BatchResult &R, OutputStream &OS) {
  OS << "==== batch: " << uint64_t(R.Jobs.size()) << " module(s), "
     << R.Summary.get("races.total") << " race(s), exit "
     << int64_t(R.exitCode()) << " ====\n";
  for (const JobResult &J : R.Jobs) {
    OS << "  " << J.Name << ": " << jobStatusName(J.Status);
    if (J.Status == JobStatus::Races)
      OS << " (" << uint64_t(J.Races.size()) << ")";
    if (J.Status == JobStatus::Timeout)
      OS << " (in " << J.Phase << ")";
    if (J.Status == JobStatus::Crashed) {
      OS << " (" << (J.Signal.empty() ? "?" : J.Signal.c_str());
      if (!J.Phase.empty())
        OS << " in " << J.Phase;
      OS << ")";
    }
    if (J.Degraded)
      OS << " [degraded]";
    if (J.Retries)
      OS << " [retries: " << uint64_t(J.Retries) << "]";
    if (!J.Error.empty())
      OS << ": " << J.Error;
    OS << '\n';
  }
  if (R.Summary.get("diff.new") || R.Summary.get("diff.unchanged") ||
      R.Summary.get("diff.fixed"))
    OS << "  diff: " << R.Summary.get("diff.new") << " new, "
       << R.Summary.get("diff.unchanged") << " unchanged, "
       << R.Summary.get("diff.fixed") << " fixed\n";
  if (R.CacheHits || R.CacheMisses)
    OS << "  cache: " << R.CacheHits << " hit(s), " << R.CacheMisses
       << " miss(es)\n";
}

//===----------------------------------------------------------------------===//
// CLI
//===----------------------------------------------------------------------===//

static void printBatchUsage(OutputStream &OS) {
  OS << "usage: o2batch [options] <file.oir | directory>...\n"
     << "\n"
     << "Runs the O2 pipeline over every module of a corpus on a\n"
     << "work-stealing thread pool and emits a JSONL report (one record\n"
     << "per module plus an aggregate; see docs/DRIVER.md).\n"
     << "\n"
     << "  --jobs=N          worker threads (default: hardware "
        "concurrency)\n"
     << "  --analyses=LIST   comma-separated analyses per job: race, "
        "deadlock, oversync,\n"
     << "                    racerd, escape, osa, or 'all' (default: "
        "osa,race); shared\n"
     << "                    passes (pta, shb, hbindex) are computed once "
        "per module\n"
     << "  --cache-dir=DIR   warm result cache keyed by module content + "
        "config\n"
     << "                    fingerprint; unchanged jobs replay identical "
        "records\n"
     << "  --deadline-ms=N   per-job analysis budget; overruns become "
        "'timeout' records\n"
     << "  --isolate=M       job containment: none (default) or process "
        "(one forked\n"
     << "                    sandboxed worker per job; crashes become "
        "'crashed' records)\n"
     << "  --mem-limit-mb=N  worker address-space cap (process isolation); "
        "overruns\n"
     << "                    become 'oom' records\n"
     << "  --kill-after-ms=N hard SIGTERM->SIGKILL for stuck workers "
        "(default: derived\n"
     << "                    from --deadline-ms)\n"
     << "  --retries=N       re-attempt crashed/oom/internal-error jobs up "
        "to N times\n"
     << "                    with exponential backoff\n"
     << "  --retry-backoff-ms=N  first retry backoff (default: 50, doubles, "
        "caps at 2s)\n"
     << "  --degrade         re-run timeout/oom jobs once under a cheaper, "
        "still-sound\n"
     << "                    config (0-ctx PTA); results are tagged "
        "degraded:true\n"
     << "  --inject-fault=S  arm a deterministic fault, "
        "point[@module]:nth[:action]\n"
     << "                    (testing; see --fault-points)\n"
     << "  --fault-points    list the named fault points and exit\n"
     << "  --out=FILE        write the JSONL report to FILE (default: "
        "stdout)\n"
     << "  --baseline=FILE   diff against a previous JSONL report "
        "(new/unchanged/fixed)\n"
     << "  --timings         include wall-clock phase timings "
        "(non-deterministic)\n"
     << "  --profile=NAME    add the named generated workload as a job "
        "(repeatable)\n"
     << "  --profiles=table5 add every benchmark profile as a job\n"
     << "  --ctx=K           context kind: 0-ctx, cfa, obj, origin "
        "(default: origin)\n"
     << "  --k=N             context depth for cfa/obj\n"
     << "  --solver=S        pta solver: wave, worklist\n"
     << "  --race-engine=E   race engine: parallel (default), serial\n"
     << "  --race-hb=H       serial-engine HB queries: index (default), "
        "memo, naive\n"
     << "  --race-jobs=N     race-engine worker cap per module (default: "
        "share the batch pool)\n"
     << "  --quiet           no human-readable summary on stderr\n"
     << "\n"
     << "exit codes: 0 all clean, 1 races found, 2 any parse/verify/"
        "internal error or timeout\n";
}

int o2::runBatchCommand(const std::vector<std::string> &Args) {
  BatchOptions Opts;
  std::vector<std::string> Inputs;
  std::vector<std::string> ProfileNames;
  bool AllProfiles = false;
  bool Quiet = false;
  std::string OutPath, BaselinePath;

  for (const std::string &Arg : Args) {
    auto Value = [&Arg] { return Arg.substr(Arg.find('=') + 1); };
    if (Arg == "--help" || Arg == "-h") {
      printBatchUsage(outs());
      return ExitClean;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      Opts.Jobs = unsigned(std::strtoul(Value().c_str(), nullptr, 10));
    } else if (Arg.rfind("--analyses=", 0) == 0) {
      std::string Err;
      if (!parseAnalysisSet(Value(), Opts.Analyses, Err)) {
        errs() << "o2batch: " << Err << "\n";
        return ExitError;
      }
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Opts.CacheDir = Value();
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      Opts.DeadlineMs = std::strtoull(Value().c_str(), nullptr, 10);
    } else if (Arg.rfind("--isolate=", 0) == 0) {
      std::string V = Value();
      if (V == "process")
        Opts.Isolate = IsolationMode::Process;
      else if (V == "none" || V == "in-process")
        Opts.Isolate = IsolationMode::InProcess;
      else {
        errs() << "o2batch: unknown isolation mode '" << V << "'\n";
        return ExitError;
      }
    } else if (Arg.rfind("--mem-limit-mb=", 0) == 0) {
      Opts.MemLimitMB = std::strtoull(Value().c_str(), nullptr, 10);
    } else if (Arg.rfind("--kill-after-ms=", 0) == 0) {
      Opts.HardKillMs = std::strtoull(Value().c_str(), nullptr, 10);
    } else if (Arg.rfind("--retries=", 0) == 0) {
      Opts.Retries = unsigned(std::strtoul(Value().c_str(), nullptr, 10));
    } else if (Arg.rfind("--retry-backoff-ms=", 0) == 0) {
      Opts.RetryBackoffMs = std::strtoull(Value().c_str(), nullptr, 10);
    } else if (Arg == "--degrade") {
      Opts.Degrade = true;
    } else if (Arg.rfind("--inject-fault=", 0) == 0) {
      std::string Err;
      if (!FaultInjector::instance().armFromSpec(Value(), Err)) {
        errs() << "o2batch: " << Err << "\n";
        return ExitError;
      }
    } else if (Arg == "--fault-points") {
      for (const FaultPointInfo &P : FaultInjector::catalogue())
        outs() << P.Name << "  (" << P.Where << ")\n";
      return ExitClean;
    } else if (Arg == "--timings") {
      Opts.IncludeTimings = true;
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Value();
    } else if (Arg.rfind("--baseline=", 0) == 0) {
      BaselinePath = Value();
    } else if (Arg.rfind("--profile=", 0) == 0) {
      ProfileNames.push_back(Value());
    } else if (Arg == "--profiles=table5" || Arg == "--profiles=all") {
      AllProfiles = true;
    } else if (Arg.rfind("--ctx=", 0) == 0) {
      std::string V = Value();
      if (V == "0-ctx" || V == "insensitive")
        Opts.Config.PTA.Kind = ContextKind::Insensitive;
      else if (V == "cfa" || V == "k-cfa")
        Opts.Config.PTA.Kind = ContextKind::KCallsite;
      else if (V == "obj" || V == "k-obj")
        Opts.Config.PTA.Kind = ContextKind::KObject;
      else if (V == "origin")
        Opts.Config.PTA.Kind = ContextKind::Origin;
      else {
        errs() << "o2batch: unknown context kind '" << V << "'\n";
        return ExitError;
      }
    } else if (Arg.rfind("--k=", 0) == 0) {
      Opts.Config.PTA.K = unsigned(std::strtoul(Value().c_str(), nullptr, 10));
    } else if (Arg.rfind("--solver=", 0) == 0) {
      std::string V = Value();
      if (V == "wave")
        Opts.Config.PTA.Solver = SolverKind::Wave;
      else if (V == "worklist")
        Opts.Config.PTA.Solver = SolverKind::Worklist;
      else {
        errs() << "o2batch: unknown solver '" << V << "'\n";
        return ExitError;
      }
    } else if (Arg.rfind("--race-engine=", 0) == 0) {
      std::string V = Value();
      if (V == "serial")
        Opts.Config.Detector.Engine = RaceEngineKind::Serial;
      else if (V == "parallel")
        Opts.Config.Detector.Engine = RaceEngineKind::Parallel;
      else {
        errs() << "o2batch: unknown race engine '" << V << "'\n";
        return ExitError;
      }
    } else if (Arg.rfind("--race-hb=", 0) == 0) {
      std::string V = Value();
      if (V == "naive")
        Opts.Config.Detector.HB = RaceHBKind::Naive;
      else if (V == "memo")
        Opts.Config.Detector.HB = RaceHBKind::Memo;
      else if (V == "index")
        Opts.Config.Detector.HB = RaceHBKind::Index;
      else {
        errs() << "o2batch: unknown race HB mode '" << V << "'\n";
        return ExitError;
      }
    } else if (Arg.rfind("--race-jobs=", 0) == 0) {
      Opts.Config.Detector.Jobs =
          unsigned(std::strtoul(Value().c_str(), nullptr, 10));
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg.rfind("--", 0) == 0) {
      errs() << "o2batch: unknown option '" << Arg << "'\n";
      printBatchUsage(errs());
      return ExitError;
    } else {
      Inputs.push_back(Arg);
    }
  }

  namespace fs = std::filesystem;
  std::vector<JobSpec> Specs;
  auto addFile = [&Specs](const fs::path &P) {
    JobSpec S;
    S.Name = P.stem().string();
    S.Path = P.string();
    Specs.push_back(std::move(S));
  };
  for (const std::string &In : Inputs) {
    std::error_code EC;
    if (fs::is_directory(In, EC)) {
      std::vector<fs::path> Files;
      for (const auto &Entry : fs::directory_iterator(In, EC))
        if (Entry.path().extension() == ".oir")
          Files.push_back(Entry.path());
      std::sort(Files.begin(), Files.end());
      for (const fs::path &P : Files)
        addFile(P);
    } else {
      addFile(fs::path(In));
    }
  }
  for (const std::string &PN : ProfileNames) {
    const WorkloadProfile *P = findProfile(PN);
    if (!P) {
      errs() << "o2batch: unknown profile '" << PN << "'\n";
      return ExitError;
    }
    JobSpec S;
    S.Name = P->Name;
    S.Profile = P;
    Specs.push_back(std::move(S));
  }
  if (AllProfiles)
    for (const WorkloadProfile &P : benchmarkProfiles()) {
      JobSpec S;
      S.Name = P.Name;
      S.Profile = &P;
      Specs.push_back(std::move(S));
    }
  if (Specs.empty()) {
    errs() << "o2batch: no inputs\n";
    printBatchUsage(errs());
    return ExitError;
  }

  BatchResult R = runBatch(Specs, Opts);

  if (!BaselinePath.empty()) {
    bool Ok = false;
    std::string Content = readFileContent(BaselinePath, Ok);
    if (!Ok) {
      errs() << "o2batch: cannot read baseline '" << BaselinePath << "'\n";
      return ExitError;
    }
    applyBaseline(R, loadBaseline(Content));
  }

  if (!OutPath.empty()) {
    std::FILE *F = std::fopen(OutPath.c_str(), "wb");
    if (!F) {
      errs() << "o2batch: cannot write '" << OutPath << "'\n";
      return ExitError;
    }
    FileOutputStream FOS(F);
    printJSONL(R, FOS, Opts.IncludeTimings);
    std::fclose(F);
  } else {
    printJSONL(R, outs(), Opts.IncludeTimings);
  }
  if (!Quiet)
    printBatchSummary(R, errs());
  return R.exitCode();
}
