//===- EscapeAnalysis.cpp - Thread-escape baseline -----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/OSA/EscapeAnalysis.h"

#include "o2/Support/Casting.h"

#include <set>
#include <vector>

using namespace o2;

namespace o2 {

class EscapeAnalysis {
public:
  EscapeAnalysis(const PTAResult &PTA, const CancellationToken *Cancel)
      : PTA(PTA), Cancel(Cancel) {}

  EscapeResult run() {
    seedRoots();
    if (!R.Cancelled)
      closeOverFields();
    if (!R.Cancelled)
      countSharedAccesses();
    return std::move(R);
  }

private:
  void markEscaped(const BitVector *Pts) {
    if (!Pts)
      return;
    for (unsigned Obj : *Pts)
      if (R.Escaped.set(Obj))
        Worklist.push_back(Obj);
  }

  void markEscaped(unsigned Obj) {
    if (R.Escaped.set(Obj))
      Worklist.push_back(Obj);
  }

  void seedRoots() {
    // Globals (static fields) escape.
    for (const auto &G : PTA.module().globals())
      markEscaped(PTA.ptsGlobal(G.get()));

    const OriginSpec &Spec = PTA.options().Spec;
    for (const auto &[F, C] : PTA.instances()) {
      for (const auto &SPtr : F->body()) {
        const Stmt &S = *SPtr;
        // Origin (thread/handler) objects and everything passed into
        // their constructors escapes to the child.
        if (const auto *A = dyn_cast<AllocStmt>(&S)) {
          if (!Spec.isOriginClass(A->getAllocType()))
            continue;
          markEscaped(PTA.pts(A->getTarget(), C));
          for (const Variable *Arg : A->getArgs())
            if (Arg->getType()->isReference())
              markEscaped(PTA.pts(Arg, C));
          continue;
        }
        // Spawn receivers and arguments escape.
        if (const auto *Sp = dyn_cast<SpawnStmt>(&S)) {
          markEscaped(PTA.pts(Sp->getReceiver(), C));
          for (const Variable *Arg : Sp->getArgs())
            if (Arg->getType()->isReference())
              markEscaped(PTA.pts(Arg, C));
        }
      }
    }
  }

  void closeOverFields() {
    // Anything reachable through a field of an escaped object escapes.
    // Iterate to a fixpoint: the field points-to relation is fixed, so one
    // worklist pass over (escaped object -> field pts) suffices.
    std::vector<std::pair<unsigned, const BitVector *>> FieldPtsByObj;
    PTA.forEachFieldPts([&](unsigned Obj, FieldKey, const BitVector &Pts) {
      FieldPtsByObj.emplace_back(Obj, &Pts);
    });
    // Index: object -> its field points-to sets.
    std::sort(FieldPtsByObj.begin(), FieldPtsByObj.end());
    while (!Worklist.empty()) {
      if (pollCancelled(Cancel)) {
        R.Cancelled = true;
        return;
      }
      unsigned Obj = Worklist.back();
      Worklist.pop_back();
      auto It = std::lower_bound(
          FieldPtsByObj.begin(), FieldPtsByObj.end(), Obj,
          [](const auto &Entry, unsigned O) { return Entry.first < O; });
      for (; It != FieldPtsByObj.end() && It->first == Obj; ++It)
        markEscaped(It->second);
    }
  }

  /// Base objects of an access statement under one context.
  void countAccess(const Variable *Base, Ctx C, bool &Shared) {
    const BitVector *Pts = PTA.pts(Base, C);
    if (Pts && Pts->intersects(R.Escaped))
      Shared = true;
  }

  void countSharedAccesses() {
    std::set<unsigned> AccessStmts;
    std::set<unsigned> SharedStmts;
    for (const auto &[F, C] : PTA.instances()) {
      if (pollCancelled(Cancel)) {
        R.Cancelled = true;
        return;
      }
      for (const auto &SPtr : F->body()) {
        const Stmt &S = *SPtr;
        bool IsAccess = true;
        bool Shared = false;
        switch (S.getKind()) {
        case Stmt::SK_FieldLoad:
          countAccess(cast<FieldLoadStmt>(S).getBase(), C, Shared);
          break;
        case Stmt::SK_FieldStore:
          countAccess(cast<FieldStoreStmt>(S).getBase(), C, Shared);
          break;
        case Stmt::SK_ArrayLoad:
          countAccess(cast<ArrayLoadStmt>(S).getBase(), C, Shared);
          break;
        case Stmt::SK_ArrayStore:
          countAccess(cast<ArrayStoreStmt>(S).getBase(), C, Shared);
          break;
        case Stmt::SK_GlobalLoad:
        case Stmt::SK_GlobalStore:
          // Statics are always thread-escaped in this baseline.
          Shared = true;
          break;
        default:
          IsAccess = false;
          break;
        }
        if (IsAccess) {
          AccessStmts.insert(S.getId());
          if (Shared)
            SharedStmts.insert(S.getId());
        }
      }
    }
    R.NumAccessStmts = static_cast<unsigned>(AccessStmts.size());
    R.NumSharedAccessStmts = static_cast<unsigned>(SharedStmts.size());
  }

  const PTAResult &PTA;
  const CancellationToken *Cancel;
  EscapeResult R;
  std::vector<unsigned> Worklist;
};

} // namespace o2

EscapeResult o2::runEscapeAnalysis(const PTAResult &PTA,
                                   const CancellationToken *Cancel) {
  return EscapeAnalysis(PTA, Cancel).run();
}
