//===- SharingAnalysis.cpp - Origin-sharing analysis --------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/OSA/SharingAnalysis.h"

#include "o2/Support/Casting.h"

#include <map>
#include <set>

using namespace o2;

std::string MemLoc::toString(const PTAResult &PTA) const {
  if (isGlobal())
    return "@" + PTA.module().globals()[globalId()]->getName();
  std::string Out = "obj" + std::to_string(object());
  FieldKey FK = fieldKey();
  if (FK == ArrayElemKey)
    return Out + "[*]";
  // Locate the field's name through the object's class.
  const ObjInfo &O = PTA.object(object());
  if (const auto *Cls = dyn_cast<ClassType>(O.AllocatedType)) {
    for (const ClassType *C = Cls; C; C = C->getSuper())
      for (const auto &F : C->fields())
        if (fieldKeyOf(F.get()) == FK)
          return Out + "." + F->getName();
  }
  return Out + ".f" + std::to_string(FK - 1);
}

namespace o2 {

/// Implements Algorithm 1. The traversal over visitedMethods is the
/// pointer analysis's reachable-instance list; FindPointsToOrigins is the
/// points-to query on the access's base pointer.
class SharingAnalysis {
public:
  SharingAnalysis(const PTAResult &PTA, const CancellationToken *Cancel)
      : PTA(PTA), Cancel(Cancel) {
    assert(PTA.options().Kind == ContextKind::Origin &&
           "OSA runs on origin-sensitive points-to results");
  }

  SharingResult run() {
    for (const auto &[F, C] : PTA.instances()) {
      unsigned Origin = PTA.originOfCtx(C);
      for (const auto &S : F->body()) {
        if (pollCancelled(Cancel)) {
          R.Cancelled = true;
          finalize();
          return std::move(R);
        }
        visitStmt(*S, C, Origin);
      }
    }
    finalize();
    return std::move(R);
  }

private:
  void recordAccess(const Stmt &S, MemLoc Loc, unsigned Origin,
                    bool IsWrite) {
    LocAccessSets &Sets = R.Locs[Loc];
    if (IsWrite)
      Sets.WriteOrigins.set(Origin);
    else
      Sets.ReadOrigins.set(Origin);
    StmtLocs[S.getId()].insert(Loc);
  }

  /// Records one base-pointer access: the location per pointed-to object.
  void recordFieldAccess(const Stmt &S, const Variable *Base, FieldKey FK,
                         unsigned Origin, bool IsWrite, Ctx C) {
    AccessStmts.insert(S.getId());
    const BitVector *Pts = PTA.pts(Base, C);
    if (!Pts)
      return;
    for (unsigned Obj : *Pts)
      recordAccess(S, MemLoc::field(Obj, FK), Origin, IsWrite);
  }

  void visitStmt(const Stmt &S, Ctx C, unsigned Origin) {
    switch (S.getKind()) {
    case Stmt::SK_FieldLoad: {
      const auto &L = cast<FieldLoadStmt>(S);
      recordFieldAccess(S, L.getBase(), fieldKeyOf(L.getField()), Origin,
                        /*IsWrite=*/false, C);
      return;
    }
    case Stmt::SK_FieldStore: {
      const auto &St = cast<FieldStoreStmt>(S);
      recordFieldAccess(S, St.getBase(), fieldKeyOf(St.getField()), Origin,
                        /*IsWrite=*/true, C);
      return;
    }
    case Stmt::SK_ArrayLoad:
      recordFieldAccess(S, cast<ArrayLoadStmt>(S).getBase(), ArrayElemKey,
                        Origin, /*IsWrite=*/false, C);
      return;
    case Stmt::SK_ArrayStore:
      recordFieldAccess(S, cast<ArrayStoreStmt>(S).getBase(), ArrayElemKey,
                        Origin, /*IsWrite=*/true, C);
      return;
    case Stmt::SK_GlobalLoad:
      AccessStmts.insert(S.getId());
      recordAccess(S, MemLoc::global(cast<GlobalLoadStmt>(S).getGlobal()->getId()),
                   Origin, /*IsWrite=*/false);
      return;
    case Stmt::SK_GlobalStore:
      AccessStmts.insert(S.getId());
      recordAccess(S,
                   MemLoc::global(cast<GlobalStoreStmt>(S).getGlobal()->getId()),
                   Origin, /*IsWrite=*/true);
      return;
    default:
      return;
    }
  }

  void finalize() {
    std::set<unsigned> SharedObjs;
    for (const auto &[Loc, Sets] : R.Locs)
      if (Sets.isShared()) {
        R.Shared.push_back(Loc);
        if (!Loc.isGlobal())
          SharedObjs.insert(Loc.object());
      }
    std::sort(R.Shared.begin(), R.Shared.end());
    R.NumSharedObjects = static_cast<unsigned>(SharedObjs.size());
    R.NumAccessStmts = static_cast<unsigned>(AccessStmts.size());
    for (const auto &[StmtId, Locs] : StmtLocs)
      for (const MemLoc &Loc : Locs)
        if (R.isShared(Loc)) {
          R.SharedStmts.set(StmtId);
          ++R.NumSharedAccessStmts;
          break;
        }
  }

  const PTAResult &PTA;
  const CancellationToken *Cancel;
  SharingResult R;
  std::map<unsigned, std::set<MemLoc>> StmtLocs;
  std::set<unsigned> AccessStmts;
};

} // namespace o2

SharingResult o2::runSharingAnalysis(const PTAResult &PTA,
                                     const CancellationToken *Cancel) {
  return SharingAnalysis(PTA, Cancel).run();
}
