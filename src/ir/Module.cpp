//===- Module.cpp - OIR module, types, and functions ----------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Module.h"

#include "o2/Support/Compiler.h"

using namespace o2;

//===----------------------------------------------------------------------===//
// ClassType
//===----------------------------------------------------------------------===//

Field *ClassType::addField(const std::string &FieldName, Type *Ty,
                           bool IsAtomic) {
  assert(!findField(FieldName) && "field redeclared along superclass chain");
  Fields.push_back(std::make_unique<Field>(
      FieldName, Ty, this, ParentModule.takeFieldId(), IsAtomic));
  return Fields.back().get();
}

void ClassType::addMethod(Function *Method) {
  assert(Method && "null method");
  assert(!Method->isMethod() && "function already attached to a class");
  Method->setClass(this);
  Methods.push_back(Method);
}

Field *ClassType::findField(const std::string &FieldName) const {
  for (const ClassType *C = this; C; C = C->Super)
    for (const auto &F : C->Fields)
      if (F->getName() == FieldName)
        return F.get();
  return nullptr;
}

Function *ClassType::findMethod(const std::string &MethodName) const {
  for (const ClassType *C = this; C; C = C->Super)
    for (Function *M : C->Methods)
      if (M->getName() == MethodName)
        return M;
  return nullptr;
}

bool ClassType::isSubclassOf(const ClassType *Other) const {
  for (const ClassType *C = this; C; C = C->Super)
    if (C == Other)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Variable *Function::addParam(const std::string &ParamName, Type *Ty) {
  assert(!findVariable(ParamName) && "parameter name already in use");
  Vars.push_back(std::make_unique<Variable>(
      ParamName, Ty, this, ParentModule.takeVarId(), /*IsParam=*/true));
  Params.push_back(Vars.back().get());
  return Vars.back().get();
}

Variable *Function::addLocal(const std::string &LocalName, Type *Ty) {
  assert(!findVariable(LocalName) && "local name already in use");
  Vars.push_back(std::make_unique<Variable>(
      LocalName, Ty, this, ParentModule.takeVarId(), /*IsParam=*/false));
  return Vars.back().get();
}

Variable *Function::getReturnVar() {
  if (!RetTy)
    return nullptr;
  if (!RetVar) {
    Vars.push_back(std::make_unique<Variable>(
        "$ret", RetTy, this, ParentModule.takeVarId(), /*IsParam=*/false));
    RetVar = Vars.back().get();
  }
  return RetVar;
}

Variable *Function::findVariable(const std::string &VarName) const {
  for (const auto &V : Vars)
    if (V->getName() == VarName)
      return V.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

ClassType *Module::addClass(const std::string &ClassName, ClassType *Super) {
  assert(!findClass(ClassName) && "class name already in use");
  Classes.push_back(std::make_unique<ClassType>(ClassName, Super, *this));
  ClassByName[ClassName] = Classes.back().get();
  return Classes.back().get();
}

ArrayType *Module::getArrayType(Type *Elem) {
  auto &Slot = ArrayTypes[Elem];
  if (!Slot)
    Slot = std::make_unique<ArrayType>(Elem);
  return Slot.get();
}

Global *Module::addGlobal(const std::string &GlobalName, Type *Ty,
                          bool IsAtomic) {
  assert(!findGlobal(GlobalName) && "global name already in use");
  Globals.push_back(std::make_unique<Global>(
      GlobalName, Ty, static_cast<unsigned>(Globals.size()), IsAtomic));
  GlobalByName[GlobalName] = Globals.back().get();
  return Globals.back().get();
}

Function *Module::addFunction(const std::string &FuncName, Type *RetTy) {
  Functions.push_back(
      std::make_unique<Function>(FuncName, RetTy, *this, NextFuncId++));
  return Functions.back().get();
}

ClassType *Module::findClass(const std::string &ClassName) const {
  auto It = ClassByName.find(ClassName);
  return It == ClassByName.end() ? nullptr : It->second;
}

Global *Module::findGlobal(const std::string &GlobalName) const {
  auto It = GlobalByName.find(GlobalName);
  return It == GlobalByName.end() ? nullptr : It->second;
}

Function *Module::findFunction(const std::string &FuncName) const {
  for (const auto &F : Functions)
    if (!F->isMethod() && F->getName() == FuncName)
      return F.get();
  return nullptr;
}

unsigned Module::numProgramStmts() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += static_cast<unsigned>(F->size());
  return N;
}
