//===- Printer.cpp - Textual OIR printer -----------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Printer.h"

#include "o2/IR/Module.h"
#include "o2/Support/ArrayRef.h"
#include "o2/Support/Casting.h"
#include "o2/Support/OutputStream.h"

using namespace o2;

static void printArgs(ArrayRef<Variable *> Args, OutputStream &OS) {
  OS << '(';
  for (size_t I = 0, E = Args.size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << Args[I]->getName();
  }
  OS << ')';
}

void o2::printStmt(const Stmt &S, OutputStream &OS) {
  switch (S.getKind()) {
  case Stmt::SK_Alloc: {
    const auto &A = cast<AllocStmt>(S);
    OS << A.getTarget()->getName() << " = new "
       << A.getAllocType()->getName();
    if (!A.getArgs().empty())
      printArgs(ArrayRef<Variable *>(A.getArgs().data(), A.getArgs().size()),
                OS);
    return;
  }
  case Stmt::SK_ArrayAlloc: {
    const auto &A = cast<ArrayAllocStmt>(S);
    OS << A.getTarget()->getName() << " = newarray "
       << A.getAllocType()->getElementType()->getName();
    return;
  }
  case Stmt::SK_Assign: {
    const auto &A = cast<AssignStmt>(S);
    OS << A.getTarget()->getName() << " = " << A.getSource()->getName();
    return;
  }
  case Stmt::SK_FieldLoad: {
    const auto &L = cast<FieldLoadStmt>(S);
    OS << L.getTarget()->getName() << " = " << L.getBase()->getName() << '.'
       << L.getField()->getName();
    return;
  }
  case Stmt::SK_FieldStore: {
    const auto &St = cast<FieldStoreStmt>(S);
    OS << St.getBase()->getName() << '.' << St.getField()->getName() << " = "
       << St.getSource()->getName();
    return;
  }
  case Stmt::SK_ArrayLoad: {
    const auto &L = cast<ArrayLoadStmt>(S);
    OS << L.getTarget()->getName() << " = " << L.getBase()->getName()
       << "[*]";
    return;
  }
  case Stmt::SK_ArrayStore: {
    const auto &St = cast<ArrayStoreStmt>(S);
    OS << St.getBase()->getName() << "[*] = " << St.getSource()->getName();
    return;
  }
  case Stmt::SK_GlobalLoad: {
    const auto &L = cast<GlobalLoadStmt>(S);
    OS << L.getTarget()->getName() << " = @" << L.getGlobal()->getName();
    return;
  }
  case Stmt::SK_GlobalStore: {
    const auto &St = cast<GlobalStoreStmt>(S);
    OS << '@' << St.getGlobal()->getName() << " = "
       << St.getSource()->getName();
    return;
  }
  case Stmt::SK_Call: {
    const auto &C = cast<CallStmt>(S);
    if (C.getTarget())
      OS << C.getTarget()->getName() << " = ";
    if (C.isVirtual())
      OS << C.getReceiver()->getName() << '.' << C.getMethodName();
    else
      OS << C.getDirectCallee()->getName();
    printArgs(ArrayRef<Variable *>(C.getArgs().data(), C.getArgs().size()),
              OS);
    return;
  }
  case Stmt::SK_Spawn: {
    const auto &Sp = cast<SpawnStmt>(S);
    OS << "spawn " << Sp.getReceiver()->getName() << '.' << Sp.getEntryName();
    printArgs(ArrayRef<Variable *>(Sp.getArgs().data(), Sp.getArgs().size()),
              OS);
    return;
  }
  case Stmt::SK_Join:
    OS << "join " << cast<JoinStmt>(S).getReceiver()->getName();
    return;
  case Stmt::SK_Acquire:
    OS << "acquire " << cast<AcquireStmt>(S).getLock()->getName();
    return;
  case Stmt::SK_Release:
    OS << "release " << cast<ReleaseStmt>(S).getLock()->getName();
    return;
  case Stmt::SK_Return: {
    const auto &R = cast<ReturnStmt>(S);
    OS << "return";
    if (R.getValue())
      OS << ' ' << R.getValue()->getName();
    return;
  }
  }
  O2_UNREACHABLE("covered switch");
}

std::string o2::printStmt(const Stmt &S) {
  std::string Buf;
  StringOutputStream OS(Buf);
  printStmt(S, OS);
  return Buf;
}

/// True if a statement needs a `loop { }` wrapper to round-trip its
/// in-loop flag.
static bool isInLoop(const Stmt &S) {
  if (const auto *A = dyn_cast<AllocStmt>(&S))
    return A->isInLoop();
  if (const auto *A = dyn_cast<ArrayAllocStmt>(&S))
    return A->isInLoop();
  if (const auto *Sp = dyn_cast<SpawnStmt>(&S))
    return Sp->isInLoop();
  return false;
}

static void printBody(const Function &F, OutputStream &OS) {
  OS << " {\n";
  for (const auto &V : F.variables()) {
    if (V->isParam() || V->getName() == "$ret")
      continue;
    OS.indent(4) << "var " << V->getName() << ": " << V->getType()->getName()
                 << ";\n";
  }
  for (const auto &S : F.body()) {
    bool Loop = isInLoop(*S);
    OS.indent(4);
    if (Loop)
      OS << "loop { ";
    printStmt(*S, OS);
    OS << ';';
    if (Loop)
      OS << " }";
    OS << '\n';
  }
  OS.indent(2) << "}\n";
}

static void printSignature(const Function &F, OutputStream &OS) {
  OS << F.getName() << '(';
  bool FirstParam = true;
  for (const Variable *P : F.params()) {
    if (F.isMethod() && P == F.params().front())
      continue; // 'this' is implicit
    if (!FirstParam)
      OS << ", ";
    FirstParam = false;
    OS << P->getName() << ": " << P->getType()->getName();
  }
  OS << ')';
  if (F.getReturnType())
    OS << ": " << F.getReturnType()->getName();
}

void o2::printModule(const Module &M, OutputStream &OS) {
  for (const auto &G : M.globals()) {
    OS << "global " << G->getName() << ": " << G->getType()->getName();
    if (G->isAtomic())
      OS << " atomic";
    OS << ";\n";
  }
  if (!M.globals().empty())
    OS << '\n';

  for (const auto &C : M.classes()) {
    OS << "class " << C->getName();
    if (C->getSuper())
      OS << " extends " << C->getSuper()->getName();
    OS << " {\n";
    for (const auto &Fld : C->fields()) {
      OS.indent(2) << "field " << Fld->getName() << ": "
                   << Fld->getType()->getName();
      if (Fld->isAtomic())
        OS << " atomic";
      OS << ";\n";
    }
    for (const Function *Method : C->methods()) {
      OS.indent(2) << "method ";
      printSignature(*Method, OS);
      printBody(*Method, OS);
    }
    OS << "}\n\n";
  }

  for (const auto &F : M.functions()) {
    if (F->isMethod())
      continue;
    OS << "func ";
    printSignature(*F, OS);
    OS << " {\n";
    for (const auto &V : F->variables()) {
      if (V->isParam() || V->getName() == "$ret")
        continue;
      OS.indent(4) << "var " << V->getName() << ": "
                   << V->getType()->getName() << ";\n";
    }
    for (const auto &S : F->body()) {
      bool Loop = isInLoop(*S);
      OS.indent(4);
      if (Loop)
        OS << "loop { ";
      printStmt(*S, OS);
      OS << ';';
      if (Loop)
        OS << " }";
      OS << '\n';
    }
    OS << "}\n\n";
  }
}

std::string o2::printModule(const Module &M) {
  std::string Buf;
  StringOutputStream OS(Buf);
  printModule(M, OS);
  return Buf;
}
