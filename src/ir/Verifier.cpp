//===- Verifier.cpp - OIR structural checks ---------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Verifier.h"

#include "o2/IR/Module.h"
#include "o2/IR/Printer.h"
#include "o2/Support/Casting.h"

#include <vector>

using namespace o2;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Module &M, std::vector<std::string> &Errors)
      : M(M), Errors(Errors) {}

  bool run() {
    size_t Before = Errors.size();
    checkEntryPoint();
    for (const auto &F : M.functions())
      checkFunction(*F);
    return Errors.size() == Before;
  }

private:
  void error(const Function &F, const Stmt *S, const std::string &Msg) {
    std::string Full = "in " + qualifiedName(F);
    if (S)
      Full += ", at '" + printStmt(*S) + "'";
    Full += ": " + Msg;
    Errors.push_back(std::move(Full));
  }

  static std::string qualifiedName(const Function &F) {
    if (F.getClass())
      return F.getClass()->getName() + "::" + F.getName();
    return F.getName();
  }

  void checkEntryPoint() {
    const Function *Main = M.getMain();
    if (!Main) {
      Errors.push_back("module has no 'main' function");
      return;
    }
    if (!Main->params().empty())
      Errors.push_back("'main' must take no parameters");
  }

  /// Checks that \p V is a variable of \p F.
  bool owned(const Function &F, const Variable *V, const Stmt *S,
             const char *Role) {
    if (!V) {
      error(F, S, std::string("null ") + Role + " variable");
      return false;
    }
    if (V->getFunction() != &F) {
      error(F, S, std::string(Role) + " variable '" + V->getName() +
                      "' belongs to another function");
      return false;
    }
    return true;
  }

  /// True if a value of type \p Src may be stored into storage of type
  /// \p Dst (identity, or subclass into superclass).
  static bool assignable(const Type *Src, const Type *Dst) {
    if (Src == Dst)
      return true;
    const auto *SrcC = dyn_cast<ClassType>(Src);
    const auto *DstC = dyn_cast<ClassType>(Dst);
    return SrcC && DstC && SrcC->isSubclassOf(DstC);
  }

  void checkAssignable(const Function &F, const Stmt &S, const Type *Src,
                       const Type *Dst, const char *What) {
    if (!assignable(Src, Dst))
      error(F, &S, std::string(What) + ": cannot store '" + Src->getName() +
                       "' into '" + Dst->getName() + "'");
  }

  void checkFunction(const Function &F) {
    if (F.isMethod()) {
      if (F.params().empty() || F.params()[0]->getName() != "this")
        error(F, nullptr, "method lacks implicit 'this' parameter");
      else if (F.params()[0]->getType() != F.getClass() &&
               !(isa<ClassType>(F.params()[0]->getType()) &&
                 cast<ClassType>(F.getClass())
                     ->isSubclassOf(cast<ClassType>(F.params()[0]->getType()))))
        error(F, nullptr, "'this' parameter type mismatch");
    }

    std::vector<const Variable *> LockStack;
    for (const auto &SPtr : F.body()) {
      const Stmt &S = *SPtr;
      checkStmt(F, S, LockStack);
    }
    if (!LockStack.empty())
      error(F, nullptr, "unbalanced lock region: " +
                            std::to_string(LockStack.size()) +
                            " acquire(s) without release");
  }

  void checkCallArity(const Function &F, const Stmt &S,
                      const Function &Callee, size_t NumArgs,
                      bool HasReceiver) {
    size_t Expected = Callee.params().size() - (HasReceiver ? 1 : 0);
    if (NumArgs != Expected)
      error(F, &S, "call to '" + qualifiedName(Callee) + "' passes " +
                       std::to_string(NumArgs) + " argument(s), expected " +
                       std::to_string(Expected));
  }

  void checkStmt(const Function &F, const Stmt &S,
                 std::vector<const Variable *> &LockStack) {
    switch (S.getKind()) {
    case Stmt::SK_Alloc: {
      const auto &A = cast<AllocStmt>(S);
      if (!owned(F, A.getTarget(), &S, "target"))
        return;
      checkAssignable(F, S, A.getAllocType(), A.getTarget()->getType(),
                      "alloc");
      for (const Variable *Arg : A.getArgs())
        owned(F, Arg, &S, "argument");
      if (Function *Init = A.getAllocType()->findMethod("init")) {
        checkCallArity(F, S, *Init, A.getArgs().size(), /*HasReceiver=*/true);
      } else if (!A.getArgs().empty()) {
        error(F, &S, "constructor arguments but class '" +
                         A.getAllocType()->getName() + "' has no 'init'");
      }
      return;
    }
    case Stmt::SK_ArrayAlloc: {
      const auto &A = cast<ArrayAllocStmt>(S);
      if (!owned(F, A.getTarget(), &S, "target"))
        return;
      checkAssignable(F, S, A.getAllocType(), A.getTarget()->getType(),
                      "array alloc");
      return;
    }
    case Stmt::SK_Assign: {
      const auto &A = cast<AssignStmt>(S);
      if (!owned(F, A.getTarget(), &S, "target") ||
          !owned(F, A.getSource(), &S, "source"))
        return;
      checkAssignable(F, S, A.getSource()->getType(),
                      A.getTarget()->getType(), "assign");
      return;
    }
    case Stmt::SK_FieldLoad: {
      const auto &L = cast<FieldLoadStmt>(S);
      if (!owned(F, L.getTarget(), &S, "target") ||
          !owned(F, L.getBase(), &S, "base"))
        return;
      checkFieldAccess(F, S, L.getBase(), L.getField());
      checkAssignable(F, S, L.getField()->getType(),
                      L.getTarget()->getType(), "field load");
      return;
    }
    case Stmt::SK_FieldStore: {
      const auto &St = cast<FieldStoreStmt>(S);
      if (!owned(F, St.getBase(), &S, "base") ||
          !owned(F, St.getSource(), &S, "source"))
        return;
      checkFieldAccess(F, S, St.getBase(), St.getField());
      checkAssignable(F, S, St.getSource()->getType(),
                      St.getField()->getType(), "field store");
      return;
    }
    case Stmt::SK_ArrayLoad: {
      const auto &L = cast<ArrayLoadStmt>(S);
      if (!owned(F, L.getTarget(), &S, "target") ||
          !owned(F, L.getBase(), &S, "base"))
        return;
      if (const auto *AT = dyn_cast<ArrayType>(L.getBase()->getType()))
        checkAssignable(F, S, AT->getElementType(), L.getTarget()->getType(),
                        "array load");
      else
        error(F, &S, "array load from non-array variable");
      return;
    }
    case Stmt::SK_ArrayStore: {
      const auto &St = cast<ArrayStoreStmt>(S);
      if (!owned(F, St.getBase(), &S, "base") ||
          !owned(F, St.getSource(), &S, "source"))
        return;
      if (const auto *AT = dyn_cast<ArrayType>(St.getBase()->getType()))
        checkAssignable(F, S, St.getSource()->getType(), AT->getElementType(),
                        "array store");
      else
        error(F, &S, "array store to non-array variable");
      return;
    }
    case Stmt::SK_GlobalLoad: {
      const auto &L = cast<GlobalLoadStmt>(S);
      if (!owned(F, L.getTarget(), &S, "target"))
        return;
      checkAssignable(F, S, L.getGlobal()->getType(),
                      L.getTarget()->getType(), "global load");
      return;
    }
    case Stmt::SK_GlobalStore: {
      const auto &St = cast<GlobalStoreStmt>(S);
      if (!owned(F, St.getSource(), &S, "source"))
        return;
      checkAssignable(F, S, St.getSource()->getType(),
                      St.getGlobal()->getType(), "global store");
      return;
    }
    case Stmt::SK_Call: {
      const auto &C = cast<CallStmt>(S);
      if (C.getTarget())
        owned(F, C.getTarget(), &S, "target");
      for (const Variable *Arg : C.getArgs())
        owned(F, Arg, &S, "argument");
      if (C.isVirtual()) {
        if (!owned(F, C.getReceiver(), &S, "receiver"))
          return;
        const auto *RC = dyn_cast<ClassType>(C.getReceiver()->getType());
        if (!RC) {
          error(F, &S, "virtual call on non-class receiver");
          return;
        }
        Function *Target = RC->findMethod(C.getMethodName());
        if (!Target) {
          error(F, &S, "class '" + RC->getName() + "' has no method '" +
                           C.getMethodName() + "'");
          return;
        }
        checkCallArity(F, S, *Target, C.getArgs().size(),
                       /*HasReceiver=*/true);
      } else {
        if (!C.getDirectCallee()) {
          error(F, &S, "direct call with null callee");
          return;
        }
        checkCallArity(F, S, *C.getDirectCallee(), C.getArgs().size(),
                       /*HasReceiver=*/false);
      }
      return;
    }
    case Stmt::SK_Spawn: {
      const auto &Sp = cast<SpawnStmt>(S);
      if (!owned(F, Sp.getReceiver(), &S, "receiver"))
        return;
      for (const Variable *Arg : Sp.getArgs())
        owned(F, Arg, &S, "argument");
      const auto *RC = dyn_cast<ClassType>(Sp.getReceiver()->getType());
      if (!RC) {
        error(F, &S, "spawn on non-class receiver");
        return;
      }
      Function *Entry = RC->findMethod(Sp.getEntryName());
      if (!Entry) {
        error(F, &S, "class '" + RC->getName() + "' has no entry method '" +
                         Sp.getEntryName() + "'");
        return;
      }
      checkCallArity(F, S, *Entry, Sp.getArgs().size(), /*HasReceiver=*/true);
      return;
    }
    case Stmt::SK_Join: {
      const auto &J = cast<JoinStmt>(S);
      if (owned(F, J.getReceiver(), &S, "receiver") &&
          !isa<ClassType>(J.getReceiver()->getType()))
        error(F, &S, "join on non-class receiver");
      return;
    }
    case Stmt::SK_Acquire: {
      const auto &A = cast<AcquireStmt>(S);
      if (owned(F, A.getLock(), &S, "lock")) {
        if (!A.getLock()->getType()->isReference())
          error(F, &S, "lock variable must have reference type");
        LockStack.push_back(A.getLock());
      }
      return;
    }
    case Stmt::SK_Release: {
      const auto &R = cast<ReleaseStmt>(S);
      if (!owned(F, R.getLock(), &S, "lock"))
        return;
      if (LockStack.empty()) {
        error(F, &S, "release without matching acquire");
        return;
      }
      if (LockStack.back() != R.getLock())
        error(F, &S, "lock regions are not well nested (expected release of '" +
                         LockStack.back()->getName() + "')");
      LockStack.pop_back();
      return;
    }
    case Stmt::SK_Return: {
      const auto &R = cast<ReturnStmt>(S);
      if (R.getValue()) {
        if (!owned(F, R.getValue(), &S, "return value"))
          return;
        if (!F.getReturnType())
          error(F, &S, "value returned from void function");
        else
          checkAssignable(F, S, R.getValue()->getType(), F.getReturnType(),
                          "return");
      }
      return;
    }
    }
    O2_UNREACHABLE("covered switch");
  }

  void checkFieldAccess(const Function &F, const Stmt &S,
                        const Variable *Base, const Field *Fld) {
    const auto *BC = dyn_cast<ClassType>(Base->getType());
    if (!BC) {
      error(F, &S, "field access on non-class variable");
      return;
    }
    if (!Fld) {
      error(F, &S, "null field");
      return;
    }
    if (!BC->isSubclassOf(Fld->getParent()) &&
        !Fld->getParent()->isSubclassOf(BC))
      error(F, &S, "field '" + Fld->getName() +
                       "' is not declared on the base's class hierarchy");
  }

  const Module &M;
  std::vector<std::string> &Errors;
};

} // namespace

bool o2::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  return VerifierImpl(M, Errors).run();
}
