//===- IRBuilder.cpp - Convenience IR construction -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/IR/IRBuilder.h"

#include "o2/Support/Casting.h"

using namespace o2;

static SmallVector<Variable *, 4> toVector(ArrayRef<Variable *> Args) {
  return SmallVector<Variable *, 4>(Args.begin(), Args.end());
}

/// Resolves a field by name through the static type of \p Base. Fields are
/// not overridable, so resolution through the static type yields the same
/// declared Field as resolution through any dynamic subclass.
static Field *resolveField(Variable *Base, const std::string &FieldName) {
  auto *C = dyn_cast<ClassType>(Base->getType());
  assert(C && "field access base must have class type");
  Field *Fld = C->findField(FieldName);
  assert(Fld && "no such field on the base's static type");
  return Fld;
}

AllocStmt *IRBuilder::alloc(Variable *Target, ClassType *C,
                            ArrayRef<Variable *> Args) {
  auto S = std::make_unique<AllocStmt>(F, M.takeStmtId(), nextIndex(), Target,
                                       C, toVector(Args), M.takeAllocSite(),
                                       inLoop());
  return cast<AllocStmt>(F->append(std::move(S)));
}

ArrayAllocStmt *IRBuilder::allocArray(Variable *Target, ArrayType *Ty) {
  auto S = std::make_unique<ArrayAllocStmt>(
      F, M.takeStmtId(), nextIndex(), Target, Ty, M.takeAllocSite(), inLoop());
  return cast<ArrayAllocStmt>(F->append(std::move(S)));
}

AssignStmt *IRBuilder::assign(Variable *Target, Variable *Source) {
  auto S = std::make_unique<AssignStmt>(F, M.takeStmtId(), nextIndex(), Target,
                                        Source);
  return cast<AssignStmt>(F->append(std::move(S)));
}

FieldLoadStmt *IRBuilder::fieldLoad(Variable *Target, Variable *Base,
                                    const std::string &FieldName) {
  return fieldLoad(Target, Base, resolveField(Base, FieldName));
}

FieldLoadStmt *IRBuilder::fieldLoad(Variable *Target, Variable *Base,
                                    Field *Fld) {
  auto S = std::make_unique<FieldLoadStmt>(F, M.takeStmtId(), nextIndex(),
                                           Target, Base, Fld);
  return cast<FieldLoadStmt>(F->append(std::move(S)));
}

FieldStoreStmt *IRBuilder::fieldStore(Variable *Base,
                                      const std::string &FieldName,
                                      Variable *Source) {
  return fieldStore(Base, resolveField(Base, FieldName), Source);
}

FieldStoreStmt *IRBuilder::fieldStore(Variable *Base, Field *Fld,
                                      Variable *Source) {
  auto S = std::make_unique<FieldStoreStmt>(F, M.takeStmtId(), nextIndex(),
                                            Base, Fld, Source);
  return cast<FieldStoreStmt>(F->append(std::move(S)));
}

ArrayLoadStmt *IRBuilder::arrayLoad(Variable *Target, Variable *Base) {
  auto S = std::make_unique<ArrayLoadStmt>(F, M.takeStmtId(), nextIndex(),
                                           Target, Base);
  return cast<ArrayLoadStmt>(F->append(std::move(S)));
}

ArrayStoreStmt *IRBuilder::arrayStore(Variable *Base, Variable *Source) {
  auto S = std::make_unique<ArrayStoreStmt>(F, M.takeStmtId(), nextIndex(),
                                            Base, Source);
  return cast<ArrayStoreStmt>(F->append(std::move(S)));
}

GlobalLoadStmt *IRBuilder::globalLoad(Variable *Target, Global *G) {
  auto S = std::make_unique<GlobalLoadStmt>(F, M.takeStmtId(), nextIndex(),
                                            Target, G);
  return cast<GlobalLoadStmt>(F->append(std::move(S)));
}

GlobalStoreStmt *IRBuilder::globalStore(Global *G, Variable *Source) {
  auto S = std::make_unique<GlobalStoreStmt>(F, M.takeStmtId(), nextIndex(), G,
                                             Source);
  return cast<GlobalStoreStmt>(F->append(std::move(S)));
}

CallStmt *IRBuilder::call(Variable *Target, Variable *Receiver,
                          const std::string &MethodName,
                          ArrayRef<Variable *> Args) {
  assert(Receiver && "virtual call requires a receiver");
  auto S = std::make_unique<CallStmt>(F, M.takeStmtId(), nextIndex(), Target,
                                      Receiver, MethodName,
                                      /*DirectCallee=*/nullptr, toVector(Args),
                                      M.takeCallSite());
  return cast<CallStmt>(F->append(std::move(S)));
}

CallStmt *IRBuilder::callDirect(Variable *Target, Function *Callee,
                                ArrayRef<Variable *> Args) {
  assert(Callee && "direct call requires a callee");
  auto S = std::make_unique<CallStmt>(F, M.takeStmtId(), nextIndex(), Target,
                                      /*Receiver=*/nullptr, Callee->getName(),
                                      Callee, toVector(Args),
                                      M.takeCallSite());
  return cast<CallStmt>(F->append(std::move(S)));
}

SpawnStmt *IRBuilder::spawn(Variable *Receiver, const std::string &EntryName,
                            ArrayRef<Variable *> Args) {
  auto S = std::make_unique<SpawnStmt>(F, M.takeStmtId(), nextIndex(),
                                       Receiver, EntryName, toVector(Args),
                                       M.takeCallSite(), inLoop());
  return cast<SpawnStmt>(F->append(std::move(S)));
}

JoinStmt *IRBuilder::join(Variable *Receiver) {
  auto S =
      std::make_unique<JoinStmt>(F, M.takeStmtId(), nextIndex(), Receiver);
  return cast<JoinStmt>(F->append(std::move(S)));
}

AcquireStmt *IRBuilder::acquire(Variable *Lock) {
  auto S = std::make_unique<AcquireStmt>(F, M.takeStmtId(), nextIndex(), Lock);
  return cast<AcquireStmt>(F->append(std::move(S)));
}

ReleaseStmt *IRBuilder::release(Variable *Lock) {
  auto S = std::make_unique<ReleaseStmt>(F, M.takeStmtId(), nextIndex(), Lock);
  return cast<ReleaseStmt>(F->append(std::move(S)));
}

ReturnStmt *IRBuilder::ret(Variable *Value) {
  auto S = std::make_unique<ReturnStmt>(F, M.takeStmtId(), nextIndex(), Value);
  return cast<ReturnStmt>(F->append(std::move(S)));
}
