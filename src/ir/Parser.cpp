//===- Parser.cpp - Textual OIR parser -------------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// The parser runs in three passes over a pre-lexed token stream:
//   1. register every class name (with its super's name) and skip bodies;
//   2. parse globals, class fields, and method/function signatures;
//   3. parse method/function bodies.
// This allows forward references between all top-level entities.
//
//===----------------------------------------------------------------------===//

#include "o2/IR/Parser.h"

#include "o2/IR/IRBuilder.h"
#include "o2/Support/Casting.h"

#include <cctype>
#include <map>
#include <vector>

using namespace o2;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind : uint8_t {
  Ident,
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Colon,
  Semi,
  Comma,
  Dot,
  Equal,
  At,
  Star,
  Eof,
};

struct Token {
  TokKind Kind;
  std::string_view Text;
  unsigned Line;
  unsigned Col;
};

class Lexer {
public:
  explicit Lexer(std::string_view Src) : Src(Src) {}

  /// Lexes the whole input; returns false and sets \p Error on a bad char.
  bool lexAll(std::vector<Token> &Out, std::string &Error) {
    while (true) {
      skipWhitespaceAndComments();
      if (Pos >= Src.size()) {
        Out.push_back({TokKind::Eof, "", Line, Col});
        return true;
      }
      char C = Src[Pos];
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
          C == '$') {
        Out.push_back(lexIdent());
        continue;
      }
      TokKind Kind;
      switch (C) {
      case '{': Kind = TokKind::LBrace; break;
      case '}': Kind = TokKind::RBrace; break;
      case '(': Kind = TokKind::LParen; break;
      case ')': Kind = TokKind::RParen; break;
      case '[': Kind = TokKind::LBracket; break;
      case ']': Kind = TokKind::RBracket; break;
      case ':': Kind = TokKind::Colon; break;
      case ';': Kind = TokKind::Semi; break;
      case ',': Kind = TokKind::Comma; break;
      case '.': Kind = TokKind::Dot; break;
      case '=': Kind = TokKind::Equal; break;
      case '@': Kind = TokKind::At; break;
      case '*': Kind = TokKind::Star; break;
      default:
        Error = std::to_string(Line) + ":" + std::to_string(Col) +
                ": unexpected character '" + std::string(1, C) + "'";
        return false;
      }
      Out.push_back({Kind, Src.substr(Pos, 1), Line, Col});
      advance();
    }
  }

private:
  void advance() {
    if (Src[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skipWhitespaceAndComments() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  Token lexIdent() {
    size_t Start = Pos;
    unsigned StartLine = Line, StartCol = Col;
    while (Pos < Src.size() &&
           (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
            Src[Pos] == '_' || Src[Pos] == '$'))
      advance();
    return {TokKind::Ident, Src.substr(Start, Pos - Start), StartLine,
            StartCol};
  }

  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string &Error)
      : Tokens(std::move(Tokens)), Error(Error) {}

  std::unique_ptr<Module> run(const std::string &ModuleName) {
    M = std::make_unique<Module>(ModuleName);
    if (!passRegisterClasses() || !passSignatures() || !passBodies())
      return nullptr;
    return std::move(M);
  }

private:
  // -- Token-stream helpers -------------------------------------------------

  const Token &peek(unsigned Ahead = 0) const {
    size_t Idx = Cursor + Ahead;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }

  const Token &take() {
    const Token &T = peek();
    if (T.Kind != TokKind::Eof)
      ++Cursor;
    return T;
  }

  bool at(TokKind K) const { return peek().Kind == K; }

  bool atKeyword(std::string_view KW) const {
    return peek().Kind == TokKind::Ident && peek().Text == KW;
  }

  bool consumeIf(TokKind K) {
    if (!at(K))
      return false;
    take();
    return true;
  }

  bool expect(TokKind K, const char *What) {
    if (consumeIf(K))
      return true;
    return fail(std::string("expected ") + What);
  }

  bool expectKeyword(std::string_view KW) {
    if (atKeyword(KW)) {
      take();
      return true;
    }
    return fail("expected keyword '" + std::string(KW) + "'");
  }

  bool fail(const std::string &Msg) {
    const Token &T = peek();
    Error = std::to_string(T.Line) + ":" + std::to_string(T.Col) + ": " + Msg;
    if (T.Kind == TokKind::Ident)
      Error += " (got '" + std::string(T.Text) + "')";
    return false;
  }

  /// Skips a balanced { ... } block; the cursor must be at '{'.
  bool skipBlock() {
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    unsigned Depth = 1;
    while (Depth > 0) {
      if (at(TokKind::Eof))
        return fail("unterminated block");
      TokKind K = take().Kind;
      if (K == TokKind::LBrace)
        ++Depth;
      else if (K == TokKind::RBrace)
        --Depth;
    }
    return true;
  }

  /// Skips tokens up to and including the next ';'.
  bool skipToSemi() {
    while (!at(TokKind::Eof))
      if (take().Kind == TokKind::Semi)
        return true;
    return fail("unterminated declaration");
  }

  // -- Pass 1: class names --------------------------------------------------

  bool passRegisterClasses() {
    Cursor = 0;
    while (!at(TokKind::Eof)) {
      if (atKeyword("class")) {
        take();
        if (!at(TokKind::Ident))
          return fail("expected class name");
        std::string Name(take().Text);
        if (M->findClass(Name))
          return fail("duplicate class '" + Name + "'");
        std::string SuperName;
        if (atKeyword("extends")) {
          take();
          if (!at(TokKind::Ident))
            return fail("expected superclass name");
          SuperName = std::string(take().Text);
        }
        M->addClass(Name);
        PendingSupers.emplace_back(Name, SuperName);
        if (!skipBlock())
          return false;
        continue;
      }
      if (atKeyword("global")) {
        if (!skipToSemi())
          return false;
        continue;
      }
      if (atKeyword("func")) {
        take();
        if (!at(TokKind::Ident))
          return fail("expected function name");
        take();
        if (!skipSignatureThenBlock())
          return false;
        continue;
      }
      return fail("expected 'class', 'global', or 'func'");
    }
    // Link superclasses now that every class exists.
    for (const auto &[Name, SuperName] : PendingSupers) {
      if (SuperName.empty())
        continue;
      ClassType *Super = M->findClass(SuperName);
      if (!Super) {
        Error = "unknown superclass '" + SuperName + "' of class '" + Name +
                "'";
        return false;
      }
      Supers[Name] = Super;
    }
    return true;
  }

  bool skipSignatureThenBlock() {
    if (!expect(TokKind::LParen, "'('"))
      return false;
    while (!at(TokKind::RParen)) {
      if (at(TokKind::Eof))
        return fail("unterminated parameter list");
      take();
    }
    take(); // ')'
    if (consumeIf(TokKind::Colon))
      if (!skipType())
        return false;
    return skipBlock();
  }

  bool skipType() {
    if (!at(TokKind::Ident))
      return fail("expected type");
    take();
    while (at(TokKind::LBracket)) {
      take();
      if (!expect(TokKind::RBracket, "']'"))
        return false;
    }
    return true;
  }

  // -- Type resolution ------------------------------------------------------

  Type *parseType() {
    if (!at(TokKind::Ident)) {
      fail("expected type");
      return nullptr;
    }
    std::string Name(take().Text);
    Type *Ty = nullptr;
    if (Name == "int") {
      Ty = M->getIntType();
    } else {
      Ty = M->findClass(Name);
      if (!Ty) {
        fail("unknown type '" + Name + "'");
        return nullptr;
      }
    }
    while (at(TokKind::LBracket)) {
      take();
      if (!expect(TokKind::RBracket, "']'"))
        return nullptr;
      Ty = M->getArrayType(Ty);
    }
    return Ty;
  }

  // -- Pass 2: globals, fields, signatures ----------------------------------

  bool passSignatures() {
    Cursor = 0;
    while (!at(TokKind::Eof)) {
      if (atKeyword("class")) {
        take();
        ClassType *C = M->findClass(std::string(take().Text));
        assert(C && "class registered in pass 1");
        // Re-create the super link made in pass 1.
        if (auto It = Supers.find(C->getName()); It != Supers.end())
          linkSuper(C, It->second);
        if (atKeyword("extends")) {
          take();
          take();
        }
        if (!expect(TokKind::LBrace, "'{'"))
          return false;
        while (!consumeIf(TokKind::RBrace)) {
          if (atKeyword("field")) {
            if (!parseFieldDecl(C))
              return false;
          } else if (atKeyword("method")) {
            if (!parseCallableSignature(C))
              return false;
          } else {
            return fail("expected 'field' or 'method'");
          }
        }
        continue;
      }
      if (atKeyword("global")) {
        take();
        if (!at(TokKind::Ident))
          return fail("expected global name");
        std::string Name(take().Text);
        if (M->findGlobal(Name))
          return fail("duplicate global '" + Name + "'");
        if (!expect(TokKind::Colon, "':'"))
          return false;
        Type *Ty = parseType();
        if (!Ty)
          return false;
        bool IsAtomic = false;
        if (atKeyword("atomic")) {
          take();
          IsAtomic = true;
        }
        M->addGlobal(Name, Ty, IsAtomic);
        if (!expect(TokKind::Semi, "';'"))
          return false;
        continue;
      }
      if (atKeyword("func")) {
        if (!parseCallableSignature(nullptr))
          return false;
        continue;
      }
      O2_UNREACHABLE("pass 1 validated top-level structure");
    }
    return true;
  }

  void linkSuper(ClassType *C, ClassType *Super) {
    // ClassType's super is set at construction; pass 1 could not know it
    // yet, so Module::addClass created the class with a null super and we
    // patch it here through a friend-free back door: recreate field/method
    // lookup via an explicit map consulted by this parser only.
    //
    // To keep the IR immutable-after-construction, Module::addClass is
    // instead called with the resolved super here in pass 2 -- but the
    // class already exists. The clean solution is a setter; see
    // ClassType::setSuperForParser.
    C->setSuperForParser(Super);
  }

  bool parseFieldDecl(ClassType *C) {
    expectKeyword("field");
    if (!at(TokKind::Ident))
      return fail("expected field name");
    std::string Name(take().Text);
    if (C->findField(Name))
      return fail("duplicate field '" + Name + "'");
    if (!expect(TokKind::Colon, "':'"))
      return false;
    Type *Ty = parseType();
    if (!Ty)
      return false;
    bool IsAtomic = false;
    if (atKeyword("atomic")) {
      take();
      IsAtomic = true;
    }
    C->addField(Name, Ty, IsAtomic);
    return expect(TokKind::Semi, "';'");
  }

  /// Parses a 'method' or 'func' signature, creating the Function with its
  /// parameters, then skips the body (parsed in pass 3).
  bool parseCallableSignature(ClassType *C) {
    take(); // 'method' or 'func'
    if (!at(TokKind::Ident))
      return fail("expected function name");
    std::string Name(take().Text);
    if (!C && M->findFunction(Name))
      return fail("duplicate function '" + Name + "'");
    if (C)
      for (Function *Existing : C->methods())
        if (Existing->getName() == Name)
          return fail("duplicate method '" + Name + "'");

    if (!expect(TokKind::LParen, "'('"))
      return false;
    struct Param {
      std::string Name;
      Type *Ty;
    };
    std::vector<Param> Params;
    if (!at(TokKind::RParen)) {
      do {
        if (!at(TokKind::Ident))
          return fail("expected parameter name");
        std::string PName(take().Text);
        if (!expect(TokKind::Colon, "':'"))
          return false;
        Type *PTy = parseType();
        if (!PTy)
          return false;
        Params.push_back({std::move(PName), PTy});
      } while (consumeIf(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "')'"))
      return false;
    Type *RetTy = nullptr;
    if (consumeIf(TokKind::Colon)) {
      RetTy = parseType();
      if (!RetTy)
        return false;
    }

    Function *F = M->addFunction(Name, RetTy);
    if (C) {
      C->addMethod(F);
      F->addParam("this", C);
    }
    for (const Param &P : Params)
      F->addParam(P.Name, P.Ty);
    BodyOrder.push_back(F);
    return skipBlock();
  }

  // -- Pass 3: bodies -------------------------------------------------------

  bool passBodies() {
    Cursor = 0;
    size_t NextBody = 0;
    while (!at(TokKind::Eof)) {
      if (atKeyword("class")) {
        take();
        take(); // name
        if (atKeyword("extends")) {
          take();
          take();
        }
        if (!expect(TokKind::LBrace, "'{'"))
          return false;
        while (!consumeIf(TokKind::RBrace)) {
          if (atKeyword("field")) {
            if (!skipToSemi())
              return false;
          } else {
            if (!skipCallableHead())
              return false;
            if (!parseBody(BodyOrder[NextBody++]))
              return false;
          }
        }
        continue;
      }
      if (atKeyword("global")) {
        if (!skipToSemi())
          return false;
        continue;
      }
      // func
      if (!skipCallableHead())
        return false;
      if (!parseBody(BodyOrder[NextBody++]))
        return false;
    }
    return true;
  }

  /// Skips 'method'/'func' NAME (params) [: type], stopping at '{'.
  bool skipCallableHead() {
    take(); // 'method' or 'func'
    take(); // name
    if (!expect(TokKind::LParen, "'('"))
      return false;
    while (!at(TokKind::RParen))
      take();
    take();
    if (consumeIf(TokKind::Colon))
      if (!skipType())
        return false;
    return true;
  }

  bool parseBody(Function *F) {
    IRBuilder B(*M, F);
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    return parseStmtsUntilRBrace(B, F);
  }

  bool parseStmtsUntilRBrace(IRBuilder &B, Function *F) {
    while (!consumeIf(TokKind::RBrace)) {
      if (at(TokKind::Eof))
        return fail("unterminated body");
      if (!parseStmt(B, F))
        return false;
    }
    return true;
  }

  Variable *lookupVar(Function *F, const Token &T) {
    Variable *V = F->findVariable(std::string(T.Text));
    if (!V) {
      Error = std::to_string(T.Line) + ":" + std::to_string(T.Col) +
              ": unknown variable '" + std::string(T.Text) + "'";
    }
    return V;
  }

  /// Parses "(a, b, c)" into variables of \p F.
  bool parseArgs(Function *F, SmallVectorImpl<Variable *> &Args) {
    if (!expect(TokKind::LParen, "'('"))
      return false;
    if (!at(TokKind::RParen)) {
      do {
        if (!at(TokKind::Ident))
          return fail("expected argument variable");
        Variable *V = lookupVar(F, take());
        if (!V)
          return false;
        Args.push_back(V);
      } while (consumeIf(TokKind::Comma));
    }
    return expect(TokKind::RParen, "')'");
  }

  bool parseStmt(IRBuilder &B, Function *F) {
    // Keyword statements.
    if (atKeyword("var")) {
      take();
      if (!at(TokKind::Ident))
        return fail("expected variable name");
      std::string Name(take().Text);
      if (F->findVariable(Name))
        return fail("duplicate variable '" + Name + "'");
      if (!expect(TokKind::Colon, "':'"))
        return false;
      Type *Ty = parseType();
      if (!Ty)
        return false;
      F->addLocal(Name, Ty);
      return expect(TokKind::Semi, "';'");
    }
    if (atKeyword("loop")) {
      take();
      if (!expect(TokKind::LBrace, "'{'"))
        return false;
      B.beginLoop();
      if (!parseStmtsUntilRBrace(B, F))
        return false;
      B.endLoop();
      return true;
    }
    if (atKeyword("spawn")) {
      take();
      if (!at(TokKind::Ident))
        return fail("expected spawn receiver");
      Variable *Recv = lookupVar(F, take());
      if (!Recv)
        return false;
      if (!expect(TokKind::Dot, "'.'"))
        return false;
      if (!at(TokKind::Ident))
        return fail("expected entry method name");
      std::string Entry(take().Text);
      SmallVector<Variable *, 4> Args;
      if (!parseArgs(F, Args))
        return false;
      B.spawn(Recv, Entry, Args);
      return expect(TokKind::Semi, "';'");
    }
    if (atKeyword("join")) {
      take();
      if (!at(TokKind::Ident))
        return fail("expected join receiver");
      Variable *Recv = lookupVar(F, take());
      if (!Recv)
        return false;
      B.join(Recv);
      return expect(TokKind::Semi, "';'");
    }
    if (atKeyword("acquire") || atKeyword("release")) {
      bool IsAcquire = peek().Text == "acquire";
      take();
      if (!at(TokKind::Ident))
        return fail("expected lock variable");
      Variable *L = lookupVar(F, take());
      if (!L)
        return false;
      if (IsAcquire)
        B.acquire(L);
      else
        B.release(L);
      return expect(TokKind::Semi, "';'");
    }
    if (atKeyword("return")) {
      take();
      Variable *V = nullptr;
      if (at(TokKind::Ident)) {
        V = lookupVar(F, take());
        if (!V)
          return false;
      }
      B.ret(V);
      return expect(TokKind::Semi, "';'");
    }
    // Global store: @g = x;
    if (at(TokKind::At)) {
      take();
      if (!at(TokKind::Ident))
        return fail("expected global name");
      std::string GName(take().Text);
      Global *G = M->findGlobal(GName);
      if (!G)
        return fail("unknown global '" + GName + "'");
      if (!expect(TokKind::Equal, "'='"))
        return false;
      if (!at(TokKind::Ident))
        return fail("expected source variable");
      Variable *Src = lookupVar(F, take());
      if (!Src)
        return false;
      B.globalStore(G, Src);
      return expect(TokKind::Semi, "';'");
    }

    // Remaining forms start with an identifier.
    if (!at(TokKind::Ident))
      return fail("expected statement");
    Token First = take();

    // ID . ID ( ... ) ;     virtual call, result dropped
    // ID . ID = ID ;        field store
    // ID . ID missing '='   error
    if (at(TokKind::Dot)) {
      take();
      if (!at(TokKind::Ident))
        return fail("expected member name");
      Token Member = take();
      Variable *Base = lookupVar(F, First);
      if (!Base)
        return false;
      if (at(TokKind::LParen)) {
        SmallVector<Variable *, 4> Args;
        if (!parseArgs(F, Args))
          return false;
        if (!makeVirtualCall(B, nullptr, Base, std::string(Member.Text), Args))
          return false;
        return expect(TokKind::Semi, "';'");
      }
      if (!expect(TokKind::Equal, "'='"))
        return false;
      if (!at(TokKind::Ident))
        return fail("expected source variable");
      Variable *Src = lookupVar(F, take());
      if (!Src)
        return false;
      Field *Fld = resolveFieldOrFail(Base, Member);
      if (!Fld)
        return false;
      B.fieldStore(Base, Fld, Src);
      return expect(TokKind::Semi, "';'");
    }

    // ID [ * ] = ID ;       array store
    if (at(TokKind::LBracket)) {
      take();
      if (!expect(TokKind::Star, "'*'") || !expect(TokKind::RBracket, "']'") ||
          !expect(TokKind::Equal, "'='"))
        return false;
      Variable *Base = lookupVar(F, First);
      if (!Base)
        return false;
      if (!at(TokKind::Ident))
        return fail("expected source variable");
      Variable *Src = lookupVar(F, take());
      if (!Src)
        return false;
      B.arrayStore(Base, Src);
      return expect(TokKind::Semi, "';'");
    }

    // ID ( ... ) ;           direct call, result dropped
    if (at(TokKind::LParen)) {
      SmallVector<Variable *, 4> Args;
      if (!parseArgs(F, Args))
        return false;
      Function *Callee = M->findFunction(std::string(First.Text));
      if (!Callee)
        return fail("unknown function '" + std::string(First.Text) + "'");
      B.callDirect(nullptr, Callee, Args);
      return expect(TokKind::Semi, "';'");
    }

    // ID = rhs ;
    if (!expect(TokKind::Equal, "'='"))
      return false;
    Variable *Target = lookupVar(F, First);
    if (!Target)
      return false;
    if (!parseRhs(B, F, Target))
      return false;
    return expect(TokKind::Semi, "';'");
  }

  Field *resolveFieldOrFail(Variable *Base, const Token &Member) {
    auto *C = dyn_cast<ClassType>(Base->getType());
    if (!C) {
      Error = std::to_string(Member.Line) + ":" + std::to_string(Member.Col) +
              ": field access on non-class variable '" + Base->getName() +
              "'";
      return nullptr;
    }
    Field *Fld = C->findField(std::string(Member.Text));
    if (!Fld) {
      Error = std::to_string(Member.Line) + ":" + std::to_string(Member.Col) +
              ": class '" + C->getName() + "' has no field '" +
              std::string(Member.Text) + "'";
    }
    return Fld;
  }

  bool makeVirtualCall(IRBuilder &B, Variable *Target, Variable *Base,
                       const std::string &MethodName,
                       const SmallVectorImpl<Variable *> &Args) {
    auto *C = dyn_cast<ClassType>(Base->getType());
    if (!C)
      return fail("virtual call on non-class variable '" + Base->getName() +
                  "'");
    B.call(Target, Base,
           MethodName, ArrayRef<Variable *>(Args.data(), Args.size()));
    return true;
  }

  bool parseRhs(IRBuilder &B, Function *F, Variable *Target) {
    if (atKeyword("new")) {
      take();
      if (!at(TokKind::Ident))
        return fail("expected class name after 'new'");
      std::string CName(take().Text);
      ClassType *C = M->findClass(CName);
      if (!C)
        return fail("unknown class '" + CName + "'");
      SmallVector<Variable *, 4> Args;
      if (at(TokKind::LParen))
        if (!parseArgs(F, Args))
          return false;
      B.alloc(Target, C, ArrayRef<Variable *>(Args.data(), Args.size()));
      return true;
    }
    if (atKeyword("newarray")) {
      take();
      Type *Elem = parseType();
      if (!Elem)
        return false;
      B.allocArray(Target, M->getArrayType(Elem));
      return true;
    }
    if (at(TokKind::At)) {
      take();
      if (!at(TokKind::Ident))
        return fail("expected global name");
      std::string GName(take().Text);
      Global *G = M->findGlobal(GName);
      if (!G)
        return fail("unknown global '" + GName + "'");
      B.globalLoad(Target, G);
      return true;
    }
    if (!at(TokKind::Ident))
      return fail("expected expression");
    Token First = take();

    if (at(TokKind::Dot)) {
      take();
      if (!at(TokKind::Ident))
        return fail("expected member name");
      Token Member = take();
      Variable *Base = lookupVar(F, First);
      if (!Base)
        return false;
      if (at(TokKind::LParen)) {
        SmallVector<Variable *, 4> Args;
        if (!parseArgs(F, Args))
          return false;
        return makeVirtualCall(B, Target, Base, std::string(Member.Text),
                               Args);
      }
      Field *Fld = resolveFieldOrFail(Base, Member);
      if (!Fld)
        return false;
      B.fieldLoad(Target, Base, Fld);
      return true;
    }
    if (at(TokKind::LBracket)) {
      take();
      if (!expect(TokKind::Star, "'*'") || !expect(TokKind::RBracket, "']'"))
        return false;
      Variable *Base = lookupVar(F, First);
      if (!Base)
        return false;
      B.arrayLoad(Target, Base);
      return true;
    }
    if (at(TokKind::LParen)) {
      SmallVector<Variable *, 4> Args;
      if (!parseArgs(F, Args))
        return false;
      Function *Callee = M->findFunction(std::string(First.Text));
      if (!Callee)
        return fail("unknown function '" + std::string(First.Text) + "'");
      B.callDirect(Target, Callee,
                   ArrayRef<Variable *>(Args.data(), Args.size()));
      return true;
    }
    // Plain copy.
    Variable *Src = lookupVar(F, First);
    if (!Src)
      return false;
    B.assign(Target, Src);
    return true;
  }

  std::vector<Token> Tokens;
  std::string &Error;
  size_t Cursor = 0;
  std::unique_ptr<Module> M;
  std::vector<std::pair<std::string, std::string>> PendingSupers;
  std::map<std::string, ClassType *> Supers;
  std::vector<Function *> BodyOrder;
};

} // namespace

std::unique_ptr<Module> o2::parseModule(std::string_view Source,
                                        std::string &Error,
                                        const std::string &ModuleName) {
  Lexer L(Source);
  std::vector<Token> Tokens;
  if (!L.lexAll(Tokens, Error))
    return nullptr;
  Parser P(std::move(Tokens), Error);
  return P.run(ModuleName);
}
