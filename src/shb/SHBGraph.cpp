//===- SHBGraph.cpp - Static happens-before graph -------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/SHB/SHBGraph.h"

#include "o2/Support/Casting.h"
#include "o2/Support/OutputStream.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace o2;

//===----------------------------------------------------------------------===//
// SHBGraph queries
//===----------------------------------------------------------------------===//

uint64_t SHBGraph::numAccessEvents() const {
  uint64_t N = 0;
  for (const ThreadInfo &T : Threads)
    N += T.Accesses.size();
  return N;
}

bool SHBGraph::locksetsIntersectUncached(LocksetId A, LocksetId B) const {
  if (A == InternTable::Empty || B == InternTable::Empty)
    return false;
  // Elements are interned in sorted order: linear merge.
  ArrayRef<uint32_t> EA = Locksets.get(A);
  ArrayRef<uint32_t> EB = Locksets.get(B);
  size_t I = 0, J = 0;
  while (I < EA.size() && J < EB.size()) {
    if (EA[I] == EB[J])
      return true;
    if (EA[I] < EB[J])
      ++I;
    else
      ++J;
  }
  return false;
}

bool SHBGraph::locksetsIntersect(LocksetId A, LocksetId B) const {
  if (A == B)
    return A != InternTable::Empty;
  uint64_t Key = A < B ? (uint64_t(A) << 32) | B : (uint64_t(B) << 32) | A;
  auto [It, Inserted] = IntersectCache.emplace(Key, false);
  if (Inserted)
    It->second = locksetsIntersectUncached(A, B);
  return It->second;
}

static constexpr uint32_t Unreached = ~uint32_t(0);

/// Earliest position of every thread that is ordered after (T, P).
const std::vector<uint32_t> &SHBGraph::reachFrom(unsigned T,
                                                 uint32_t P) const {
  const ThreadInfo &Src = Threads[T];
  // Reachability only changes when P crosses a spawn-edge position, so
  // bucket the cache by the index of the first spawn edge at or after P.
  size_t Bucket = std::lower_bound(Src.SpawnEdges.begin(),
                                   Src.SpawnEdges.end(), P,
                                   [](const auto &Edge, uint32_t Pos) {
                                     return Edge.first < Pos;
                                   }) -
                  Src.SpawnEdges.begin();
  auto [It, Inserted] = ReachCache.try_emplace({T, Bucket});
  if (!Inserted)
    return It->second;

  std::vector<uint32_t> &Reach = It->second;
  Reach.assign(Threads.size(), Unreached);
  Reach[T] = Bucket < Src.SpawnEdges.size() ? Src.SpawnEdges[Bucket].first
                                            : Src.NumEvents;
  // Fixpoint over spawn and join edges.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const ThreadInfo &Cur : Threads) {
      uint32_t From = Reach[Cur.Id];
      if (From == Unreached)
        continue;
      for (const auto &[Pos, Child] : Cur.SpawnEdges) {
        if (Pos < From)
          continue;
        if (Reach[Child] != 0) {
          Reach[Child] = 0;
          Changed = true;
        }
      }
      // The thread's end is reachable whenever any position is, so its
      // join edges always fire once the thread is reached.
      for (const auto &[Joiner, Pos] : Cur.Joins) {
        if (Pos < Reach[Joiner]) {
          Reach[Joiner] = Pos;
          Changed = true;
        }
      }
    }
  }
  return Reach;
}

bool SHBGraph::happensBefore(unsigned T1, uint32_t P1, unsigned T2,
                             uint32_t P2) const {
  if (T1 == T2)
    return P1 < P2; // optimization 1: integer comparison
  const std::vector<uint32_t> &Reach = reachFrom(T1, P1);
  return Reach[T2] != Unreached && Reach[T2] <= P2;
}

bool SHBGraph::happensBeforeNaive(unsigned T1, uint32_t P1, unsigned T2,
                                  uint32_t P2) const {
  if (T1 == T2)
    return P1 < P2;
  // Straw-man search over individual (thread, position) nodes.
  std::unordered_set<uint64_t> Visited;
  std::deque<std::pair<unsigned, uint32_t>> Queue;
  auto Push = [&](unsigned T, uint32_t P) {
    if (Visited.insert((uint64_t(T) << 32) | P).second)
      Queue.emplace_back(T, P);
  };
  Push(T1, P1);
  while (!Queue.empty()) {
    auto [T, P] = Queue.front();
    Queue.pop_front();
    if (T == T2 && P <= P2 && !(T == T1 && P == P1))
      return true;
    const ThreadInfo &TI = Threads[T];
    if (P + 1 < TI.NumEvents)
      Push(T, P + 1);
    for (const auto &[Pos, Child] : TI.SpawnEdges)
      if (Pos == P)
        Push(Child, 0);
    if (P + 1 >= TI.NumEvents)
      for (const auto &[Joiner, Pos] : TI.Joins)
        Push(Joiner, Pos);
  }
  return false;
}

//===----------------------------------------------------------------------===//
// SHB construction
//===----------------------------------------------------------------------===//

namespace o2 {

class SHBBuilder {
public:
  SHBBuilder(const PTAResult &PTA, const SHBOptions &Opts)
      : PTA(PTA), Opts(Opts) {}

  SHBGraph build() {
    // Main thread.
    const Function *Main = PTA.module().getMain();
    if (!Main) {
      // Only reachable when the caller skipped verification (the
      // verifier rejects main-less modules up front). An empty graph is
      // sound — no threads means nothing executes and no races — and
      // beats aborting a release-build fleet.
      G.EntryMissing = true;
      return std::move(G);
    }
    G.Threads.emplace_back();
    G.Threads[0].Entry = Main;
    Queue.push_back(0);

    while (!Queue.empty() && !G.Cancelled) {
      unsigned T = Queue.front();
      Queue.pop_front();
      traceThread(T);
    }
    resolveJoins();
    return std::move(G);
  }

private:
  struct WalkState {
    unsigned Thread;
    uint32_t Pos = 0;
    /// Lock elements per open acquire, innermost last.
    std::vector<SmallVector<uint32_t, 2>> LockStack;
    /// Implicit base lock elements (event-handler serialization).
    SmallVector<uint32_t, 1> BaseLocks;
    LocksetId CurLockset = InternTable::Empty;
    std::vector<uint32_t> RegionStack;
    std::unordered_set<uint64_t> Inlined;
    bool Truncated = false;
  };

  /// Joins recorded during tracing, resolved once all threads exist.
  struct JoinRecord {
    unsigned Thread;
    uint32_t Pos;
    BitVector RecvObjs;
  };

  void traceThread(unsigned T) {
    WalkState S;
    S.Thread = T;
    if (Opts.SerializeEventHandlers &&
        G.Threads[T].Kind == OriginKind::Event)
      S.BaseLocks.push_back(SHBGraph::UILockElem);
    recomputeLockset(S);
    const Function *Entry = G.Threads[T].Entry;
    Ctx EntryCtx = G.Threads[T].EntryCtx;
    visit(Entry, EntryCtx, S);
    G.Threads[T].NumEvents = S.Pos;
    G.Threads[T].Truncated = S.Truncated;
    // Retroactively flag accesses whose region saw a spawn/join.
    for (AccessEvent &A : G.Threads[T].Accesses)
      if (A.LockRegion != 0 && SyncRegions.count(A.LockRegion))
        A.RegionHasSync = true;
  }

  void recomputeLockset(WalkState &S) {
    SmallVector<uint32_t, 8> Elems(S.BaseLocks.begin(), S.BaseLocks.end());
    for (const auto &Held : S.LockStack)
      Elems.append(Held.begin(), Held.end());
    std::sort(Elems.begin(), Elems.end());
    Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
    S.CurLockset = G.Locksets.intern(Elems);
  }

  void markOpenRegionsSynced(const WalkState &S) {
    for (uint32_t Region : S.RegionStack)
      SyncRegions.insert(Region);
  }

  void recordAccess(WalkState &S, const Stmt &Stm, const Variable *Base,
                    FieldKey FK, Ctx C, bool IsWrite) {
    const BitVector *Pts = PTA.pts(Base, C);
    if (!Pts || Pts->none())
      return;
    AccessEvent E;
    E.Pos = S.Pos;
    E.Thread = S.Thread;
    E.S = &Stm;
    E.Lockset = S.CurLockset;
    E.LockRegion = S.RegionStack.empty() ? 0 : S.RegionStack.back();
    E.IsWrite = IsWrite;
    for (unsigned Obj : *Pts)
      E.Locs.push_back(MemLoc::field(Obj, FK));
    G.Threads[S.Thread].Accesses.push_back(std::move(E));
  }

  void recordGlobalAccess(WalkState &S, const Stmt &Stm, const Global *Gl,
                          bool IsWrite) {
    AccessEvent E;
    E.Pos = S.Pos;
    E.Thread = S.Thread;
    E.S = &Stm;
    E.Lockset = S.CurLockset;
    E.LockRegion = S.RegionStack.empty() ? 0 : S.RegionStack.back();
    E.IsWrite = IsWrite;
    E.Locs.push_back(MemLoc::global(Gl->getId()));
    G.Threads[S.Thread].Accesses.push_back(std::move(E));
  }

  void visit(const Function *F, Ctx C, WalkState &S) {
    if (S.Truncated || S.Pos >= Opts.MaxEventsPerThread) {
      S.Truncated = true;
      return;
    }
    if (!S.Inlined.insert((uint64_t(F->getId()) << 32) | C).second)
      return;

    for (const auto &StmtPtr : F->body()) {
      const Stmt &Stm = *StmtPtr;
      if (pollCancelled(Opts.Cancel)) {
        G.Cancelled = true;
        S.Truncated = true;
        return;
      }
      if (S.Pos >= Opts.MaxEventsPerThread) {
        S.Truncated = true;
        return;
      }
      switch (Stm.getKind()) {
      case Stmt::SK_FieldLoad: {
        const auto &L = cast<FieldLoadStmt>(Stm);
        recordAccess(S, Stm, L.getBase(), fieldKeyOf(L.getField()), C,
                     /*IsWrite=*/false);
        break;
      }
      case Stmt::SK_FieldStore: {
        const auto &St = cast<FieldStoreStmt>(Stm);
        recordAccess(S, Stm, St.getBase(), fieldKeyOf(St.getField()), C,
                     /*IsWrite=*/true);
        break;
      }
      case Stmt::SK_ArrayLoad:
        recordAccess(S, Stm, cast<ArrayLoadStmt>(Stm).getBase(), ArrayElemKey,
                     C, /*IsWrite=*/false);
        break;
      case Stmt::SK_ArrayStore:
        recordAccess(S, Stm, cast<ArrayStoreStmt>(Stm).getBase(),
                     ArrayElemKey, C, /*IsWrite=*/true);
        break;
      case Stmt::SK_GlobalLoad:
        recordGlobalAccess(S, Stm, cast<GlobalLoadStmt>(Stm).getGlobal(),
                           /*IsWrite=*/false);
        break;
      case Stmt::SK_GlobalStore:
        recordGlobalAccess(S, Stm, cast<GlobalStoreStmt>(Stm).getGlobal(),
                           /*IsWrite=*/true);
        break;
      case Stmt::SK_Acquire: {
        const auto &A = cast<AcquireStmt>(Stm);
        SmallVector<uint32_t, 2> Elems;
        if (const BitVector *Pts = PTA.pts(A.getLock(), C))
          for (unsigned Obj : *Pts)
            Elems.push_back(Obj);
        AcquireEvent AE;
        AE.Pos = S.Pos;
        AE.Thread = S.Thread;
        AE.S = &Stm;
        AE.HeldBefore = S.CurLockset;
        AE.Acquired = Elems;
        AE.Region = ++NextRegion;
        G.Threads[S.Thread].Acquires.push_back(std::move(AE));
        S.LockStack.push_back(std::move(Elems));
        S.RegionStack.push_back(NextRegion);
        recomputeLockset(S);
        break;
      }
      case Stmt::SK_Release:
        // The verifier guarantees balance per function body.
        if (!S.LockStack.empty()) {
          S.LockStack.pop_back();
          S.RegionStack.pop_back();
          recomputeLockset(S);
        }
        break;
      case Stmt::SK_Alloc:
      case Stmt::SK_Call:
        for (const CallTarget &T : PTA.callTargets(&Stm, C)) {
          ++S.Pos; // the call node itself
          visit(T.Callee, T.CalleeCtx, S);
        }
        break;
      case Stmt::SK_Spawn: {
        markOpenRegionsSynced(S);
        const auto &Sp = cast<SpawnStmt>(Stm);
        const auto &Targets = PTA.callTargets(&Stm, C);
        // Origin loop-duplication already models this spawn's parallelism
        // when any target receiver is a duplicated origin object.
        bool TargetsDuplicated = false;
        for (const CallTarget &T : Targets)
          TargetsDuplicated |= isAlreadyDuplicated(T);
        for (const CallTarget &T : Targets) {
          unsigned NumDups = 1;
          if (Opts.DuplicateLoopSpawns && Sp.isInLoop() && !TargetsDuplicated)
            NumDups = 2;
          for (unsigned Dup = 0; Dup != NumDups; ++Dup) {
            unsigned Child = getOrCreateThread(&Sp, C, T, Dup);
            if (Child == ~0u)
              continue;
            G.Threads[S.Thread].SpawnEdges.emplace_back(S.Pos, Child);
            G.Threads[Child].Starts.emplace_back(S.Thread, S.Pos);
          }
        }
        break;
      }
      case Stmt::SK_Join: {
        markOpenRegionsSynced(S);
        const auto &J = cast<JoinStmt>(Stm);
        if (const BitVector *Pts = PTA.pts(J.getReceiver(), C)) {
          JoinRecord Rec;
          Rec.Thread = S.Thread;
          Rec.Pos = S.Pos;
          Rec.RecvObjs = *Pts;
          JoinRecords.push_back(std::move(Rec));
        }
        break;
      }
      case Stmt::SK_ArrayAlloc:
      case Stmt::SK_Assign:
      case Stmt::SK_Return:
        break;
      }
      ++S.Pos;
    }
  }

  /// Origin-duplicated receiver objects already model loop parallelism;
  /// don't duplicate the spawn a second time.
  bool isAlreadyDuplicated(const CallTarget &T) const {
    return T.ReceiverObj != ~0u &&
           PTA.object(T.ReceiverObj).DupIndex > 0;
  }

  unsigned getOrCreateThread(const SpawnStmt *Sp, Ctx SpawnCtx,
                             const CallTarget &T, unsigned Dup) {
    std::tuple<unsigned, Ctx, const Function *, Ctx, unsigned, unsigned> Key{
        Sp->getId(), SpawnCtx, T.Callee, T.CalleeCtx, T.ReceiverObj, Dup};
    auto It = ThreadKeys.find(Key);
    if (It != ThreadKeys.end())
      return It->second;
    if (G.Threads.size() >= Opts.MaxThreads)
      return ~0u;
    unsigned Id = static_cast<unsigned>(G.Threads.size());
    G.Threads.emplace_back();
    ThreadInfo &TI = G.Threads.back();
    TI.Id = Id;
    TI.Kind = kindOfEntry(Sp->getEntryName());
    TI.Entry = T.Callee;
    TI.EntryCtx = T.CalleeCtx;
    TI.Spawn = Sp;
    TI.RecvObj = T.ReceiverObj;
    TI.Dup = Dup;
    ThreadKeys.emplace(Key, Id);
    Queue.push_back(Id);
    return Id;
  }

  OriginKind kindOfEntry(const std::string &EntryName) const {
    const OriginSpec &Spec = PTA.options().Spec;
    return Spec.isEntry(EntryName) ? Spec.kindOf(EntryName)
                                   : OriginKind::Thread;
  }

  void resolveJoins() {
    for (const JoinRecord &Rec : JoinRecords)
      for (ThreadInfo &T : G.Threads)
        if (T.RecvObj != ~0u && Rec.RecvObjs.test(T.RecvObj))
          T.Joins.emplace_back(Rec.Thread, Rec.Pos);
  }

  const PTAResult &PTA;
  SHBOptions Opts;
  SHBGraph G;
  std::deque<unsigned> Queue;
  std::map<std::tuple<unsigned, Ctx, const Function *, Ctx, unsigned, unsigned>,
           unsigned>
      ThreadKeys;
  std::vector<JoinRecord> JoinRecords;
  std::unordered_set<uint32_t> SyncRegions;
  uint32_t NextRegion = 0;
};

} // namespace o2

SHBGraph o2::buildSHBGraph(const PTAResult &PTA, const SHBOptions &Opts) {
  return SHBBuilder(PTA, Opts).build();
}

void o2::printSHBDot(const SHBGraph &SHB, OutputStream &OS) {
  OS << "digraph shb {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const ThreadInfo &T : SHB.threads()) {
    OS << "  t" << T.Id << " [label=\"T" << T.Id << ": ";
    if (T.Entry) {
      if (T.Entry->getClass())
        OS << T.Entry->getClass()->getName() << "::";
      OS << T.Entry->getName();
    }
    switch (T.Kind) {
    case OriginKind::Main:
      OS << "\\n(main)";
      break;
    case OriginKind::Thread:
      OS << "\\n(thread)";
      break;
    case OriginKind::Event:
      OS << "\\n(event)";
      break;
    }
    OS << "\\n" << uint64_t(T.Accesses.size()) << " accesses\"];\n";
  }
  for (const ThreadInfo &T : SHB.threads()) {
    for (const auto &[Pos, Child] : T.SpawnEdges)
      OS << "  t" << T.Id << " -> t" << Child << " [label=\"spawn@" << Pos
         << "\"];\n";
    for (const auto &[Joiner, Pos] : T.Joins)
      OS << "  t" << T.Id << " -> t" << Joiner << " [style=dashed, label=\"join@"
         << Pos << "\"];\n";
  }
  OS << "}\n";
}
