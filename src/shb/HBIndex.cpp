//===- HBIndex.cpp - Precomputed SHB query indexes --------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/SHB/HBIndex.h"

using namespace o2;

HBIndex::HBIndex(const SHBGraph &SHB) {
  const std::vector<ThreadInfo> &Threads = SHB.threads();
  NumThreads = static_cast<unsigned>(Threads.size());
  SpawnPos.resize(NumThreads);
  RowBase.resize(NumThreads);

  size_t NumRows = 0;
  for (const ThreadInfo &T : Threads) {
    SpawnPos[T.Id].reserve(T.SpawnEdges.size());
    for (const auto &[Pos, Child] : T.SpawnEdges)
      SpawnPos[T.Id].push_back(Pos);
    RowBase[T.Id] = static_cast<unsigned>(NumRows);
    NumRows += T.SpawnEdges.size() + 1;
  }
  Reach.assign(NumRows * NumThreads, Unreached);

  // One spawn/join fixpoint per (thread, segment), identical to the one
  // SHBGraph::reachFrom memoizes on demand: a segment reaches its own
  // thread from the next spawn-edge position (the positions before it
  // are ordered by the intra-thread integer comparison instead), spawn
  // edges at or after the reached position fire into the child's start,
  // and a thread's join edges fire as soon as any of its positions is
  // reachable.
  for (const ThreadInfo &Src : Threads) {
    for (size_t Seg = 0; Seg <= Src.SpawnEdges.size(); ++Seg) {
      uint32_t *Row = Reach.data() +
                      size_t(RowBase[Src.Id] + Seg) * NumThreads;
      Row[Src.Id] = Seg < Src.SpawnEdges.size() ? Src.SpawnEdges[Seg].first
                                                : Src.NumEvents;
      bool Changed = true;
      while (Changed) {
        Changed = false;
        for (const ThreadInfo &Cur : Threads) {
          uint32_t From = Row[Cur.Id];
          if (From == Unreached)
            continue;
          for (const auto &[Pos, Child] : Cur.SpawnEdges) {
            if (Pos < From)
              continue;
            if (Row[Child] != 0) {
              Row[Child] = 0;
              Changed = true;
            }
          }
          for (const auto &[Joiner, Pos] : Cur.Joins) {
            if (Pos < Row[Joiner]) {
              Row[Joiner] = Pos;
              Changed = true;
            }
          }
        }
      }
    }
  }
}

LocksetMatrix::LocksetMatrix(const SHBGraph &SHB) {
  N = SHB.numLocksets();
  Bits.assign((N * N + 63) / 64, 0);
  for (LocksetId A = 0; A < N; ++A)
    for (LocksetId B = A; B < N; ++B)
      if (SHB.locksetsIntersectUncached(A, B)) {
        size_t AB = size_t(A) * N + B, BA = size_t(B) * N + A;
        Bits[AB >> 6] |= uint64_t(1) << (AB & 63);
        Bits[BA >> 6] |= uint64_t(1) << (BA & 63);
      }
}
