//===- BugModels.cpp - Models of the paper's real bugs ------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Workload/BugModels.h"

#include "o2/IR/Parser.h"
#include "o2/IR/Verifier.h"
#include "o2/Support/Compiler.h"

using namespace o2;

namespace {

/// Figure 2 of the paper: two threads share ⟨s⟩ but carry different
/// operation objects. Precision showcase; no race.
const char *Figure2 = R"(
class Shared { }
class Op {
  method act(s: Shared) { }
}
class Op1 extends Op {
  field y1: Shared;
  method act(s: Shared) { this.y1 = s; }
}
class Op2 extends Op {
  field y2: Shared;
  method act(s: Shared) { var t: Shared; t = this.y2; }
}
class T {
  field s: Shared;
  field op: Op;
  method init(s: Shared, op: Op) {
    this.s = s;
    this.op = op;
  }
  method run() {
    var s: Shared;
    var o: Op;
    s = this.s;
    o = this.op;
    o.act(s);
  }
}
func main() {
  var sh: Shared;
  var o1: Op1;
  var o2: Op2;
  var t1: T;
  var t2: T;
  sh = new Shared;
  o1 = new Op1;
  o2 = new Op2;
  t1 = new T(sh, o1);
  t2 = new T(sh, o2);
  spawn t1.run();
  spawn t2.run();
}
)";

/// Figure 3 of the paper: a shared super constructor allocates the object
/// stored in field f; the context switch at origin allocations keeps the
/// two threads' objects apart. No race.
const char *Figure3 = R"(
class Obj { field v: int; }
class T {
  field f: Obj;
  method init() {
    var o: Obj;
    o = new Obj;
    this.f = o;
  }
  method run() {
    var x: Obj;
    var v: int;
    x = this.f;
    x.v = v;
  }
}
class TA extends T { }
class TB extends T { }
func main() {
  var a: TA;
  var b: TB;
  a = new TA;
  b = new TB;
  spawn a.run();
  spawn b.run();
}
)";

/// Linux kernel (Section 5.4): update_vsyscall_tz() writes
/// vdata[CS_HRES_COARSE].tz_minuteswest / .tz_dsttime with no lock; two
/// concurrent invocations of the same syscall race on both fields.
const char *LinuxVsyscall = R"(
class VdsoData {
  field tz_minuteswest: int;
  field tz_dsttime: int;
}
class SysTz {
  field minuteswest: int;
  field dsttime: int;
}
global vdata: VdsoData[];
global sys_tz: SysTz;
class SysUpdateVsyscallTz {
  method run() {
    var vd: VdsoData[];
    var e: VdsoData;
    var tz: SysTz;
    var w: int;
    vd = @vdata;
    e = vd[*];
    tz = @sys_tz;
    w = tz.minuteswest;
    e.tz_minuteswest = w;
    w = tz.dsttime;
    e.tz_dsttime = w;
  }
}
func main() {
  var vd: VdsoData[];
  var e: VdsoData;
  var tz: SysTz;
  var s1: SysUpdateVsyscallTz;
  var s2: SysUpdateVsyscallTz;
  vd = newarray VdsoData;
  e = new VdsoData;
  vd[*] = e;
  @vdata = vd;
  tz = new SysTz;
  @sys_tz = tz;
  s1 = new SysUpdateVsyscallTz;
  s2 = new SysUpdateVsyscallTz;
  spawn s1.run();
  spawn s2.run();
}
)";

/// Memcached (Section 5.4): the do_slabs_reassign event handler checks
/// slabclass[id].slabs without slabs_lock while worker threads grow the
/// slab list under the lock: a thread↔event race.
const char *MemcachedSlabs = R"(
class Item { }
class Lock { }
class SlabClass {
  field slabs: int;
  field list: Item[];
}
global slabclass: SlabClass;
global slabs_lock: Lock;
class WorkerThread {
  method run() {
    var sc: SlabClass;
    var lk: Lock;
    var n: int;
    var it: Item;
    var arr: Item[];
    sc = @slabclass;
    lk = @slabs_lock;
    acquire lk;
    n = sc.slabs;
    sc.slabs = n;
    it = new Item;
    arr = sc.list;
    arr[*] = it;
    release lk;
  }
}
class ReassignEvent {
  method handleEvent() {
    var sc: SlabClass;
    var n: int;
    sc = @slabclass;
    n = sc.slabs;
  }
}
func main() {
  var sc: SlabClass;
  var lk: Lock;
  var w1: WorkerThread;
  var w2: WorkerThread;
  var ev: ReassignEvent;
  var arr: Item[];
  sc = new SlabClass;
  arr = newarray Item;
  sc.list = arr;
  lk = new Lock;
  @slabclass = sc;
  @slabs_lock = lk;
  w1 = new WorkerThread;
  w2 = new WorkerThread;
  ev = new ReassignEvent;
  spawn w1.run();
  spawn w2.run();
  spawn ev.handleEvent();
}
)";

/// Firefox Focus (Section 5.4, Bug-1581940): GeckoAppShell.getAppCtx()
/// on Gecko's background thread races GeckoAppShell.setAppCtx(appCtx)
/// called from the UI thread's onCreate handler.
const char *FirefoxAppCtx = R"(
class Context { }
global appCtx: Context;
class GeckoBgThread {
  method run() {
    var c: Context;
    c = @appCtx;
  }
}
class MainActivityCreate {
  method onReceive() {
    var c: Context;
    c = new Context;
    @appCtx = c;
  }
}
func main() {
  var bg: GeckoBgThread;
  var ui: MainActivityCreate;
  bg = new GeckoBgThread;
  ui = new MainActivityCreate;
  spawn ui.onReceive();
  spawn bg.run();
}
)";

/// ZooKeeper (ZOOKEEPER-3819): DataTree.createNode() adds paths to the
/// ephemerals list under synchronized(list) while deserialize() adds to
/// the same list with no lock, and both update the map unsynchronized.
const char *ZooKeeperEphemerals = R"(
class Path { }
class PathList { field paths: Path[]; }
class DataTree { field ephemerals: PathList; }
global tree: DataTree;
class CreateNodeRequest {
  method run() {
    var t: DataTree;
    var list: PathList;
    var arr: Path[];
    var p: Path;
    t = @tree;
    list = t.ephemerals;
    t.ephemerals = list;
    p = new Path;
    acquire list;
    arr = list.paths;
    arr[*] = p;
    release list;
  }
}
class DeserializeRequest {
  method run() {
    var t: DataTree;
    var list: PathList;
    var arr: Path[];
    var p: Path;
    t = @tree;
    list = t.ephemerals;
    t.ephemerals = list;
    p = new Path;
    arr = list.paths;
    arr[*] = p;
  }
}
func main() {
  var t: DataTree;
  var list: PathList;
  var arr: Path[];
  var c: CreateNodeRequest;
  var d: DeserializeRequest;
  t = new DataTree;
  list = new PathList;
  arr = newarray Path;
  list.paths = arr;
  t.ephemerals = list;
  @tree = t;
  c = new CreateNodeRequest;
  d = new DeserializeRequest;
  spawn c.run();
  spawn d.run();
}
)";

/// HBase (HBASE-24374): Encryption.getKeyProvider() reads and populates
/// keyProviderCache with no synchronization from concurrent handlers.
const char *HBaseKeyProvider = R"(
class KeyProvider { }
class Cache { field provider: KeyProvider; }
global keyProviderCache: Cache;
class GetKeyProviderRequest {
  method run() {
    var c: Cache;
    var kp: KeyProvider;
    c = @keyProviderCache;
    kp = c.provider;
    kp = new KeyProvider;
    c.provider = kp;
  }
}
func main() {
  var c: Cache;
  var r1: GetKeyProviderRequest;
  var r2: GetKeyProviderRequest;
  c = new Cache;
  @keyProviderCache = c;
  r1 = new GetKeyProviderRequest;
  r2 = new GetKeyProviderRequest;
  spawn r1.run();
  spawn r2.run();
}
)";

/// Redis-style nested thread creation (Section 3.2's k-origin
/// motivation): a background saver thread spawns an IO thread whose
/// write to the server state races the main thread's read.
const char *RedisNested = R"(
class State { field dirty: int; }
global server: State;
class IoThread {
  method run() {
    var s: State;
    var x: int;
    s = @server;
    s.dirty = x;
  }
}
class SaverThread {
  method run() {
    var io: IoThread;
    io = new IoThread;
    spawn io.run();
  }
}
func main() {
  var st: State;
  var sv: SaverThread;
  var x: int;
  st = new State;
  @server = st;
  sv = new SaverThread;
  spawn sv.run();
  x = st.dirty;
}
)";


/// TDengine (Table 10, 6 races): commit worker threads update the vnode
/// status/version and the write queue with no lock while the sync-timer
/// event handler polls them.
const char *TDengineVnode = R"(
class Msg { }
class Vnode {
  field status: int;
  field version: int;
  field queue: Msg[];
}
global vnode: Vnode;
class CommitThread {
  method run() {
    var v: Vnode;
    var q: Msg[];
    var m: Msg;
    var t: int;
    v = @vnode;
    v.status = t;
    v.version = t;
    q = v.queue;
    m = new Msg;
    q[*] = m;
  }
}
class SyncTimerEvent {
  method handleEvent() {
    var v: Vnode;
    var q: Msg[];
    var m: Msg;
    var t: int;
    v = @vnode;
    t = v.status;
    t = v.version;
    q = v.queue;
    m = q[*];
  }
}
func main() {
  var v: Vnode;
  var q: Msg[];
  var c1: CommitThread;
  var c2: CommitThread;
  var e: SyncTimerEvent;
  v = new Vnode;
  q = newarray Msg;
  v.queue = q;
  @vnode = v;
  c1 = new CommitThread;
  c2 = new CommitThread;
  e = new SyncTimerEvent;
  spawn c1.run();
  spawn c2.run();
  spawn e.handleEvent();
}
)";

/// Open vSwitch (Table 10, 3 races): the main (reconfiguration) thread
/// writes bridge config flags read by revalidator threads, while the
/// revalidators update per-flow statistics and the config sequence
/// number without locks.
const char *OvsBridge = R"(
class FlowStats { field packets: int; }
class BridgeCfg {
  field flags: int;
  field seq: int;
}
global cfg: BridgeCfg;
global stats: FlowStats;
class Revalidator {
  method run() {
    var c: BridgeCfg;
    var st: FlowStats;
    var t: int;
    c = @cfg;
    t = c.flags;
    c.seq = t;
    st = @stats;
    st.packets = t;
  }
}
func main() {
  var c: BridgeCfg;
  var st: FlowStats;
  var r1: Revalidator;
  var r2: Revalidator;
  var t: int;
  c = new BridgeCfg;
  st = new FlowStats;
  @cfg = c;
  @stats = st;
  r1 = new Revalidator;
  r2 = new Revalidator;
  spawn r1.run();
  spawn r2.run();
  c.flags = t;
}
)";

/// cpqueue (Table 10, 7 races): a concurrent priority queue whose heap
/// array is guarded but whose size counter is maintained lock-free;
/// producers and consumers race on every size access combination.
const char *CpQueue = R"(
class Item { }
class Queue {
  field size: int;
  field heap: Item[];
}
global queue: Queue;
global qlock: Item;
class Producer {
  method run() {
    var q: Queue;
    var h: Item[];
    var lk: Item;
    var it: Item;
    var t: int;
    q = @queue;
    lk = @qlock;
    t = q.size;
    q.size = t;
    it = new Item;
    acquire lk;
    h = q.heap;
    h[*] = it;
    release lk;
  }
}
class Consumer {
  method run() {
    var q: Queue;
    var h: Item[];
    var lk: Item;
    var it: Item;
    var t: int;
    q = @queue;
    lk = @qlock;
    t = q.size;
    q.size = t;
    acquire lk;
    h = q.heap;
    it = h[*];
    release lk;
  }
}
func main() {
  var q: Queue;
  var h: Item[];
  var lk: Item;
  var p1: Producer;
  var p2: Producer;
  var c1: Consumer;
  var c2: Consumer;
  q = new Queue;
  h = newarray Item;
  q.heap = h;
  lk = new Item;
  @queue = q;
  @qlock = lk;
  p1 = new Producer;
  p2 = new Producer;
  c1 = new Consumer;
  c2 = new Consumer;
  spawn p1.run();
  spawn p2.run();
  spawn c1.run();
  spawn c2.run();
}
)";

/// mrlock (Table 10, 5 races): a multi-resource lock manager whose
/// resource bitmask, buffer, and head counter are touched by locker
/// threads and a waiter without consistent synchronization.
const char *MrLock = R"(
class Cell { }
class LockState {
  field mask: int;
  field head: int;
  field buf: Cell[];
}
global state: LockState;
class Locker {
  method run() {
    var s: LockState;
    var b: Cell[];
    var c: Cell;
    var t: int;
    s = @state;
    s.mask = t;
    t = s.mask;
    s.head = t;
    b = s.buf;
    c = new Cell;
    b[*] = c;
  }
}
class Waiter {
  method run() {
    var s: LockState;
    var t: int;
    s = @state;
    t = s.head;
  }
}
func main() {
  var s: LockState;
  var b: Cell[];
  var l1: Locker;
  var l2: Locker;
  var w: Waiter;
  s = new LockState;
  b = newarray Cell;
  s.buf = b;
  @state = s;
  l1 = new Locker;
  l2 = new Locker;
  w = new Waiter;
  spawn l1.run();
  spawn l2.run();
  spawn w.run();
}
)";

/// Tomcat (Table 10, 1 race): the background session-expiration thread
/// updates the session counter read by request handlers.
const char *TomcatSession = R"(
class SessionManager { field activeSessions: int; }
global manager: SessionManager;
class ExpirationThread {
  method run() {
    var m: SessionManager;
    var t: int;
    m = @manager;
    m.activeSessions = t;
  }
}
class RequestEvent {
  method handleEvent() {
    var m: SessionManager;
    var t: int;
    m = @manager;
    t = m.activeSessions;
  }
}
func main() {
  var m: SessionManager;
  var bg: ExpirationThread;
  var rq: RequestEvent;
  m = new SessionManager;
  @manager = m;
  bg = new ExpirationThread;
  rq = new RequestEvent;
  spawn bg.run();
  spawn rq.handleEvent();
}
)";

} // namespace

const std::vector<BugModel> &o2::bugModels() {
  static const std::vector<BugModel> Models = {
      {"figure2", "paper Figure 2",
       "origin attributes separate the two threads' operations; no race",
       0, false, Figure2},
      {"figure3", "paper Figure 3",
       "context switch at origin allocations keeps per-thread state apart; "
       "no race",
       0, false, Figure3},
      {"linux_vsyscall", "Linux kernel",
       "concurrent update_vsyscall_tz() syscalls write "
       "vdata[CS_HRES_COARSE].tz_minuteswest/.tz_dsttime unlocked",
       2, false, LinuxVsyscall},
      {"memcached_slabs", "Memcached",
       "do_slabs_reassign (event) checks slabclass[id].slabs without "
       "slabs_lock while worker threads grow the slab list under it",
       1, true, MemcachedSlabs},
      {"firefox_appctx", "Firefox Focus / GeckoView",
       "GeckoAppShell app-context read on the Gecko background thread vs. "
       "the UI thread's onCreate write (Bug-1581940)",
       1, true, FirefoxAppCtx},
      {"zookeeper_ephemerals", "ZooKeeper",
       "DataTree.createNode() locks the ephemerals list; deserialize() "
       "adds to it and updates the map with no lock (ZOOKEEPER-3819)",
       4, false, ZooKeeperEphemerals},
      {"hbase_keyprovider", "HBase",
       "Encryption.getKeyProvider() reads and fills keyProviderCache "
       "unsynchronized (HBASE-24374)",
       2, false, HBaseKeyProvider},
      {"redis_nested", "Redis/RedisGraph",
       "nested thread creation: an IO thread spawned by the saver thread "
       "races the main thread on server state",
       1, false, RedisNested},
      {"tdengine_vnode", "TDengine",
       "commit worker threads update vnode status/version and the write "
       "queue with no lock while the sync-timer event handler polls them",
       6, true, TDengineVnode},
      {"ovs_bridge", "Open vSwitch (OVS)",
       "the reconfiguration path writes bridge flags read by revalidator "
       "threads, which also update per-flow stats and the config seq "
       "without locks",
       3, false, OvsBridge},
      {"cpqueue", "cpqueue",
       "the priority queue's heap array is guarded, but its size counter "
       "is maintained lock-free by producers and consumers",
       7, false, CpQueue},
      {"mrlock", "mrlock",
       "the multi-resource lock's bitmask, buffer, and head counter are "
       "touched by lockers and a waiter without consistent synchronization",
       5, false, MrLock},
      {"tomcat_session", "Tomcat",
       "the background session-expiration thread updates the session "
       "counter read by request handlers",
       1, true, TomcatSession},
  };
  return Models;
}

const BugModel *o2::findBugModel(const std::string &Name) {
  for (const BugModel &Model : bugModels())
    if (Model.Name == Name)
      return &Model;
  return nullptr;
}

std::unique_ptr<Module> o2::buildBugModel(const BugModel &Model) {
  std::string Err;
  auto M = parseModule(Model.Source, Err, Model.Name);
  if (!M)
    reportFatalInternalError(("bug model fails to parse: " + Err).c_str(),
                             __FILE__, __LINE__);
  std::vector<std::string> Errors;
  if (!verifyModule(*M, Errors))
    reportFatalInternalError(
        ("bug model fails to verify: " + Errors.front()).c_str(), __FILE__,
        __LINE__);
  return M;
}
