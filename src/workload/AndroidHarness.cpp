//===- AndroidHarness.cpp - Android analysis harness ---------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Workload/AndroidHarness.h"

#include "o2/IR/IRBuilder.h"
#include "o2/Support/Casting.h"

#include <deque>
#include <set>

using namespace o2;

/// True if the activity method can be invoked with no explicit arguments.
static bool isNullary(const Function *F) { return F->params().size() == 1; }

/// Collects every class whose allocation flows into a call of the
/// startActivity() convention function anywhere in the module.
static std::vector<ClassType *>
startedActivities(const Module &M, const std::string &StartActivityFn) {
  std::vector<ClassType *> Result;
  std::set<ClassType *> Seen;
  for (const auto &F : M.functions()) {
    for (const auto &SPtr : F->body()) {
      const auto *Call = dyn_cast<CallStmt>(SPtr.get());
      if (!Call || Call->isVirtual() ||
          Call->getDirectCallee()->getName() != StartActivityFn)
        continue;
      for (const Variable *Arg : Call->getArgs())
        if (auto *C = dyn_cast<ClassType>(Arg->getType()))
          if (Seen.insert(C).second)
            Result.push_back(C);
    }
  }
  return Result;
}

Function *o2::buildAndroidHarness(Module &M, const std::string &MainActivity,
                                  const AndroidHarnessOptions &Opts) {
  if (M.getMain())
    return nullptr;
  ClassType *Home = M.findClass(MainActivity);
  if (!Home)
    return nullptr;

  // The home screen plus everything reachable via startActivity().
  std::vector<ClassType *> Activities{Home};
  for (ClassType *C : startedActivities(M, Opts.StartActivityFunction))
    if (C != Home)
      Activities.push_back(C);

  Function *Main = M.addFunction("main");
  IRBuilder B(M, Main);
  unsigned Idx = 0;
  for (ClassType *Activity : Activities) {
    // Activities need a no-argument constructor (or none) to be
    // instantiable from the harness.
    if (const Function *Init = Activity->findMethod("init"))
      if (!isNullary(Init))
        continue;
    Variable *Act =
        Main->addLocal("activity" + std::to_string(Idx++), Activity);
    B.alloc(Act, Activity);

    // Lifecycle handlers run on the looper thread as plain calls, in
    // lifecycle order.
    for (const std::string &Lifecycle : Opts.LifecycleMethods)
      if (const Function *Handler = Activity->findMethod(Lifecycle))
        if (isNullary(Handler))
          B.call(nullptr, Act, Lifecycle);

    // Normal event handlers are origin entries, dispatched any number of
    // times: spawn them in a loop so each gets duplicated instances.
    for (const auto &[EntryName, Kind] : Opts.Spec.entries()) {
      if (Kind != OriginKind::Event)
        continue;
      const Function *Handler = Activity->findMethod(EntryName);
      if (!Handler || !isNullary(Handler))
        continue;
      B.beginLoop();
      B.spawn(Act, EntryName);
      B.endLoop();
    }
  }
  return Main;
}
