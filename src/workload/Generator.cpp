//===- Generator.cpp - Synthetic workload generator ----------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/Workload/Generator.h"

#include "o2/IR/IRBuilder.h"
#include "o2/Support/Compiler.h"

#include <random>

using namespace o2;

namespace {

class WorkloadBuilder {
public:
  explicit WorkloadBuilder(const WorkloadProfile &P)
      : P(P), Rng(P.Seed), M(std::make_unique<Module>(P.Name)) {}

  std::unique_ptr<Module> build() {
    makeCoreClasses();
    makeSharedGlobals();
    makeLocalAllocWrappers();
    makeAmplifier();
    makeThreadClasses();
    makeEventClasses();
    makeNestedClasses();
    makePadding();
    makeMain();
    return std::move(M);
  }

private:
  unsigned numSharedData() const {
    return P.RacyObjects + P.LockedObjects + P.ReadOnlyObjects;
  }

  unsigned pick(unsigned Lo, unsigned Count) {
    assert(Count > 0 && "empty pick range");
    return Lo + static_cast<unsigned>(Rng() % Count);
  }

  void makeCoreClasses() {
    DataClass = M->addClass("Data");
    DataF0 = DataClass->addField("f0", M->getIntType());
    DataF1 = DataClass->addField("f1", M->getIntType());
    DataClass->addField("link", DataClass);
    LockClass = M->addClass("Lock");
    // Padding code uses its own class so its field names do not collide
    // with the concurrent workload's (field-name-keyed baselines would
    // otherwise drown in padding noise).
    PadClass = M->addClass("PadData");
    PadF0 = PadClass->addField("p0", M->getIntType());
    PadF1 = PadClass->addField("p1", M->getIntType());
    PadClass->addField("plink", PadClass);
  }

  void makeSharedGlobals() {
    for (unsigned I = 0; I < numSharedData(); ++I)
      DataGlobals.push_back(
          M->addGlobal("gData" + std::to_string(I), DataClass));
    for (unsigned I = 0; I < std::max(P.NumLocks, 1u); ++I)
      LockGlobals.push_back(
          M->addGlobal("gLock" + std::to_string(I), LockClass));
  }

  /// Allocation wrappers of depth 1..3 shared by every origin. The
  /// distinguishing call site sits d frames above the allocation, so a
  /// k-CFA analysis separates the per-origin objects iff k >= d.
  void makeLocalAllocWrappers() {
    // Depth 1: allocates directly.
    MakeD[0] = M->addFunction("makeLocalD1", DataClass);
    {
      IRBuilder B(*M, MakeD[0]);
      Variable *D = MakeD[0]->addLocal("d", DataClass);
      B.alloc(D, DataClass);
      B.ret(D);
    }
    // Depths 2 and 3: chains ending in the allocation.
    const char *Names2[] = {"makeLocalD2", "makeLocalD2_inner"};
    MakeD[1] = makeChain(Names2, 2);
    const char *Names3[] = {"makeLocalD3", "makeLocalD3_mid",
                            "makeLocalD3_inner"};
    MakeD[2] = makeChain(Names3, 3);
  }

  Function *makeChain(const char *const *Names, unsigned Len) {
    std::vector<Function *> Fns;
    for (unsigned I = 0; I < Len; ++I)
      Fns.push_back(M->addFunction(Names[I], DataClass));
    for (unsigned I = 0; I < Len; ++I) {
      IRBuilder B(*M, Fns[I]);
      Variable *D = Fns[I]->addLocal("d", DataClass);
      if (I + 1 < Len)
        B.callDirect(D, Fns[I + 1]);
      else
        B.alloc(D, DataClass);
      B.ret(D);
    }
    return Fns.front();
  }

  /// Builds the context amplifier: classes Util0..UtilL-1, each with a
  /// method m(d) that allocates FanOut next-layer receivers and calls
  /// m on each at a distinct call site. Context-sensitive analyses
  /// multiply instances along the layers; 0-ctx and OPA stay linear.
  void makeAmplifier() {
    if (P.AmplifierLayers == 0)
      return;
    unsigned FanOut = std::max(P.AmplifierFanOut, 1u);
    std::vector<ClassType *> Layers;
    std::vector<Function *> Methods;
    for (unsigned L = 0; L < P.AmplifierLayers; ++L) {
      ClassType *C = M->addClass("Util" + std::to_string(L));
      Function *Meth = M->addFunction("m");
      C->addMethod(Meth);
      Meth->addParam("this", C);
      Meth->addParam("d", DataClass);
      Layers.push_back(C);
      Methods.push_back(Meth);
    }
    for (unsigned L = 0; L < P.AmplifierLayers; ++L) {
      Function *Meth = Methods[L];
      IRBuilder B(*M, Meth);
      Variable *T = Meth->addLocal("t", M->getIntType());
      // Local padding so each amplified instance has real work.
      Variable *X = Meth->addLocal("x", DataClass);
      B.alloc(X, DataClass);
      for (unsigned S = 0; S < P.AmplifierStmtsPerMethod; ++S) {
        if (S % 2 == 0)
          B.fieldStore(X, DataF0, T);
        else
          B.fieldLoad(T, X, DataF1);
      }
      if (L + 1 < P.AmplifierLayers) {
        for (unsigned F = 0; F < FanOut; ++F) {
          Variable *N =
              Meth->addLocal("n" + std::to_string(F), Layers[L + 1]);
          B.alloc(N, Layers[L + 1]);
          B.call(nullptr, N, "m", {Meth->params()[1]});
        }
      } else {
        // Leaf: touch the threaded-through data (read only).
        B.fieldLoad(T, Meth->params()[1], DataF1);
      }
    }
    AmplifierRoot = Layers.front();
  }

  /// Emits one leaf workload into \p F (a method with 'this' that has
  /// Data field "att" and Lock field "lk").
  void emitLeafWork(Function *F, bool IsEventHandler) {
    IRBuilder B(*M, F);
    Variable *T = F->addLocal("t", M->getIntType());
    unsigned VarId = 0;
    auto FreshData = [&] {
      return F->addLocal("v" + std::to_string(VarId++), DataClass);
    };
    auto FreshLock = [&] {
      return F->addLocal("v" + std::to_string(VarId++), LockClass);
    };

    // Enter the context amplifier with a fresh per-origin data object.
    if (AmplifierRoot) {
      Variable *AD = FreshData();
      B.callDirect(AD, MakeD[0]);
      Variable *U = F->addLocal("u", AmplifierRoot);
      B.alloc(U, AmplifierRoot);
      B.call(nullptr, U, "m", {AD});
    }

    // Origin-local allocations through the shared wrapper chains.
    const unsigned PatternCounts[3] = {P.LocalPatternsDepth1,
                                       P.LocalPatternsDepth2,
                                       P.LocalPatternsDepth3};
    for (unsigned Depth = 0; Depth < 3; ++Depth) {
      for (unsigned I = 0; I < PatternCounts[Depth]; ++I) {
        Variable *LD = FreshData();
        B.callDirect(LD, MakeD[Depth]);
        B.fieldStore(LD, DataF0, T);
        B.fieldLoad(T, LD, DataF1);
      }
    }

    // Accesses through the constructor attribute (kept origin-precise by
    // OPA's attribute handling).
    if (!IsEventHandler) {
      Variable *Att = FreshData();
      B.fieldLoad(Att, F->params()[0], "att");
      B.fieldStore(Att, DataF0, T);
    }

    // Protected writes: lock is chosen by the target object, so all
    // origins agree on the guard.
    for (unsigned I = 0; I < P.ProtectedWritesPerOrigin; ++I) {
      if (P.LockedObjects == 0)
        break;
      unsigned K = pick(P.RacyObjects, P.LockedObjects);
      Variable *SD = FreshData();
      Variable *LV = FreshLock();
      B.globalLoad(SD, DataGlobals[K]);
      B.globalLoad(LV, LockGlobals[K % LockGlobals.size()]);
      B.acquire(LV);
      for (unsigned A = 0; A < std::max(P.AccessesPerLockRegion, 1u); ++A) {
        B.fieldStore(SD, DataF0, T);
        B.fieldLoad(T, SD, DataF1);
      }
      B.release(LV);
    }

    // Unprotected writes on the racy objects: the intended races.
    for (unsigned I = 0; I < P.UnprotectedWritesPerOrigin; ++I) {
      if (P.RacyObjects == 0)
        break;
      unsigned K = pick(0, P.RacyObjects);
      Variable *SD = FreshData();
      B.globalLoad(SD, DataGlobals[K]);
      B.fieldStore(SD, DataF0, T);
    }

    // Benign reads of the read-only objects.
    for (unsigned I = 0; I < P.ReadsPerOrigin; ++I) {
      if (P.ReadOnlyObjects == 0)
        break;
      unsigned K = pick(P.RacyObjects + P.LockedObjects, P.ReadOnlyObjects);
      Variable *SD = FreshData();
      B.globalLoad(SD, DataGlobals[K]);
      B.fieldLoad(T, SD, DataF1);
    }
  }

  /// Builds an origin class with an entry method chain of P.CallDepth.
  ClassType *makeOriginClass(const std::string &Name,
                             const std::string &EntryName,
                             bool IsEventHandler) {
    ClassType *C = M->addClass(Name);
    C->addField("att", DataClass);
    C->addField("lk", LockClass);
    if (!IsEventHandler) {
      Function *Init = M->addFunction("init");
      C->addMethod(Init);
      Variable *This = Init->addParam("this", C);
      Variable *A = Init->addParam("a", DataClass);
      Variable *L = Init->addParam("l", LockClass);
      IRBuilder B(*M, Init);
      B.fieldStore(This, "att", A);
      B.fieldStore(This, "lk", L);
    }

    // Entry -> step chain -> leaf.
    std::vector<Function *> Chain;
    Function *Entry = M->addFunction(EntryName);
    C->addMethod(Entry);
    Entry->addParam("this", C);
    Chain.push_back(Entry);
    for (unsigned D = 1; D < std::max(P.CallDepth, 1u); ++D) {
      Function *Step = M->addFunction("step" + std::to_string(D));
      C->addMethod(Step);
      Step->addParam("this", C);
      Chain.push_back(Step);
    }
    for (unsigned D = 0; D + 1 < Chain.size(); ++D) {
      IRBuilder B(*M, Chain[D]);
      B.call(nullptr, Chain[D]->params()[0], Chain[D + 1]->getName());
    }
    emitLeafWork(Chain.back(), IsEventHandler);
    return C;
  }

  void makeThreadClasses() {
    for (unsigned I = 0; I < P.NumThreads; ++I)
      ThreadClasses.push_back(
          makeOriginClass("Worker" + std::to_string(I), "run",
                          /*IsEventHandler=*/false));
  }

  void makeEventClasses() {
    for (unsigned I = 0; I < P.NumEventHandlers; ++I)
      EventClasses.push_back(
          makeOriginClass("Handler" + std::to_string(I), "handleEvent",
                          /*IsEventHandler=*/true));
  }

  /// Redis-style nested creation: Nest0 spawns Nest1 spawns ... the
  /// innermost performs one unprotected racy write.
  void makeNestedClasses() {
    if (P.NestedSpawnDepth == 0)
      return;
    ClassType *Inner = nullptr;
    for (unsigned D = P.NestedSpawnDepth; D-- > 0;) {
      ClassType *C = M->addClass("Nest" + std::to_string(D));
      Function *Run = M->addFunction("run");
      C->addMethod(Run);
      Variable *This = Run->addParam("this", C);
      (void)This;
      IRBuilder B(*M, Run);
      if (Inner) {
        Variable *Child = Run->addLocal("child", Inner);
        B.alloc(Child, Inner);
        B.spawn(Child, "run");
      } else if (P.RacyObjects > 0) {
        Variable *SD = Run->addLocal("sd", DataClass);
        Variable *T = Run->addLocal("t", M->getIntType());
        B.globalLoad(SD, DataGlobals[0]);
        B.fieldStore(SD, DataF0, T);
      }
      Inner = C;
    }
    NestRoot = Inner;
  }

  void makePadding() {
    Function *Prev = nullptr;
    for (unsigned I = 0; I < P.PaddingFunctions; ++I) {
      Function *F = M->addFunction("pad" + std::to_string(I));
      IRBuilder B(*M, F);
      Variable *D = F->addLocal("d", PadClass);
      Variable *E = F->addLocal("e", PadClass);
      Variable *T = F->addLocal("t", M->getIntType());
      B.alloc(D, PadClass);
      B.alloc(E, PadClass);
      for (unsigned S = 0; S < P.PaddingStmtsPerFunction; ++S) {
        switch (S % 5) {
        case 0:
          B.fieldStore(D, "plink", E);
          break;
        case 1:
          B.fieldLoad(E, D, "plink");
          break;
        case 2:
          B.fieldStore(E, PadF0, T);
          break;
        case 3:
          B.fieldLoad(T, E, PadF1);
          break;
        case 4:
          B.assign(D, E);
          break;
        }
      }
      if (Prev)
        B.callDirect(nullptr, Prev);
      Prev = F;
    }
    PaddingRoot = Prev;
  }

  void makeMain() {
    Function *Main = M->addFunction("main");
    IRBuilder B(*M, Main);
    Variable *T = Main->addLocal("t", M->getIntType());

    // Shared data and locks.
    std::vector<Variable *> DataVars;
    for (unsigned I = 0; I < numSharedData(); ++I) {
      Variable *D = Main->addLocal("d" + std::to_string(I), DataClass);
      B.alloc(D, DataClass);
      // Initialize before any spawn: ordered by happens-before.
      B.fieldStore(D, DataF0, T);
      B.fieldStore(D, DataF1, T);
      B.globalStore(DataGlobals[I], D);
      DataVars.push_back(D);
    }
    std::vector<Variable *> LockVars;
    for (unsigned I = 0; I < LockGlobals.size(); ++I) {
      Variable *L = Main->addLocal("l" + std::to_string(I), LockClass);
      B.alloc(L, LockClass);
      B.globalStore(LockGlobals[I], L);
      LockVars.push_back(L);
    }

    if (PaddingRoot)
      B.callDirect(nullptr, PaddingRoot);

    // Spawn the origins; attributes are a racy object and its lock.
    auto SpawnOrigin = [&](ClassType *C, const std::string &Entry,
                           bool WithCtor, unsigned Idx) {
      Variable *V = Main->addLocal("o" + std::to_string(NextOriginVar++), C);
      Variable *Att = DataVars[Idx % DataVars.size()];
      Variable *Lk = LockVars[Idx % LockVars.size()];
      if (P.SpawnInLoop)
        B.beginLoop();
      if (WithCtor)
        B.alloc(V, C, {Att, Lk});
      else
        B.alloc(V, C);
      B.spawn(V, Entry);
      if (P.SpawnInLoop)
        B.endLoop();
    };
    for (unsigned I = 0; I < ThreadClasses.size(); ++I)
      SpawnOrigin(ThreadClasses[I], "run", /*WithCtor=*/true, I);
    for (unsigned I = 0; I < EventClasses.size(); ++I)
      SpawnOrigin(EventClasses[I], "handleEvent", /*WithCtor=*/false, I);
    if (NestRoot) {
      Variable *N = Main->addLocal("nest", NestRoot);
      B.alloc(N, NestRoot);
      B.spawn(N, "run");
    }

    // Main also reads one racy object concurrently with the origins.
    if (P.RacyObjects > 0) {
      Variable *SD = Main->addLocal("mainRead", DataClass);
      B.globalLoad(SD, DataGlobals[0]);
      B.fieldLoad(T, SD, DataF1);
    }
  }

  const WorkloadProfile &P;
  std::mt19937_64 Rng;
  std::unique_ptr<Module> M;
  ClassType *DataClass = nullptr;
  Field *DataF0 = nullptr;
  Field *DataF1 = nullptr;
  ClassType *LockClass = nullptr;
  ClassType *PadClass = nullptr;
  Field *PadF0 = nullptr;
  Field *PadF1 = nullptr;
  std::vector<Global *> DataGlobals;
  std::vector<Global *> LockGlobals;
  Function *MakeD[3] = {nullptr, nullptr, nullptr};
  std::vector<ClassType *> ThreadClasses;
  std::vector<ClassType *> EventClasses;
  ClassType *NestRoot = nullptr;
  ClassType *AmplifierRoot = nullptr;
  Function *PaddingRoot = nullptr;
  unsigned NextOriginVar = 0;
};

} // namespace

std::unique_ptr<Module> o2::generateWorkload(const WorkloadProfile &P) {
  return WorkloadBuilder(P).build();
}

/// One profile per evaluation subject. #O (origin counts) follow Table 5;
/// size knobs are scaled to keep a full table run in seconds while
/// preserving the relative ordering of the paper's rows.
const std::vector<WorkloadProfile> &o2::benchmarkProfiles() {
  static const std::vector<WorkloadProfile> Profiles = [] {
    std::vector<WorkloadProfile> Ps;
    auto Add = [&Ps](std::string Name, unsigned Threads, unsigned Events,
                     unsigned Depth, unsigned Padding,
                     unsigned Racy = 1, unsigned Locked = 2,
                     unsigned Nested = 0, bool Loop = false,
                     unsigned AmpLayers = 4, unsigned AmpFanOut = 4) {
      WorkloadProfile P;
      P.Name = std::move(Name);
      P.NumThreads = Threads;
      P.NumEventHandlers = Events;
      P.CallDepth = Depth;
      P.PaddingFunctions = Padding;
      P.RacyObjects = Racy;
      P.LockedObjects = Locked;
      P.NestedSpawnDepth = Nested;
      P.SpawnInLoop = Loop;
      P.AmplifierLayers = AmpLayers;
      P.AmplifierFanOut = AmpFanOut;
      P.Seed = 0x02 + Ps.size();
      Ps.push_back(std::move(P));
    };
    // DaCapo-style JVM benchmarks (threads only). #O per Table 5; the
    // amplifier scale mirrors each subject's observed k-CFA/k-obj cost.
    // Amplifier fan-out mirrors each subject's observed deep-context
    // cost in the paper: rows whose 2-CFA/k-obj runs exploded or timed
    // out get large fan-outs (they then hit the bench node budget, the
    // ">4h" analogue), mild rows stay small.
    Add("avrora", 4, 0, 3, 60, 1, 2, 0, false, 4, 10);
    Add("batik", 4, 0, 4, 40, 1, 2, 0, false, 4, 30);
    Add("eclipse", 4, 0, 3, 30, 1, 2, 0, false, 4, 6);
    Add("h2", 3, 0, 5, 200, /*Racy=*/2, /*Locked=*/3, 0, false, 4, 24);
    Add("jython", 4, 0, 5, 160, /*Racy=*/2, 2, 0, false, 4, 10);
    Add("luindex", 3, 0, 4, 60, 1, 2, 0, false, 4, 12);
    Add("lusearch", 3, 0, 3, 30, 1, 2, 0, false, 4, 30);
    Add("pmd", 3, 0, 3, 30, 1, 2, 0, false, 3, 6);
    Add("sunflow", 9, 0, 3, 40, 1, 2, 0, false, 4, 6);
    Add("tomcat", 4, 2, 4, 50, 1, 2, 0, false, 4, 30);
    Add("tradebeans", 3, 0, 3, 30, 1, 2, 0, false, 3, 6);
    Add("tradesoap", 3, 0, 3, 35, 1, 2, 0, false, 3, 6);
    Add("xalan", 3, 0, 4, 110, 1, 2, 0, false, 4, 26);
    // Android apps: mostly event handlers, some threads.
    Add("connectbot", 3, 8, 3, 25, 1, 2, 0, false, 4, 28);
    Add("sipdroid", 4, 11, 3, 35, 1, 2, 0, false, 4, 28);
    Add("k9mail", 5, 18, 3, 45, 1, 2, 0, false, 4, 28);
    Add("tasks", 2, 5, 3, 30, 1, 2, 0, false, 4, 30);
    Add("fbreader", 4, 11, 3, 40, 1, 2, 0, false, 4, 30);
    Add("vlc", 2, 2, 4, 35, 1, 2, 0, false, 4, 28);
    Add("firefoxfocus", 2, 6, 3, 30, 1, 2, 0, false, 4, 32);
    Add("telegram", 20, 114, 3, 90, 1, 2, 0, false, 4, 32);
    Add("zoom", 5, 10, 3, 110, 1, 2, 0, false, 4, 32);
    Add("chrome", 8, 26, 3, 45, 1, 2, 0, false, 4, 32);
    // Distributed systems: many threads, events, nested creation.
    Add("hbase", 12, 4, 5, 220, /*Racy=*/3, /*Locked=*/4, /*Nested=*/2,
        false, 4, 30);
    Add("hdfs", 9, 3, 5, 180, /*Racy=*/3, /*Locked=*/4, /*Nested=*/2,
        false, 4, 12);
    Add("yarn", 10, 4, 5, 260, /*Racy=*/3, /*Locked=*/4, /*Nested=*/2,
        false, 4, 10);
    Add("zookeeper", 30, 10, 4, 120, /*Racy=*/3, /*Locked=*/4, /*Nested=*/2,
        false, 4, 10);
    // C/C++ applications (Table 6).
    Add("memcached", 8, 4, 3, 60, /*Racy=*/2, /*Locked=*/3, 0, false, 3, 8);
    Add("redis", 10, 5, 4, 140, /*Racy=*/2, /*Locked=*/3, /*Nested=*/2,
        false, 4, 24);
    Add("sqlite3", 3, 0, 5, 300, /*Racy=*/1, /*Locked=*/4, 0, false, 4, 44);
    return Ps;
  }();
  return Profiles;
}

const WorkloadProfile *o2::findProfile(const std::string &Name) {
  for (const WorkloadProfile &P : benchmarkProfiles())
    if (P.Name == Name)
      return &P;
  return nullptr;
}
