//===- CallGraph.cpp - Materialized call graph ---------------------------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//

#include "o2/PTA/CallGraph.h"

#include "o2/Support/Casting.h"
#include "o2/Support/OutputStream.h"

#include <set>

using namespace o2;

CallGraph CallGraph::build(const PTAResult &PTA) {
  CallGraph G;
  for (const auto &[F, C] : PTA.instances()) {
    unsigned Id = static_cast<unsigned>(G.Nodes.size());
    G.Nodes.push_back({Id, F, C});
    G.NodeIds.emplace(key(F, C), Id);
  }
  G.OutEdges.resize(G.Nodes.size());
  G.InEdges.resize(G.Nodes.size());

  for (const Node &N : G.Nodes) {
    for (const auto &SPtr : N.F->body()) {
      const Stmt &S = *SPtr;
      if (!isa<CallStmt, AllocStmt, SpawnStmt>(&S))
        continue;
      for (const CallTarget &T : PTA.callTargets(&S, N.C)) {
        unsigned CalleeId = G.nodeId(T.Callee, T.CalleeCtx);
        if (CalleeId == ~0u)
          continue; // target never processed (budget cut)
        unsigned EdgeIdx = static_cast<unsigned>(G.Edges.size());
        G.Edges.push_back({N.Id, CalleeId, &S, isa<SpawnStmt>(&S)});
        G.OutEdges[N.Id].push_back(EdgeIdx);
        G.InEdges[CalleeId].push_back(EdgeIdx);
      }
    }
  }
  return G;
}

std::vector<const Function *> CallGraph::reachableFunctions() const {
  std::vector<const Function *> Result;
  std::set<const Function *> Seen;
  for (const Node &N : Nodes)
    if (Seen.insert(N.F).second)
      Result.push_back(N.F);
  return Result;
}

void CallGraph::printDot(OutputStream &OS, const PTAResult &PTA) const {
  OS << "digraph callgraph {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const Node &N : Nodes) {
    OS << "  n" << N.Id << " [label=\"";
    if (N.F->getClass())
      OS << N.F->getClass()->getName() << "::";
    OS << N.F->getName() << "\\n" << PTA.ctxToString(N.C) << "\"];\n";
  }
  for (const Edge &E : Edges) {
    OS << "  n" << E.Caller << " -> n" << E.Callee;
    if (E.IsSpawn)
      OS << " [style=bold, color=red, label=\"spawn\"]";
    else if (isa<AllocStmt>(E.Site))
      OS << " [style=dashed, label=\"new\"]";
    OS << ";\n";
  }
  OS << "}\n";
}
