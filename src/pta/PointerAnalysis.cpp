//===- PointerAnalysis.cpp - Context-sensitive pointer analysis -------------===//
//
// Part of the O2 project, an implementation of the PLDI 2021 paper
// "When Threads Meet Events: Efficient and Precise Static Race Detection
// with Origins".
//
//===----------------------------------------------------------------------===//
//
// Andersen-style inclusion-constraint solver over ⟨variable, context⟩
// nodes with an on-the-fly call graph. The context abstraction is selected
// by PTAOptions::Kind; under ContextKind::Origin this implements the
// paper's OPA (Table 2), including the inter-origin context switches at
// origin allocations (rule ❽) and origin entry invocations (rule ❾), the
// 1-call-site wrapper extension, and loop duplication of origins.
//
// Solving alternates two steps until fixpoint:
//
//   propagate  — close the current copy-edge graph (engine-specific):
//                  Worklist: FIFO worklist, object-at-a-time (baseline);
//                  Wave: collapse copy-edge SCCs via union-find, then push
//                  each node's delta once in topological order with
//                  word-level BitVector unions.
//   applyRound — against the closed (schedule-independent) state, freeze
//                every use node's outstanding ⟨objects × loads/stores/
//                calls⟩ work, then apply it in node order, deriving new
//                edges, objects, contexts, and call targets.
//
// Because a closure of a fixed inclusion system is its unique least
// solution, the frozen state each round — and hence the whole discovery
// sequence (node, object, context, origin, and call-target creation
// order) — is independent of the propagation engine. Both engines
// therefore produce bit-identical PTAResults, which the solver-equivalence
// test (tests/pta/SolverEquivalenceTest.cpp) checks end to end.
//
//===----------------------------------------------------------------------===//

#include "o2/PTA/PointerAnalysis.h"

#include "o2/Support/Casting.h"
#include "o2/Support/SmallVector.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace o2;

std::string PTAOptions::name() const {
  switch (Kind) {
  case ContextKind::Insensitive:
    return "0-ctx";
  case ContextKind::KCallsite:
    return std::to_string(K) + "-cfa";
  case ContextKind::KObject:
    return std::to_string(K) + "-obj";
  case ContextKind::Origin:
    return std::to_string(K) + "-origin";
  }
  O2_UNREACHABLE("covered switch");
}

OriginSpec OriginSpec::standard() {
  OriginSpec Spec;
  // Paper Table 1. Thread entry points...
  Spec.addEntry("run", OriginKind::Thread);
  Spec.addEntry("call", OriginKind::Thread);
  // ... and event-handler entry points.
  Spec.addEntry("handleEvent", OriginKind::Event);
  Spec.addEntry("onReceive", OriginKind::Event);
  Spec.addEntry("actionPerformed", OriginKind::Event);
  Spec.addEntry("onMessageEvent", OriginKind::Event);
  return Spec;
}

namespace {

/// Wrapper-extension context elements carry the high bit (origin IDs and
/// call-site encodings stay below it).
constexpr uint32_t WrapperElemBit = 0x80000000u;

} // namespace

namespace o2 {
/// The constraint solver. Lives in namespace o2 (not file-local) because
/// it is the befriended builder of PTAResult.
class PTASolver {
public:
  PTASolver(const Module &M, const PTAOptions &Opts)
      : M(M), Opts(Opts), Spec(Opts.Spec) {
    R = std::make_unique<PTAResult>();
    R->M = &M;
    R->Opts = Opts;
    R->GlobalNodes.assign(M.numGlobals(), -1);
    R->OriginCtxs.push_back(InternTable::Empty); // main origin
    augmentSpecWithSpawnEntries();
    computeWrapperFunctions();
  }

  std::unique_ptr<PTAResult> run() {
    const Function *Main = M.getMain();
    if (!Main) {
      // The verifier reports a missing main() as a verify-error before
      // any analysis runs; this path only triggers for callers that skip
      // verification. An empty result is trivially sound — nothing
      // executes — and beats aborting a release-build fleet.
      R->EntryMissing = true;
      finalizeStats();
      R->Stats.set("pta.no-entry", 1);
      return std::move(R);
    }
    processFunction(Main, InternTable::Empty);
    do {
      propagate();
    } while (applyRound());
    // A budget stop still brings the partial result to a closure for
    // finalize; a cancellation unwinds immediately with whatever exists.
    if (Stopped && !R->Cancelled)
      propagate();
    finalizeStats();
    return std::move(R);
  }

private:
  //===--------------------------------------------------------------------===//
  // Graph storage
  //===--------------------------------------------------------------------===//

  struct Node {
    /// Full points-to set. Under the wave engine only the SCC
    /// representative's set is authoritative; collapsed members are
    /// rebuilt from their representative at finalization.
    BitVector Pts;
    /// Bits not yet pushed along outgoing copy edges (rep-owned).
    BitVector PropDelta;
    /// Bits already handed to this node's Loads/Stores/Calls by earlier
    /// discovery rounds. Maintained per original node, never merged.
    BitVector Applied;
    std::vector<unsigned> Succs;
    /// Field loads/stores waiting on base objects: (field key, other node).
    std::vector<std::pair<FieldKey, unsigned>> Loads;
    std::vector<std::pair<FieldKey, unsigned>> Stores;
    /// Virtual calls / spawns waiting on receiver objects.
    std::vector<std::pair<const Stmt *, Ctx>> Calls;
    /// Prefix of Loads/Stores/Calls that already caught up with Applied;
    /// uses registered after the last round instead receive the full
    /// frozen set in the next one.
    unsigned OldLoads = 0;
    unsigned OldStores = 0;
    unsigned OldCalls = 0;
    bool HasUses = false;
    bool Queued = false;
  };

  std::vector<Node> Nodes;
  /// Union-find forest over nodes; the wave engine collapses copy-edge
  /// SCCs by uniting members into the minimum member index. Stays the
  /// identity under the worklist engine.
  std::vector<unsigned> UnionFind;
  std::unordered_set<uint64_t> EdgeSet;
  std::deque<unsigned> Worklist;
  /// Wave-engine scratch: SCC representatives in topological order.
  std::vector<unsigned> TopoOrder;
  uint64_t NumCollapsed = 0;
  uint64_t NumWaves = 0;
  uint64_t NumPropWords = 0;

  const Module &M;
  PTAOptions Opts;
  OriginSpec Spec;
  std::unique_ptr<PTAResult> R;
  std::unordered_set<uint64_t> ProcessedInstances;
  std::unordered_map<uint64_t, unsigned> ObjMap;
  /// Return statements per function, for return-value binding.
  std::unordered_map<const Function *, std::vector<const ReturnStmt *>>
      ReturnsOf;
  std::unordered_set<const Function *> WrapperFns;
  std::unordered_map<uint64_t, std::vector<unsigned>> OriginsPerSite;
  bool Stopped = false;

  /// Polls the cancellation token; once it fires, the solver behaves like
  /// a budget stop (Stopped) with the result additionally flagged.
  bool checkCancelled() {
    if (R->Cancelled)
      return true;
    if (!pollCancelled(Opts.Cancel))
      return false;
    Stopped = true;
    R->Cancelled = true;
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Setup
  //===--------------------------------------------------------------------===//

  /// Entry names used by spawn statements are origin entries even when the
  /// configuration does not list them (custom thread abstractions).
  void augmentSpecWithSpawnEntries() {
    for (const auto &F : M.functions())
      for (const auto &S : F->body())
        if (const auto *Sp = dyn_cast<SpawnStmt>(S.get()))
          if (!Spec.isEntry(Sp->getEntryName()))
            Spec.addEntry(Sp->getEntryName(), OriginKind::Thread);
  }

  /// A wrapper function directly contains an origin allocation or a spawn;
  /// OPA extends origins created inside them with one call-site
  /// (Section 3.2, "Wrapper Functions and Loops").
  void computeWrapperFunctions() {
    if (Opts.Kind != ContextKind::Origin)
      return;
    const Function *Main = M.getMain();
    for (const auto &F : M.functions()) {
      if (F.get() == Main)
        continue; // main is the root; no wrapper treatment
      for (const auto &S : F->body()) {
        bool IsOriginSite = false;
        if (const auto *A = dyn_cast<AllocStmt>(S.get()))
          IsOriginSite = Spec.isOriginClass(A->getAllocType());
        else if (isa<SpawnStmt>(S.get()))
          IsOriginSite = true;
        if (IsOriginSite) {
          WrapperFns.insert(F.get());
          break;
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Context manipulation
  //===--------------------------------------------------------------------===//

  SmallVector<uint32_t, 8> elemsOf(Ctx C) const {
    ArrayRef<uint32_t> E = R->Ctxs.get(C);
    return SmallVector<uint32_t, 8>(E.begin(), E.end());
  }

  Ctx intern(ArrayRef<uint32_t> Elems) { return R->Ctxs.intern(Elems); }

  /// Appends \p Elem and keeps the last \p K elements.
  Ctx pushLimited(Ctx C, uint32_t Elem, unsigned K) {
    SmallVector<uint32_t, 8> E = elemsOf(C);
    E.push_back(Elem);
    size_t Keep = std::min<size_t>(E.size(), K);
    return intern(ArrayRef<uint32_t>(E.data() + (E.size() - Keep), Keep));
  }

  /// Origin chain of an OPA context (wrapper elements stripped).
  SmallVector<uint32_t, 8> originChainOf(Ctx C) const {
    SmallVector<uint32_t, 8> Chain;
    for (uint32_t E : R->Ctxs.get(C))
      if (!(E & WrapperElemBit))
        Chain.push_back(E);
    return Chain;
  }

  static uint32_t callSiteElem(unsigned Site) { return Site << 1; }
  static uint32_t allocSiteElem(unsigned Site) { return (Site << 1) | 1; }

  /// Callee context for a non-origin-entry call (rule ❻ keeps the origin;
  /// other abstractions push call sites / receiver objects).
  Ctx calleeCtx(Ctx CallerCtx, uint32_t SiteElem, unsigned RecvObj,
                const Function *Callee) {
    switch (Opts.Kind) {
    case ContextKind::Insensitive:
      return InternTable::Empty;
    case ContextKind::KCallsite:
      return pushLimited(CallerCtx, SiteElem, Opts.K);
    case ContextKind::KObject: {
      // Receiver-object sensitivity with standard k-limiting over
      // allocation sites: the method context is the receiver's site
      // followed by its heap context; static calls inherit the caller.
      if (RecvObj == ~0u)
        return CallerCtx;
      const ObjInfo &Recv = R->Objects[RecvObj];
      SmallVector<uint32_t, 8> Elems;
      Elems.push_back(allocSiteElem(Recv.Site));
      for (uint32_t E : R->Ctxs.get(Recv.HeapCtx)) {
        if (Elems.size() >= Opts.K)
          break;
        Elems.push_back(E);
      }
      return intern(Elems);
    }
    case ContextKind::Origin: {
      // Same origin as the caller. Wrapper callees additionally get the
      // call site so origins created inside them stay separate.
      SmallVector<uint32_t, 8> Chain = originChainOf(CallerCtx);
      if (Callee && WrapperFns.count(Callee))
        Chain.push_back(WrapperElemBit | SiteElem);
      return intern(Chain);
    }
    }
    O2_UNREACHABLE("covered switch");
  }

  /// Heap context for an allocation executed under \p AllocCtx.
  Ctx heapCtx(Ctx AllocCtx) {
    switch (Opts.Kind) {
    case ContextKind::Insensitive:
      return InternTable::Empty;
    case ContextKind::KObject: {
      // k-obj + heap: the heap context keeps the first k elements of the
      // allocating method's context (Doop's kobjH convention).
      ArrayRef<uint32_t> E = R->Ctxs.get(AllocCtx);
      size_t Keep = std::min<size_t>(E.size(), Opts.K);
      return intern(E.slice(0, Keep));
    }
    case ContextKind::KCallsite:
    case ContextKind::Origin:
      return AllocCtx;
    }
    O2_UNREACHABLE("covered switch");
  }

  //===--------------------------------------------------------------------===//
  // Nodes and objects
  //===--------------------------------------------------------------------===//

  unsigned newNode() {
    Nodes.emplace_back();
    UnionFind.push_back(static_cast<unsigned>(Nodes.size() - 1));
    if (Nodes.size() > Opts.NodeBudget && !Stopped) {
      Stopped = true;
      R->HitBudget = true;
    }
    return static_cast<unsigned>(Nodes.size() - 1);
  }

  /// SCC representative of \p N (with path halving).
  unsigned find(unsigned N) {
    while (UnionFind[N] != N) {
      UnionFind[N] = UnionFind[UnionFind[N]];
      N = UnionFind[N];
    }
    return N;
  }

  unsigned varNode(const Variable *V, Ctx C) {
    uint64_t Key = (uint64_t(V->getId()) << 32) | C;
    auto [It, Inserted] = R->VarNodes.emplace(Key, 0);
    if (Inserted)
      It->second = newNode();
    return It->second;
  }

  unsigned globalNode(const Global *G) {
    int &Slot = R->GlobalNodes[G->getId()];
    if (Slot < 0)
      Slot = static_cast<int>(newNode());
    return static_cast<unsigned>(Slot);
  }

  unsigned fieldNode(unsigned Obj, FieldKey FK) {
    uint64_t Key = (uint64_t(Obj) << 32) | FK;
    auto [It, Inserted] = R->FieldNodes.emplace(Key, 0);
    if (Inserted)
      It->second = newNode();
    return It->second;
  }

  unsigned objectFor(unsigned Site, Ctx HCtx, unsigned Dup, const Type *Ty,
                     const Stmt *AllocS) {
    uint64_t Key = (uint64_t(Site) << 34) | (uint64_t(Dup) << 32) | HCtx;
    auto [It, Inserted] = ObjMap.emplace(Key, 0);
    if (Inserted) {
      ObjInfo Info;
      Info.Id = static_cast<unsigned>(R->Objects.size());
      Info.Site = Site;
      Info.HeapCtx = HCtx;
      Info.AllocatedType = Ty;
      Info.Alloc = AllocS;
      Info.DupIndex = Dup;
      R->Objects.push_back(Info);
      R->ObjOrigin.push_back(~0u);
      It->second = Info.Id;
    }
    return It->second;
  }

  //===--------------------------------------------------------------------===//
  // Constraint primitives (shared by both engines)
  //===--------------------------------------------------------------------===//

  void schedule(unsigned Rep) {
    if (Opts.Solver != SolverKind::Worklist)
      return; // the wave engine scans representatives for pending deltas
    if (!Nodes[Rep].Queued) {
      Nodes[Rep].Queued = true;
      Worklist.push_back(Rep);
    }
  }

  void addPts(unsigned N, unsigned Obj) {
    unsigned Rep = find(N);
    if (Nodes[Rep].Pts.set(Obj)) {
      Nodes[Rep].PropDelta.set(Obj);
      schedule(Rep);
    }
  }

  void addPtsSet(unsigned N, const BitVector &Objs) {
    unsigned Rep = find(N);
    Node &Nd = Nodes[Rep];
    if (&Nd.Pts == &Objs)
      return; // self-union (edge inside a collapsed SCC)
    BitVector New;
    if (!Nd.Pts.unionWithDiff(Objs, New))
      return;
    NumPropWords += New.numSetWords();
    Nd.PropDelta.unionWithChanged(New);
    schedule(Rep);
  }

  void addCopyEdge(unsigned Src, unsigned Dst) {
    if (Src == Dst)
      return;
    // Dedup on the original node IDs so the set of registered edges (and
    // the pta.copy-edges statistic) is identical across engines regardless
    // of SCC collapse.
    uint64_t Key = (uint64_t(Src) << 32) | Dst;
    if (!EdgeSet.insert(Key).second)
      return;
    unsigned SrcRep = find(Src);
    unsigned DstRep = find(Dst);
    if (SrcRep != DstRep)
      Nodes[SrcRep].Succs.push_back(DstRep);
    addPtsSet(Dst, Nodes[SrcRep].Pts);
  }

  /// Use registration only records the constraint; the next discovery
  /// round hands it the full frozen points-to set of its base. Applying
  /// at registration time would leak the engine's propagation schedule
  /// into the discovery order and break cross-engine equivalence.
  void registerLoad(unsigned Base, FieldKey FK, unsigned Dst) {
    Nodes[Base].HasUses = true;
    Nodes[Base].Loads.emplace_back(FK, Dst);
  }

  void registerStore(unsigned Base, FieldKey FK, unsigned Src) {
    Nodes[Base].HasUses = true;
    Nodes[Base].Stores.emplace_back(FK, Src);
  }

  void registerCallUse(unsigned Recv, const Stmt *S, Ctx C) {
    Nodes[Recv].HasUses = true;
    Nodes[Recv].Calls.emplace_back(S, C);
  }

  //===--------------------------------------------------------------------===//
  // Discovery rounds
  //===--------------------------------------------------------------------===//

  /// One unit of frozen discovery work: a use node, the objects its
  /// already-seen uses still owe (Delta), and — when uses were registered
  /// since the last round — the full closure set those must catch up on.
  struct WorkItem {
    unsigned NodeId = 0;
    SmallVector<unsigned, 8> Delta;
    SmallVector<unsigned, 8> Full;
    unsigned LoadsEnd = 0;
    unsigned StoresEnd = 0;
    unsigned CallsEnd = 0;
  };

  /// Freezes every use node's outstanding work against the propagated
  /// closure, then applies it in ascending node order. Returns true if
  /// another propagate/apply round is needed. The freeze-then-apply split
  /// makes the application sequence a pure function of the closure, which
  /// is the unique least solution of the current constraints and hence
  /// engine-independent.
  bool applyRound() {
    if (Stopped)
      return false;
    std::vector<WorkItem> Work;
    for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E;
         ++N) {
      Node &Nd = Nodes[N];
      if (!Nd.HasUses)
        continue;
      bool NewUses = Nd.Loads.size() > Nd.OldLoads ||
                     Nd.Stores.size() > Nd.OldStores ||
                     Nd.Calls.size() > Nd.OldCalls;
      const BitVector &Closure = Nodes[find(N)].Pts;
      BitVector DeltaBits = Closure.diff(Nd.Applied);
      if (DeltaBits.none() && !NewUses)
        continue;
      WorkItem W;
      W.NodeId = N;
      for (unsigned Obj : DeltaBits)
        W.Delta.push_back(Obj);
      if (NewUses)
        for (unsigned Obj : Closure)
          W.Full.push_back(Obj);
      W.LoadsEnd = static_cast<unsigned>(Nd.Loads.size());
      W.StoresEnd = static_cast<unsigned>(Nd.Stores.size());
      W.CallsEnd = static_cast<unsigned>(Nd.Calls.size());
      Nd.Applied.unionWithChanged(Closure);
      Work.push_back(std::move(W));
    }
    if (Work.empty())
      return false;
    for (const WorkItem &W : Work) {
      if (Stopped || checkCancelled())
        return false;
      applyUses(W);
    }
    return true;
  }

  void applyUses(const WorkItem &W) {
    const unsigned N = W.NodeId;
    const unsigned OldL = Nodes[N].OldLoads;
    const unsigned OldS = Nodes[N].OldStores;
    const unsigned OldC = Nodes[N].OldCalls;
    // Uses from earlier rounds receive only the new objects... (indexed
    // accesses throughout: handlers create nodes and reallocate Nodes).
    for (unsigned Obj : W.Delta) {
      for (unsigned I = 0; I != OldL; ++I) {
        auto [FK, Dst] = Nodes[N].Loads[I];
        addCopyEdge(fieldNode(Obj, FK), Dst);
      }
      for (unsigned I = 0; I != OldS; ++I) {
        auto [FK, Src] = Nodes[N].Stores[I];
        addCopyEdge(Src, fieldNode(Obj, FK));
      }
      for (unsigned I = 0; I != OldC; ++I) {
        auto [S, C] = Nodes[N].Calls[I];
        applyCallToObj(S, C, Obj);
      }
    }
    // ... while uses registered since the last round catch up on the full
    // frozen set. Uses registered during this very application (beyond
    // the frozen *End marks) wait for the next round.
    for (unsigned Obj : W.Full) {
      for (unsigned I = OldL; I != W.LoadsEnd; ++I) {
        auto [FK, Dst] = Nodes[N].Loads[I];
        addCopyEdge(fieldNode(Obj, FK), Dst);
      }
      for (unsigned I = OldS; I != W.StoresEnd; ++I) {
        auto [FK, Src] = Nodes[N].Stores[I];
        addCopyEdge(Src, fieldNode(Obj, FK));
      }
      for (unsigned I = OldC; I != W.CallsEnd; ++I) {
        auto [S, C] = Nodes[N].Calls[I];
        applyCallToObj(S, C, Obj);
      }
    }
    Nodes[N].OldLoads = W.LoadsEnd;
    Nodes[N].OldStores = W.StoresEnd;
    Nodes[N].OldCalls = W.CallsEnd;
  }

  //===--------------------------------------------------------------------===//
  // Propagation engines
  //===--------------------------------------------------------------------===//

  /// Closes the current copy-edge graph: afterwards every node's
  /// (representative's) Pts is the least solution of the registered
  /// edges and direct facts, and no deltas are pending.
  void propagate() {
    if (Opts.Solver == SolverKind::Worklist)
      propagateWorklist();
    else
      propagateWave();
  }

  /// Baseline engine: FIFO worklist, forwarding each node's pending delta
  /// object-by-object.
  void propagateWorklist() {
    while (!Worklist.empty()) {
      if (checkCancelled()) {
        for (unsigned N : Worklist)
          Nodes[N].Queued = false;
        Worklist.clear();
        return;
      }
      unsigned N = Worklist.front();
      Worklist.pop_front();
      Nodes[N].Queued = false;
      SmallVector<unsigned, 16> Delta;
      for (unsigned Obj : Nodes[N].PropDelta)
        Delta.push_back(Obj);
      Nodes[N].PropDelta.clear();
      for (size_t I = 0, E = Nodes[N].Succs.size(); I != E; ++I) {
        unsigned S = Nodes[N].Succs[I];
        for (unsigned Obj : Delta)
          addPts(S, Obj);
      }
    }
  }

  /// Wave engine: collapse copy-edge SCCs into their minimum member via
  /// union-find, then push every pending delta exactly once along the
  /// condensation in topological order with word-level unions.
  void propagateWave() {
    while (true) {
      bool Pending = false;
      for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size());
           N != E && !Pending; ++N)
        Pending = UnionFind[N] == N && Nodes[N].PropDelta.any();
      if (!Pending)
        return;
      ++NumWaves;
      collapseSCCs();
      for (unsigned Rep : TopoOrder) {
        if (checkCancelled())
          return;
        BitVector Delta = std::move(Nodes[Rep].PropDelta);
        Nodes[Rep].PropDelta = BitVector();
        if (Delta.none())
          continue;
        for (size_t I = 0, E = Nodes[Rep].Succs.size(); I != E; ++I) {
          unsigned S = find(Nodes[Rep].Succs[I]);
          if (S == Rep)
            continue;
          BitVector New;
          if (Nodes[S].Pts.unionWithDiff(Delta, New)) {
            NumPropWords += New.numSetWords();
            Nodes[S].PropDelta.unionWithChanged(New);
          }
        }
      }
      // One topological pass consumes every delta of a DAG, so the next
      // scan terminates the loop; the outer while is a safety net.
    }
  }

  /// Iterative Tarjan over the representatives' condensation. Emits SCCs
  /// in reverse topological order (every SCC after all SCCs reachable from
  /// it), collapses multi-node components on the fly, and leaves
  /// TopoOrder holding the surviving representatives sources-first.
  void collapseSCCs() {
    const unsigned N = static_cast<unsigned>(Nodes.size());
    std::vector<uint32_t> Index(N, 0);
    std::vector<uint32_t> Low(N, 0);
    std::vector<bool> OnStack(N, false);
    std::vector<unsigned> SCCStack;
    struct Frame {
      unsigned Node;
      size_t SuccIdx;
    };
    std::vector<Frame> DFS;
    uint32_t NextIndex = 1;
    TopoOrder.clear();

    for (unsigned Root = 0; Root != N; ++Root) {
      if (UnionFind[Root] != Root || Index[Root])
        continue;
      Index[Root] = Low[Root] = NextIndex++;
      SCCStack.push_back(Root);
      OnStack[Root] = true;
      DFS.push_back({Root, 0});
      while (!DFS.empty()) {
        Frame &F = DFS.back();
        unsigned V = F.Node;
        if (F.SuccIdx != Nodes[V].Succs.size()) {
          unsigned S = find(Nodes[V].Succs[F.SuccIdx++]);
          if (S == V)
            continue;
          if (!Index[S]) {
            Index[S] = Low[S] = NextIndex++;
            SCCStack.push_back(S);
            OnStack[S] = true;
            DFS.push_back({S, 0}); // invalidates F; re-fetched next spin
          } else if (OnStack[S]) {
            Low[V] = std::min(Low[V], Index[S]);
          }
          continue;
        }
        DFS.pop_back();
        if (!DFS.empty())
          Low[DFS.back().Node] = std::min(Low[DFS.back().Node], Low[V]);
        if (Low[V] == Index[V]) {
          SmallVector<unsigned, 4> Comp;
          unsigned W;
          do {
            W = SCCStack.back();
            SCCStack.pop_back();
            OnStack[W] = false;
            Comp.push_back(W);
          } while (W != V);
          if (Comp.size() > 1)
            mergeSCC(Comp);
          TopoOrder.push_back(find(V));
        }
      }
    }
    std::reverse(TopoOrder.begin(), TopoOrder.end());
  }

  /// Unites an SCC into its minimum member (so representatives always
  /// precede their members, which finalizeStats relies on). The
  /// representative takes over the merged points-to set, pending delta,
  /// and successor list; members keep their use lists and Applied state,
  /// which discovery reads through find().
  void mergeSCC(ArrayRef<unsigned> Comp) {
    unsigned Rep = *std::min_element(Comp.begin(), Comp.end());
    for (unsigned M : Comp) {
      if (M == Rep)
        continue;
      Node &Mem = Nodes[M];
      Node &RepNode = Nodes[Rep];
      // Bits one side lacks must (re)flow to the merged successor list:
      // the other side's former successors never saw them.
      BitVector RepOnly = RepNode.Pts.diff(Mem.Pts);
      BitVector New;
      RepNode.Pts.unionWithDiff(Mem.Pts, New);
      NumPropWords += New.numSetWords();
      RepNode.PropDelta.unionWithChanged(New);
      RepNode.PropDelta.unionWithChanged(RepOnly);
      RepNode.PropDelta.unionWithChanged(Mem.PropDelta);
      RepNode.Succs.insert(RepNode.Succs.end(), Mem.Succs.begin(),
                           Mem.Succs.end());
      Mem.Pts = BitVector();
      Mem.PropDelta = BitVector();
      Mem.Succs.clear();
      Mem.Succs.shrink_to_fit();
      UnionFind[M] = Rep;
      ++NumCollapsed;
    }
    // Canonicalize and dedup the merged successor list; internal edges
    // collapse to self-loops and drop out.
    auto &Succs = Nodes[Rep].Succs;
    for (unsigned &S : Succs)
      S = find(S);
    std::sort(Succs.begin(), Succs.end());
    Succs.erase(std::unique(Succs.begin(), Succs.end()), Succs.end());
    Succs.erase(std::remove(Succs.begin(), Succs.end(), Rep), Succs.end());
  }

  //===--------------------------------------------------------------------===//
  // Call binding
  //===--------------------------------------------------------------------===//

  std::vector<CallTarget> &targetsSlot(const Stmt *S, Ctx C) {
    uint64_t Key = (uint64_t(S->getId()) << 32) | C;
    return R->CallTargets[Key];
  }

  bool recordTarget(const Stmt *S, Ctx C, const CallTarget &T) {
    auto &Vec = targetsSlot(S, C);
    for (const CallTarget &Existing : Vec)
      if (Existing == T)
        return false;
    Vec.push_back(T);
    return true;
  }

  /// Binds actuals to formals and the callee's returns to the target.
  void bindCall(const Function *Callee, Ctx CalleeC, unsigned RecvObj,
                ArrayRef<const Variable *> Actuals, Ctx CallerC,
                const Variable *Target) {
    const auto &Params = Callee->params();
    size_t ParamBase = RecvObj != ~0u ? 1 : 0;
    if (RecvObj != ~0u && !Params.empty())
      addPts(varNode(Params[0], CalleeC), RecvObj);
    for (size_t I = 0; I < Actuals.size() && ParamBase + I < Params.size();
         ++I) {
      if (!Actuals[I]->getType()->isReference())
        continue;
      addCopyEdge(varNode(Actuals[I], CallerC),
                  varNode(Params[ParamBase + I], CalleeC));
    }
    if (Target && Target->getType()->isReference())
      for (const ReturnStmt *Ret : returnsOf(Callee))
        if (Ret->getValue() && Ret->getValue()->getType()->isReference())
          addCopyEdge(varNode(Ret->getValue(), CalleeC),
                      varNode(Target, CallerC));
    processFunction(Callee, CalleeC);
  }

  const std::vector<const ReturnStmt *> &returnsOf(const Function *F) {
    auto [It, Inserted] = ReturnsOf.emplace(F, std::vector<const ReturnStmt *>());
    if (Inserted)
      for (const auto &S : F->body())
        if (const auto *Ret = dyn_cast<ReturnStmt>(S.get()))
          It->second.push_back(Ret);
    return It->second;
  }

  /// Resolves one receiver object for a virtual call or spawn.
  void applyCallToObj(const Stmt *S, Ctx CallerC, unsigned Obj) {
    const auto *Cls = dyn_cast<ClassType>(R->Objects[Obj].AllocatedType);
    if (!Cls)
      return; // arrays have no methods

    if (const auto *Call = dyn_cast<CallStmt>(S)) {
      const Function *Callee = Cls->findMethod(Call->getMethodName());
      if (!Callee)
        return;
      Ctx CalleeC =
          calleeCtx(CallerC, callSiteElem(Call->getSite()), Obj, Callee);
      if (!recordTarget(S, CallerC, {Callee, CalleeC, Obj}))
        return;
      SmallVector<const Variable *, 4> Actuals(Call->getArgs().begin(),
                                               Call->getArgs().end());
      bindCall(Callee, CalleeC, Obj, Actuals, CallerC, Call->getTarget());
      return;
    }

    const auto *Spawn = cast<SpawnStmt>(S);
    const Function *Entry = Cls->findMethod(Spawn->getEntryName());
    if (!Entry)
      return;
    Ctx EntryC;
    if (Opts.Kind == ContextKind::Origin) {
      // Rule ❾: the entry runs under the origin created for the receiver
      // object at its (origin) allocation.
      unsigned Origin = R->ObjOrigin[Obj];
      EntryC = Origin != ~0u ? R->OriginCtxs[Origin]
                             : calleeCtx(CallerC, callSiteElem(Spawn->getSite()),
                                         Obj, Entry);
    } else {
      EntryC =
          calleeCtx(CallerC, callSiteElem(Spawn->getSite()), Obj, Entry);
    }
    if (!recordTarget(S, CallerC, {Entry, EntryC, Obj}))
      return;
    SmallVector<const Variable *, 4> Actuals(Spawn->getArgs().begin(),
                                             Spawn->getArgs().end());
    bindCall(Entry, EntryC, Obj, Actuals, CallerC, /*Target=*/nullptr);
  }

  //===--------------------------------------------------------------------===//
  // Statement processing
  //===--------------------------------------------------------------------===//

  void processFunction(const Function *F, Ctx C) {
    if (Stopped || checkCancelled())
      return;
    uint64_t Key = (uint64_t(F->getId()) << 32) | C;
    if (!ProcessedInstances.insert(Key).second)
      return;
    R->Instances.emplace_back(F, C);
    for (const auto &S : F->body()) {
      if (checkCancelled())
        return;
      processStmt(*S, F, C);
    }
  }

  void processAlloc(const AllocStmt &A, Ctx C) {
    ClassType *Cls = A.getAllocType();
    bool IsOriginAlloc =
        Opts.Kind == ContextKind::Origin && Spec.isOriginClass(Cls);
    unsigned NumDups = IsOriginAlloc && A.isInLoop() ? 2 : 1;

    for (unsigned Dup = 0; Dup != NumDups; ++Dup) {
      Ctx ObjCtx;
      Ctx InitCtx;
      unsigned Obj;
      if (IsOriginAlloc) {
        // Rule ❽: switch to a fresh origin; the object, its constructor,
        // and (later) its entry all live in the new origin.
        OriginKind Kind = OriginKind::Thread;
        auto Entries = Spec.entriesOf(Cls);
        if (!Entries.empty())
          Kind = Spec.kindOf(Entries.front());
        for (const std::string &E : Entries)
          if (Spec.kindOf(E) == OriginKind::Thread)
            Kind = OriginKind::Thread;
        // Recursion collapse: an origin that (transitively) re-allocates
        // its own allocation site folds back onto the ancestor origin,
        // so recursive spawning reaches a fixpoint (the k-limiting
        // analogue for origin chains).
        unsigned OriginId = ~0u;
        for (uint32_t Ancestor : originChainOf(C)) {
          const OriginInfo &Info = R->Origins.info(Ancestor);
          if (Info.AllocSite == A.getSite() && Info.DupIndex == Dup) {
            OriginId = Ancestor;
            break;
          }
        }
        // Backstop for mutual recursion between origin classes: bound
        // the origins per allocation site, folding the overflow onto the
        // first one.
        constexpr unsigned MaxOriginsPerSite = 8;
        uint64_t SiteKey = (uint64_t(A.getSite()) << 1) | Dup;
        if (OriginId == ~0u) {
          auto &PerSite = OriginsPerSite[SiteKey];
          if (PerSite.size() >= MaxOriginsPerSite) {
            OriginId = PerSite.front();
          } else {
            OriginId = R->Origins.getOrCreate(A.getSite(), C, Dup, Kind, Cls);
            if (OriginId == R->OriginCtxs.size())
              PerSite.push_back(OriginId);
          }
        }
        if (OriginId == R->OriginCtxs.size()) {
          SmallVector<uint32_t, 8> Chain = originChainOf(C);
          Chain.push_back(OriginId);
          size_t Keep = std::min<size_t>(Chain.size(), Opts.K);
          R->OriginCtxs.push_back(intern(ArrayRef<uint32_t>(
              Chain.data() + (Chain.size() - Keep), Keep)));
        }
        ObjCtx = R->OriginCtxs[OriginId];
        InitCtx = ObjCtx;
        Obj = objectFor(A.getSite(), ObjCtx, Dup, Cls, &A);
        R->ObjOrigin[Obj] = OriginId;
      } else {
        ObjCtx = heapCtx(C);
        Obj = objectFor(A.getSite(), ObjCtx, Dup, Cls, &A);
        if (Opts.Kind == ContextKind::Origin) {
          // Owner origin: the origin executing this allocation.
          SmallVector<uint32_t, 8> Chain = originChainOf(C);
          R->ObjOrigin[Obj] =
              Chain.empty() ? OriginTable::MainOrigin : Chain.back();
        }
        InitCtx = ~0u; // computed below per context kind
      }

      addPts(varNode(A.getTarget(), C), Obj);

      if (const Function *Init = Cls->findMethod("init")) {
        if (InitCtx == ~0u)
          InitCtx =
              calleeCtx(C, allocSiteElem(A.getSite()), Obj, Init);
        if (recordTarget(&A, C, {Init, InitCtx, Obj})) {
          SmallVector<const Variable *, 4> Actuals(A.getArgs().begin(),
                                                   A.getArgs().end());
          bindCall(Init, InitCtx, Obj, Actuals, C, /*Target=*/nullptr);
        }
      }
    }
  }

  void processStmt(const Stmt &S, const Function *F, Ctx C) {
    switch (S.getKind()) {
    case Stmt::SK_Alloc:
      processAlloc(cast<AllocStmt>(S), C);
      return;
    case Stmt::SK_ArrayAlloc: {
      const auto &A = cast<ArrayAllocStmt>(S);
      unsigned Obj =
          objectFor(A.getSite(), heapCtx(C), 0, A.getAllocType(), &A);
      if (Opts.Kind == ContextKind::Origin && R->ObjOrigin[Obj] == ~0u) {
        SmallVector<uint32_t, 8> Chain = originChainOf(C);
        R->ObjOrigin[Obj] =
            Chain.empty() ? OriginTable::MainOrigin : Chain.back();
      }
      addPts(varNode(A.getTarget(), C), Obj);
      return;
    }
    case Stmt::SK_Assign: {
      const auto &A = cast<AssignStmt>(S);
      if (A.getSource()->getType()->isReference() &&
          A.getTarget()->getType()->isReference())
        addCopyEdge(varNode(A.getSource(), C), varNode(A.getTarget(), C));
      return;
    }
    case Stmt::SK_FieldLoad: {
      const auto &L = cast<FieldLoadStmt>(S);
      if (L.getField()->getType()->isReference())
        registerLoad(varNode(L.getBase(), C), fieldKeyOf(L.getField()),
                     varNode(L.getTarget(), C));
      return;
    }
    case Stmt::SK_FieldStore: {
      const auto &St = cast<FieldStoreStmt>(S);
      if (St.getField()->getType()->isReference())
        registerStore(varNode(St.getBase(), C), fieldKeyOf(St.getField()),
                      varNode(St.getSource(), C));
      return;
    }
    case Stmt::SK_ArrayLoad: {
      const auto &L = cast<ArrayLoadStmt>(S);
      if (L.getTarget()->getType()->isReference())
        registerLoad(varNode(L.getBase(), C), ArrayElemKey,
                     varNode(L.getTarget(), C));
      return;
    }
    case Stmt::SK_ArrayStore: {
      const auto &St = cast<ArrayStoreStmt>(S);
      if (St.getSource()->getType()->isReference())
        registerStore(varNode(St.getBase(), C), ArrayElemKey,
                      varNode(St.getSource(), C));
      return;
    }
    case Stmt::SK_GlobalLoad: {
      const auto &L = cast<GlobalLoadStmt>(S);
      if (L.getGlobal()->getType()->isReference())
        addCopyEdge(globalNode(L.getGlobal()), varNode(L.getTarget(), C));
      return;
    }
    case Stmt::SK_GlobalStore: {
      const auto &St = cast<GlobalStoreStmt>(S);
      if (St.getGlobal()->getType()->isReference())
        addCopyEdge(varNode(St.getSource(), C), globalNode(St.getGlobal()));
      return;
    }
    case Stmt::SK_Call: {
      const auto &Call = cast<CallStmt>(S);
      if (Call.isVirtual()) {
        registerCallUse(varNode(Call.getReceiver(), C), &Call, C);
        return;
      }
      const Function *Callee = Call.getDirectCallee();
      Ctx CalleeC =
          calleeCtx(C, callSiteElem(Call.getSite()), ~0u, Callee);
      if (recordTarget(&Call, C, {Callee, CalleeC, ~0u})) {
        SmallVector<const Variable *, 4> Actuals(Call.getArgs().begin(),
                                                 Call.getArgs().end());
        bindCall(Callee, CalleeC, ~0u, Actuals, C, Call.getTarget());
      }
      return;
    }
    case Stmt::SK_Spawn:
      registerCallUse(varNode(cast<SpawnStmt>(S).getReceiver(), C), &S, C);
      return;
    case Stmt::SK_Join:
      // Joins only matter for happens-before; ensure the receiver node
      // exists so SHB can query its points-to set.
      varNode(cast<JoinStmt>(S).getReceiver(), C);
      return;
    case Stmt::SK_Acquire:
      varNode(cast<AcquireStmt>(S).getLock(), C);
      return;
    case Stmt::SK_Release:
      varNode(cast<ReleaseStmt>(S).getLock(), C);
      return;
    case Stmt::SK_Return:
      // Return values are wired at call-binding time.
      (void)F;
      return;
    }
    O2_UNREACHABLE("covered switch");
  }

  //===--------------------------------------------------------------------===//
  // Finalization
  //===--------------------------------------------------------------------===//

  void finalizeStats() {
    R->NodePts.reserve(Nodes.size());
    for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E;
         ++N) {
      unsigned Rep = find(N);
      if (Rep == N) {
        R->NodePts.push_back(std::move(Nodes[N].Pts));
      } else {
        // SCCs unite into their minimum member, so the representative's
        // final set is already in place.
        assert(Rep < N && "representative must precede its members");
        R->NodePts.push_back(R->NodePts[Rep]);
      }
    }
    R->Stats.set("pta.pointer-nodes", Nodes.size());
    R->Stats.set("pta.objects", R->Objects.size());
    R->Stats.set("pta.copy-edges", EdgeSet.size());
    R->Stats.set("pta.instances", R->Instances.size());
    R->Stats.set("pta.contexts", R->Ctxs.size());
    R->Stats.set("pta.origins",
                 Opts.Kind == ContextKind::Origin ? R->Origins.size() : 0);
    R->Stats.set("pta.scc-collapsed", NumCollapsed);
    R->Stats.set("pta.waves", NumWaves);
    R->Stats.set("pta.propagated-words", NumPropWords);
    if (R->Cancelled)
      R->Stats.set("pta.cancelled", 1);
  }
};

} // namespace o2

//===----------------------------------------------------------------------===//
// PTAResult queries
//===----------------------------------------------------------------------===//

const BitVector *PTAResult::pts(const Variable *V, Ctx C) const {
  auto It = VarNodes.find((uint64_t(V->getId()) << 32) | C);
  if (It == VarNodes.end())
    return nullptr;
  return &NodePts[It->second];
}

const BitVector *PTAResult::ptsGlobal(const Global *G) const {
  int Slot = GlobalNodes[G->getId()];
  return Slot < 0 ? nullptr : &NodePts[static_cast<unsigned>(Slot)];
}

const BitVector *PTAResult::ptsField(unsigned Obj, FieldKey FK) const {
  auto It = FieldNodes.find((uint64_t(Obj) << 32) | FK);
  return It == FieldNodes.end() ? nullptr : &NodePts[It->second];
}

const std::vector<CallTarget> &PTAResult::callTargets(const Stmt *S,
                                                      Ctx C) const {
  static const std::vector<CallTarget> None;
  auto It = CallTargets.find((uint64_t(S->getId()) << 32) | C);
  return It == CallTargets.end() ? None : It->second;
}

std::vector<unsigned> PTAResult::originAttributes(unsigned OriginId) const {
  std::vector<unsigned> Attrs;
  if (OriginId == OriginTable::MainOrigin)
    return Attrs;
  const OriginInfo &Info = Origins.info(OriginId);
  // Find the origin's receiver object to recover its allocation stmt.
  const AllocStmt *Alloc = nullptr;
  for (const ObjInfo &O : Objects)
    if (O.Site == Info.AllocSite && originOfObject(O.Id) == OriginId)
      if ((Alloc = dyn_cast<AllocStmt>(O.Alloc)))
        break;
  if (!Alloc)
    return Attrs;
  for (const Variable *Arg : Alloc->getArgs()) {
    if (!Arg->getType()->isReference())
      continue;
    if (const BitVector *P = pts(Arg, Info.ParentCtx))
      for (unsigned Obj : *P)
        Attrs.push_back(Obj);
  }
  std::sort(Attrs.begin(), Attrs.end());
  Attrs.erase(std::unique(Attrs.begin(), Attrs.end()), Attrs.end());
  return Attrs;
}

std::string PTAResult::ctxToString(Ctx C) const {
  std::string Out = "[";
  bool First = true;
  for (uint32_t E : Ctxs.get(C)) {
    if (!First)
      Out += ",";
    First = false;
    if (Opts.Kind == ContextKind::Origin) {
      Out += (E & 0x80000000u) ? 'w' : 'O';
      Out += std::to_string(E & 0x7fffffffu);
    } else {
      Out += std::to_string(E);
    }
  }
  Out += "]";
  return Out;
}

std::unique_ptr<PTAResult> o2::runPointerAnalysis(const Module &M,
                                                  const PTAOptions &Opts) {
  return PTASolver(M, Opts).run();
}
